//! MaxNCG vs SumNCG under locality: the same workload, the two
//! objectives, and the conservative SumNCG frontier rule
//! (Proposition 2.2) in action.
//!
//! ```sh
//! cargo run --release --example sum_vs_max
//! ```

use ncg::core::deviation::{evaluate_max, evaluate_sum, DeviationEval, EvalScratch};
use ncg::core::{GameSpec, GameState, Objective, PlayerView};
use ncg::dynamics::{run, DynamicsConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // Part 1 — the dyscrasia of Section 2: a move that MaxNCG permits
    // can be forbidden for a SumNCG player, because pushing a frontier
    // vertex beyond distance k risks unbounded invisible cost.
    let path: Vec<Vec<u32>> = (0..6).map(|i| if i < 5 { vec![i + 1] } else { vec![] }).collect();
    let state = GameState::from_strategies(6, path);
    let u = 0u32;
    let k = 2;
    let view = PlayerView::build(&state, u, k);
    // Player 0 owns (0,1); her frontier is node 2. Consider dropping
    // everything (the empty strategy).
    let mut scratch = EvalScratch::new();
    let max_eval = evaluate_max(&view, &[], &mut scratch);
    let sum_eval = evaluate_sum(&view, &[], &mut scratch);
    println!("player 0 on a path, k = {k}; candidate strategy: buy nothing");
    println!("  MaxNCG evaluation: {max_eval:?} (plain infinite cost)");
    println!("  SumNCG evaluation: {sum_eval:?} (Proposition 2.2 frontier rule)");
    assert_eq!(max_eval, DeviationEval::Disconnecting);
    assert_eq!(sum_eval, DeviationEval::ForbiddenFrontier);

    // Part 2 — dynamics under both objectives on the same tree.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let tree = ncg::graph::generators::random_tree(24, &mut rng);
    let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
    println!("\nsame 24-player random tree, α = 1.5, k = 3:");
    for objective in [Objective::Max, Objective::Sum] {
        let spec = GameSpec::new(1.5, 3, objective);
        let result = run(initial.clone(), &DynamicsConfig::new(spec));
        let m = &result.final_metrics;
        println!(
            "  {objective}: outcome {:?}, diameter {:?}, max degree {}, SC = {:.1}",
            result.outcome,
            m.diameter,
            m.max_degree,
            m.social_cost.unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nSumNCG players, paying a distance to *every* node, build denser and \
         shallower equilibria than MaxNCG players, and the frontier rule makes \
         them strictly more conservative — the asymmetry the paper highlights \
         when explaining why its experiments focus on MaxNCG."
    );
}
