//! The PoA landscape: for a grid of `(α, k)` pairs, print the
//! region of Figure 3, the theoretical bounds, and a measured
//! equilibrium quality from small-scale dynamics — theory and
//! experiment side by side.
//!
//! ```sh
//! cargo run --release --example poa_landscape
//! ```

use ncg::bounds::maxncg;
use ncg::core::Objective;
use ncg::experiments::{sweep, workloads};

fn main() {
    let n = 40;
    let reps = 4;
    let alphas = [0.5, 2.0, 10.0];
    let ks = [2u32, 4, 1000];
    println!(
        "MaxNCG PoA landscape on random trees (n = {n}, {reps} seeds per cell).\n\
         Theory columns use the asymptotic formulas at the same n with unit constants.\n"
    );
    println!(
        "{:>7} {:>6} {:>14} {:>12} {:>12} {:>12}",
        "α", "k", "region", "theory LB", "theory UB", "measured"
    );
    let states = workloads::tree_states(n, reps, 0x9a9a);
    let results = sweep::sweep(&states, &alphas, &ks, Objective::Max, None);
    let grouped = sweep::by_cell(&results, &alphas, &ks, reps);
    for (i, ((alpha, k), cells)) in grouped.iter().enumerate() {
        let _ = i;
        let vals: Vec<f64> = cells.iter().filter_map(|c| c.result.final_metrics.quality).collect();
        let measured = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        let b = maxncg::bounds(n, *alpha, *k);
        println!(
            "{:>7} {:>6} {:>14} {:>12.2} {:>12.2} {:>12.2}",
            alpha,
            k,
            format!("{:?}", maxncg::region(n, *alpha, *k)),
            b.lower,
            b.upper,
            measured
        );
    }
    println!(
        "\nReading guide: measured quality must sit between the asymptotic bounds \
         up to their hidden constants; the FullKnowledge rows collapse to the \
         (mostly constant) full-knowledge PoA, while small-k rows inflate with n."
    );
}
