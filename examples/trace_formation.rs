//! Watching a network form: run the dynamics with the move-level
//! trace enabled, narrate who bought and dropped what, and emit the
//! final equilibrium as an ownership DOT digraph.
//!
//! ```sh
//! cargo run --release --example trace_formation
//! ```

use ncg::core::dot::{to_ownership_dot, OwnershipDotOptions};
use ncg::core::{GameSpec, GameState};
use ncg::dynamics::{run, DynamicsConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let tree = ncg::graph::generators::random_tree(16, &mut rng);
    let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
    let spec = GameSpec::max(0.7, 3);
    let config = DynamicsConfig::new(spec).with_trace().with_per_round_metrics();
    let result = run(initial, &config);
    let trace = result.trace.as_ref().expect("trace enabled");

    println!("formation of a 16-player MaxNCG equilibrium (α = 0.7, k = 3):\n");
    for e in &trace.events {
        println!(
            "  round {} | player {:>2} | buys {:?}, drops {:?} | cost {:.1} → {:.1} (view {})",
            e.round,
            e.player,
            e.bought(),
            e.dropped(),
            e.old_cost,
            e.new_cost,
            e.view_size
        );
    }
    println!(
        "\n{} moves, total perceived saving {:.1}; outcome {:?}",
        trace.len(),
        trace.total_improvement(),
        result.outcome
    );
    for (i, m) in result.round_metrics.iter().enumerate() {
        println!(
            "  after round {}: diameter {:?}, social cost {:.1}",
            i + 1,
            m.diameter,
            m.social_cost.unwrap_or(f64::NAN)
        );
    }
    println!("\nequilibrium ownership digraph (u -> v means u bought the edge):\n");
    println!(
        "{}",
        to_ownership_dot(
            &result.state,
            &OwnershipDotOptions { name: "equilibrium".into(), highlight: vec![] }
        )
    );
}
