//! The Theorem 3.12 lower bound, end to end: build the stretched
//! toroidal grid, certify that it is a Local Knowledge Equilibrium
//! with the exact solver, and watch its PoA witness grow linearly
//! with the instance while the social optimum stays cheap.
//!
//! ```sh
//! cargo run --release --example torus_lower_bound
//! ```

use ncg::constructions::TorusGrid;
use ncg::core::GameSpec;
use ncg::graph::metrics;

fn main() {
    let (alpha, k) = (2.0, 2);
    let spec = GameSpec::max(alpha, k);
    println!("Theorem 3.12 instances at α = {alpha}, k = {k} (ℓ = ⌈α⌉ = 2, d = 2):\n");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "δ_d", "n", "diameter", "theory ≥", "SC/OPT", "LKE?"
    );
    for delta_last in [3u32, 5, 8, 12] {
        let torus =
            TorusGrid::for_theorem_312(alpha, k, delta_last).expect("parameters satisfy 1 < α ≤ k");
        let diam = metrics::diameter(torus.state().graph()).expect("torus is connected");
        let certified = torus.certify(&spec);
        println!(
            "{:>8} {:>8} {:>10} {:>12} {:>12.2} {:>10}",
            delta_last,
            torus.n(),
            diam,
            torus.diameter_lower_bound(),
            torus.witnessed_poa(&spec).unwrap(),
            certified
        );
        assert!(certified, "the gadget must certify inside its premise");
        assert!(diam >= torus.diameter_lower_bound(), "Corollary 3.4 violated");
    }
    println!(
        "\nEvery instance is a certified LKE whose social cost is dominated by its \
         Ω(δ_d) diameter, while the optimum (a star) costs Θ(αn): the PoA witness \
         grows linearly in n — the Ω(n/(α·2^Θ(log²(k/α)))) behaviour of Theorem 3.12."
    );
}
