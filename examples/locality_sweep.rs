//! How much does locality cost? A miniature of the paper's Figure 7:
//! sweep the knowledge radius `k` at fixed `α = 2` on random trees and
//! print the measured equilibrium quality (SC/OPT) next to the
//! theoretical trend curve.
//!
//! ```sh
//! cargo run --release --example locality_sweep
//! ```

use ncg::core::Objective;
use ncg::experiments::{sweep, workloads};
use ncg::stats::Summary;

fn main() {
    let n = 50;
    let reps = 5;
    let alpha = 2.0;
    let ks = [2u32, 3, 4, 5, 7, 10, 1000];
    println!("Equilibrium quality vs knowledge radius (random trees, n = {n}, α = {alpha}):\n");
    let states = workloads::tree_states(n, reps, 0xF16);
    let results = sweep::sweep(&states, &[alpha], &ks, Objective::Max, None);
    let grouped = sweep::by_cell(&results, &[alpha], &ks, reps);
    println!("{:>6} {:>16} {:>12}", "k", "SC/OPT (±95%)", "trend f(k)");
    let anchor = {
        let (_, cells) = grouped[0];
        let v: Vec<f64> = cells.iter().filter_map(|c| c.result.final_metrics.quality).collect();
        Summary::of(&v).mean / ncg::bounds::fig7_trend(ks[0])
    };
    for (i, &k) in ks.iter().enumerate() {
        let (_, cells) = grouped[i];
        let v: Vec<f64> = cells.iter().filter_map(|c| c.result.final_metrics.quality).collect();
        let s = Summary::of(&v);
        let trend = if k <= 30 {
            format!("{:.2}", anchor * ncg::bounds::fig7_trend(k))
        } else {
            "—".to_string()
        };
        println!("{:>6} {:>16} {:>12}", k, s.display(2), trend);
    }
    println!(
        "\nThe quality (empirical PoA) degrades for myopic players (small k) and \
         approaches the full-knowledge constant once k exceeds the stable networks' \
         diameter — the crossover the paper reports around k ≈ 5–7."
    );
}
