//! Quickstart: build a locality-based network creation game, run the
//! best-response dynamics, and inspect the equilibrium.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ncg::core::{GameSpec, GameState};
use ncg::dynamics::{run, DynamicsConfig};
use ncg::graph::generators;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. A workload: a uniform random tree on 40 players, each edge
    //    owned by a fair coin toss — exactly the paper's Section 5.2
    //    tree class.
    let mut rng = ChaCha8Rng::seed_from_u64(2014);
    let tree = generators::random_tree(40, &mut rng);
    let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
    println!(
        "initial network: n = {}, m = {}, diameter = {:?}",
        initial.n(),
        initial.graph().edge_count(),
        ncg::graph::metrics::diameter(initial.graph())
    );

    // 2. The game: MaxNCG with edge price α = 1 and knowledge radius
    //    k = 3 — players see only 3 hops and evaluate deviations
    //    against the worst network consistent with that view.
    let spec = GameSpec::max(1.0, 3);

    // 3. Round-robin best-response dynamics (Section 5.1): each player
    //    in turn plays an exact best response; stop when a full round
    //    is quiet.
    let result = run(initial, &DynamicsConfig::new(spec));
    println!("outcome: {:?} after {} accepted moves", result.outcome, result.total_moves);

    // 4. The stable network and its quality.
    let m = &result.final_metrics;
    println!(
        "equilibrium: diameter = {:?}, max degree = {}, max bought = {}, \
         social cost = {:.1}, SC/OPT = {:.2}",
        m.diameter,
        m.max_degree,
        m.max_bought,
        m.social_cost.unwrap(),
        m.quality.unwrap()
    );

    // 5. Certify: the reached profile is a Local Knowledge Equilibrium
    //    (no player can improve against her worst-case view).
    assert!(ncg::solver::is_lke(&result.state, &spec));
    println!("certified: the reached profile is an LKE ✓");
}
