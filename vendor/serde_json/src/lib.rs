//! Offline vendored shim of `serde_json`: `to_string`, `from_str`,
//! `to_value`, `from_value`, the [`json!`] macro and [`Value`], backed
//! by the vendored `serde` value tree.

#![deny(missing_docs)]

pub use serde::Value;

/// JSON error (parse or data-shape mismatch).
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(err: serde::DeError) -> Self {
        Error(err.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text)?;
    Ok(T::from_value(&value)?)
}

fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), Error> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!("expected `{}` at byte {pos}", ch as char, pos = *pos)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut elems = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(elems));
            }
            loop {
                elems.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(elems));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `]` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `}}` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}", pos = *pos)))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}", pos = *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        // Surrogate pairs are not reconstructed; the
                        // workspace never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Ok(x) = text.parse::<i64>() {
            return Ok(Value::I64(x));
        }
        if let Ok(x) = text.parse::<u64>() {
            return Ok(Value::U64(x));
        }
    }
    text.parse::<f64>().map(Value::F64).map_err(|_| Error::new(format!("invalid number `{text}`")))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Match serde_json: keep a trailing `.0` so the value reads
        // back as a float.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(elems) => {
            out.push('[');
            for (i, elem) in elems.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(elem, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_value(value, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Array(elems) if !elems.is_empty() => {
            out.push_str("[\n");
            for (i, elem) in elems.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_value_pretty(elem, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(key, out);
                out.push_str(": ");
                write_value_pretty(value, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

/// Builds a [`Value`] from JSON-ish syntax; supports the literal,
/// array and object forms the workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([$($elem:tt),* $(,)?]) => {
        $crate::Value::Array(vec![$($crate::json!($elem)),*])
    };
    ({$($key:tt : $value:tt),* $(,)?}) => {
        $crate::Value::Object(vec![$(($key.to_string(), $crate::json!($value))),*])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_typed_values() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[1,2],[],[3]]");
        let back: Vec<Vec<u32>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_nested_objects_and_escapes() {
        let v: Value = from_str(r#"{"a": [1, -2.5, true, null], "b": "x\n\"y\""}"#).unwrap();
        assert_eq!(v["a"][0], Value::I64(1));
        assert_eq!(v["a"][1], Value::F64(-2.5));
        assert_eq!(v["b"], Value::Str("x\n\"y\"".to_string()));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&0.025f64).unwrap(), "0.025");
        let back: f64 = from_str("3.0").unwrap();
        assert_eq!(back, 3.0);
    }

    #[test]
    fn json_macro_forms() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([2]), Value::Array(vec![Value::I64(2)]));
        let obj = json!({"k": [1, 2]});
        assert_eq!(obj["k"][1], Value::I64(2));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("[1,").is_err());
    }
}
