//! Offline vendored shim of `rand_chacha` 0.9 providing [`ChaCha8Rng`].
//!
//! This is a genuine ChaCha stream cipher core (8 double-rounds) — not
//! a toy LCG — so the statistical quality the workspace's generators
//! rely on is preserved. Only the API surface the workspace uses is
//! exposed: `ChaCha8Rng: RngCore + SeedableRng + Clone + Debug`.

#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A cryptographically strong deterministic RNG: ChaCha with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce words 4..16 of the ChaCha state.
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        // 8 rounds = 4 double-rounds.
        for _ in 0..4 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, init) in working.iter_mut().zip(state.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buffer = working;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, buffer: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_is_roughly_balanced() {
        // Sanity: popcount of 10k words should hover around 50%.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u64 = (0..10_000).map(|_| rng.next_u64().count_ones() as u64).sum();
        let frac = ones as f64 / (10_000.0 * 64.0);
        assert!((0.49..0.51).contains(&frac), "bit balance {frac}");
    }
}
