//! Offline vendored shim of the subset of `rand` 0.9 used by the `ncg`
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible implementation of the handful of
//! items the sources use: [`RngCore`], [`SeedableRng`] (including
//! `seed_from_u64` via SplitMix64), and the [`Rng`] extension trait
//! with `random`, `random_bool` and `random_range`. Swapping back to
//! the real crate is a one-line change in the workspace manifest.

#![deny(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw output blocks.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// exactly like rand 0.9 does, so seeds stay portable.
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 (Steele, Lea, Flood 2014), as used by rand.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly by [`Rng::random`].
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Widening-multiply bounded sampling (Lemire); the
                // slight bias for astronomically large spans is
                // irrelevant for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty : $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} must lie in [0, 1]");
        self.random::<f64>() < p
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.random_range(0..=5);
            assert!(y <= 5);
            let z: i64 = rng.random_range(-10..10);
            assert!((-10..10).contains(&z));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct S([u8; 32]);
        impl RngCore for S {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
        }
        impl SeedableRng for S {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                S(seed)
            }
        }
        assert_eq!(S::seed_from_u64(42).0, S::seed_from_u64(42).0);
        assert_ne!(S::seed_from_u64(42).0, S::seed_from_u64(43).0);
    }
}
