//! Offline vendored shim of the `criterion` API surface this
//! workspace's benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a deliberately simple wall-clock loop (one warm-up
//! batch, then `sample_size` timed batches, median-of-samples
//! reporting) — adequate for spotting order-of-magnitude regressions
//! offline; swap the real crate back in for rigorous statistics.
//!
//! Set `NCG_BENCH_FAST=1` to clamp every benchmark to one short batch
//! (used by CI smoke runs).

#![deny(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` naming, as in real criterion.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// A benchmark distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: usize,
    /// Per-sample wall-clock durations of the last `iter` call.
    last_sample_times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping its output opaque to the optimiser.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: aim for samples of at least ~1ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;
        self.last_sample_times.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.last_sample_times.push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

fn fast_mode() -> bool {
    std::env::var_os("NCG_BENCH_FAST").is_some_and(|v| v != "0")
}

fn report(name: &str, bencher: &Bencher) {
    let mut times = bencher.last_sample_times.clone();
    if times.is_empty() {
        return;
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let best = times[0];
    println!("{name:<60} median {median:>12.3?}   best {best:>12.3?}");
}

/// A named collection of related benchmarks. Holds the `&mut
/// Criterion` borrow for source compatibility with real criterion's
/// group lifetimes.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the shim's sampling is fixed-cost.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim warm-up is fixed-cost.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.group_name, id.name);
        let samples = if fast_mode() { 1 } else { self.sample_size };
        let mut bencher = Bencher { samples, last_sample_times: Vec::new() };
        routine(&mut bencher);
        report(&full, &bencher);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |bencher| routine(bencher, input))
    }

    /// Ends the group (marker for source compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for compatibility; the shim has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group_name = group_name.into();
        println!("group {group_name}");
        let sample_size = if fast_mode() { 1 } else { 20 };
        BenchmarkGroup { _criterion: self, group_name, sample_size }
    }
}

/// Declares a group function calling each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        std::env::set_var("NCG_BENCH_FAST", "1");
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(2);
        let mut runs = 0u64;
        group.bench_function("count", |bencher| {
            bencher.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 42), &42u64, |bencher, &x| {
            bencher.iter(|| x * 2)
        });
        group.finish();
        assert!(runs > 0);
    }
}
