//! Offline vendored shim of `serde_derive`.
//!
//! Hand-rolled derive macros (no `syn`/`quote` available offline) for
//! the shapes this workspace actually uses:
//!
//! * structs with named fields;
//! * enums whose variants are unit or struct (named-field) variants.
//!
//! Generics, tuple structs/variants and `#[serde(...)]` attributes are
//! rejected with a compile error rather than silently mis-handled.
//! The generated impls target the value-tree traits of the vendored
//! `serde` shim and reproduce real serde's JSON conventions.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// One enum variant: its name plus `None` (unit) or its named fields.
type Variant = (String, Option<Vec<String>>);

enum Shape {
    /// Named fields of a struct.
    Struct(Vec<String>),
    /// Enum variants.
    Enum(Vec<Variant>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().expect("valid error tokens")
        }
    };
    let code = match (mode, &shape) {
        (Mode::Serialize, Shape::Struct(fields)) => serialize_struct(&name, fields),
        (Mode::Deserialize, Shape::Struct(fields)) => deserialize_struct(&name, fields),
        (Mode::Serialize, Shape::Enum(variants)) => serialize_enum(&name, variants),
        (Mode::Deserialize, Shape::Enum(variants)) => deserialize_enum(&name, variants),
    };
    code.parse().expect("generated impl parses")
}

/// Parses `[attrs] [pub] (struct|enum) Name { ... }`, returning the
/// type name and its shape. Field/variant *types* are never needed —
/// the generated code lets inference pick the right `from_value`.
fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let mut tokens = input.into_iter().peekable();
    skip_attributes_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(word)) => word.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(word)) => word.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!("serde shim derive does not support generic type `{name}`"));
            }
            Some(_) => continue,
            None => return Err(format!("no braced body found for `{name}`")),
        }
    };
    match kind.as_str() {
        "struct" => Ok((name, Shape::Struct(parse_named_fields(body)?))),
        "enum" => Ok((name, Shape::Enum(parse_variants(body)?))),
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

fn skip_attributes_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(word)) if word.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Splits a brace-group body on commas that sit outside any `<...>`
/// nesting (parens/brackets/braces are opaque `Group`s already).
fn split_top_level_commas(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for token in body {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("non-empty").push(token);
    }
    chunks.retain(|chunk| !chunk.is_empty());
    chunks
}

/// `name: Type` chunks → field names.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    split_top_level_commas(body)
        .into_iter()
        .map(|chunk| {
            let mut tokens = chunk.into_iter().peekable();
            skip_attributes_and_vis(&mut tokens);
            match tokens.next() {
                Some(TokenTree::Ident(word)) => Ok(word.to_string()),
                other => Err(format!("expected field name, found {other:?}")),
            }
        })
        .collect()
}

/// Variant chunks → `(name, None | Some(field names))`.
fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    split_top_level_commas(body)
        .into_iter()
        .map(|chunk| {
            let mut tokens = chunk.into_iter().peekable();
            skip_attributes_and_vis(&mut tokens);
            let name = match tokens.next() {
                Some(TokenTree::Ident(word)) => word.to_string(),
                other => return Err(format!("expected variant name, found {other:?}")),
            };
            match tokens.next() {
                None => Ok((name, None)),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Ok((name.clone(), Some(parse_named_fields(g.stream())?)))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Err(format!("serde shim derive does not support tuple variant `{name}`"))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => Err(format!(
                    "serde shim derive does not support discriminants (variant `{name}`)"
                )),
                other => Err(format!("unexpected token after variant `{name}`: {other:?}")),
            }
        })
        .collect()
}

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let mut pushes = String::new();
    for field in fields {
        let _ = writeln!(
            pushes,
            "fields.push(({field:?}.to_string(), ::serde::Serialize::to_value(&self.{field})));"
        );
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let mut inits = String::new();
    for field in fields {
        let _ = writeln!(
            inits,
            "{field}: ::serde::Deserialize::from_value(::serde::require(v, {name:?}, {field:?})?)?,"
        );
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if v.as_object().is_none() {{\n\
                     return ::std::result::Result::Err(::serde::DeError::invalid_type(\"object\", v));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (variant, fields) in variants {
        match fields {
            None => {
                let _ = writeln!(
                    arms,
                    "{name}::{variant} => ::serde::Value::Str({variant:?}.to_string()),"
                );
            }
            Some(fields) => {
                let bindings = fields.join(", ");
                let mut pushes = String::new();
                for field in fields {
                    let _ = writeln!(
                        pushes,
                        "fields.push(({field:?}.to_string(), ::serde::Serialize::to_value({field})));"
                    );
                }
                let _ = writeln!(
                    arms,
                    "{name}::{variant} {{ {bindings} }} => {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(vec![({variant:?}.to_string(), \
                             ::serde::Value::Object(fields))])\n\
                     }},"
                );
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for (variant, fields) in variants {
        match fields {
            None => {
                let _ = writeln!(
                    unit_arms,
                    "{variant:?} => return ::std::result::Result::Ok({name}::{variant}),"
                );
            }
            Some(fields) => {
                let mut inits = String::new();
                for field in fields {
                    let _ = writeln!(
                        inits,
                        "{field}: ::serde::Deserialize::from_value(\
                             ::serde::require(inner, {name:?}, {field:?})?)?,"
                    );
                }
                let _ = writeln!(
                    tagged_arms,
                    "{variant:?} => return ::std::result::Result::Ok({name}::{variant} {{ {inits} }}),"
                );
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if let ::std::option::Option::Some(tag) = v.as_str() {{\n\
                     match tag {{ {unit_arms} _ => {{}} }}\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\n\
                         format!(\"unknown unit variant `{{tag}}` for {name}\")));\n\
                 }}\n\
                 let obj = v.as_object().ok_or_else(|| \
                     ::serde::DeError::invalid_type(\"string or object\", v))?;\n\
                 if obj.len() != 1 {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\n\
                         \"expected single-key object for externally tagged enum {name}\"));\n\
                 }}\n\
                 let (tag, inner) = (&obj[0].0, &obj[0].1);\n\
                 match tag.as_str() {{ {tagged_arms} _ => {{}} }}\n\
                 ::std::result::Result::Err(::serde::DeError::custom(\n\
                     format!(\"unknown variant `{{tag}}` for {name}\")))\n\
             }}\n\
         }}"
    )
}
