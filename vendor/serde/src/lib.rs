//! Offline vendored shim of `serde`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a miniature serde: [`Serialize`] lowers a value to a JSON
//! [`Value`] tree, [`Deserialize`] rebuilds it. The derive macros in
//! `serde_derive` generate impls for plain structs and for enums with
//! unit/struct variants — exactly the shapes this workspace uses — and
//! follow real serde's JSON conventions (struct → object, unit variant
//! → string, struct variant → externally tagged object) so serialised
//! artifacts stay compatible if the real crates are ever restored.

#![deny(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree; re-exported by `serde_json` as
/// `serde_json::Value`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer outside `i64` range.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(elems) => Some(elems),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The number as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(x) if x >= 0 => Some(x as u64),
            Value::U64(x) => Some(x),
            Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Some(x as u64),
            _ => None,
        }
    }

    /// The number as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) if x <= i64::MAX as u64 => Some(x as i64),
            Value::F64(x)
                if x.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&x) =>
            {
                Some(x as i64)
            }
            _ => None,
        }
    }

    /// Looks up a field of an object.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_object().and_then(|fields| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v))
    }

    /// One-line human-readable type name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, name: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get_field(name).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, name: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Vec::new());
        }
        let Value::Object(fields) = self else {
            panic!("cannot index {} with a string key", self.kind());
        };
        if let Some(pos) = fields.iter().position(|(k, _)| k == name) {
            &mut fields[pos].1
        } else {
            fields.push((name.to_string(), Value::Null));
            &mut fields.last_mut().expect("just pushed").1
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(elems) => &elems[idx],
            other => panic!("cannot index {} with a usize", other.kind()),
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(elems) => &mut elems[idx],
            other => panic!("cannot index {} with a usize", other.kind()),
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// A "missing field" error.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// An "unexpected shape" error.
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        DeError(format!("invalid type: expected {expected}, found {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization to a [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetches a required struct field during derived deserialization.
pub fn require<'v>(v: &'v Value, ty: &str, field: &str) -> Result<&'v Value, DeError> {
    v.get_field(field).ok_or_else(|| DeError::missing_field(ty, field))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::invalid_type("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as u64;
                if x <= i64::MAX as u64 { Value::I64(x as i64) } else { Value::U64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let x = v.as_u64().ok_or_else(|| DeError::invalid_type("unsigned integer", v))?;
                <$t>::try_from(x).map_err(|_| DeError::custom(
                    format!("integer {x} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let x = v.as_i64().ok_or_else(|| DeError::invalid_type("integer", v))?;
                <$t>::try_from(x).map_err(|_| DeError::custom(
                    format!("integer {x} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        // JSON has no Infinity/NaN; mirror serde_json's `null`.
        if self.is_finite() {
            Value::F64(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::invalid_type("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(elems) => elems.iter().map(T::from_value).collect(),
            other => Err(DeError::invalid_type("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let elems = v.as_array().ok_or_else(|| DeError::invalid_type("array", v))?;
                let expected = [$($idx),+].len();
                if elems.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected array of length {expected}, found {}", elems.len())));
                }
                Ok(($($name::from_value(&elems[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(Option::<u32>::from_value(&None::<u32>.to_value()).unwrap(), None);
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![]];
        assert_eq!(Vec::<Vec<u32>>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).is_err());
    }

    #[test]
    fn index_mut_inserts_and_replaces() {
        let mut v = Value::Object(vec![("a".into(), Value::I64(1))]);
        v["a"] = Value::I64(2);
        v["b"] = Value::Bool(true);
        assert_eq!(v["a"], Value::I64(2));
        assert_eq!(v["b"], Value::Bool(true));
        assert_eq!(v["missing"], Value::Null);
    }
}
