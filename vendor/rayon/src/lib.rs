//! Offline vendored shim of the `rayon` API surface this workspace
//! uses: `into_par_iter()` on ranges and vectors with `map`,
//! `map_init`, `enumerate` and indexed `collect`, plus
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`].
//!
//! Unlike most offline shims this one is **really parallel**: maps are
//! executed on `std::thread::scope` workers, one chunk per hardware
//! thread, with deterministic (input-order) results. There is no work
//! stealing, so very skewed workloads balance worse than real rayon —
//! an acceptable trade for a dependency-free build.

#![deny(missing_docs)]

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set while the current thread is a [`par_map`] worker; nested
    /// parallel maps run inline instead of spawning another full
    /// thread set (real rayon reuses its pool the same way).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn current_threads() -> usize {
    if IN_WORKER.with(|c| c.get()) {
        return 1;
    }
    POOL_THREADS
        .with(|c| c.get())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        .max(1)
}

/// Restores a thread-local [`Cell`] on drop, so overrides cannot leak
/// past a panicking closure.
struct CellRestore<T: Copy + 'static> {
    cell: &'static std::thread::LocalKey<Cell<T>>,
    previous: T,
}

impl<T: Copy + 'static> CellRestore<T> {
    fn set(cell: &'static std::thread::LocalKey<Cell<T>>, value: T) -> Self {
        let previous = cell.with(|c| c.replace(value));
        CellRestore { cell, previous }
    }
}

impl<T: Copy + 'static> Drop for CellRestore<T> {
    fn drop(&mut self) {
        self.cell.with(|c| c.set(self.previous));
    }
}

/// An eager "parallel" iterator: the items are materialised, adapters
/// fan the work out over scoped threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion into a [`ParIter`]; mirrors `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par {
    ($($t:ty),* $(,)?) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Order-preserving parallel map over owned items.
fn par_map<T: Send, U: Send, S, I, F>(items: Vec<T>, init: I, f: F) -> Vec<U>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    let n = items.len();
    let threads = current_threads().min(n);
    if threads <= 1 {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in slots.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(|| {
                let _worker = CellRestore::set(&IN_WORKER, true);
                let mut state = init();
                for (slot, dst) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                    let item = slot.take().expect("slot filled exactly once");
                    *dst = Some(f(&mut state, item));
                }
            });
        }
    });
    out.into_iter().map(|slot| slot.expect("worker filled every slot")).collect()
}

impl<T: Send> ParIter<T> {
    /// Parallel map; results keep input order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter { items: par_map(self.items, || (), |(), item| f(item)) }
    }

    /// Parallel map with per-worker scratch state created by `init` —
    /// rayon's `map_init`.
    pub fn map_init<S, U, I, F>(self, init: I, f: F) -> ParIter<U>
    where
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> U + Sync,
    {
        ParIter { items: par_map(self.items, init, f) }
    }

    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Collects the (already ordered) results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Error returned by [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A scoped thread-count override; `install` runs the closure with the
/// pool's thread count applied to every parallel map it performs.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread-count override installed; the
    /// override is restored even if `f` panics.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _restore = CellRestore::set(&POOL_THREADS, self.num_threads);
        f()
    }
}

/// Commonly used items, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let doubled: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_reuses_state_and_keeps_order() {
        let out: Vec<u64> = (0..257u64)
            .into_par_iter()
            .map_init(Vec::<u64>::new, |scratch, x| {
                scratch.push(x);
                x + 1
            })
            .collect();
        assert_eq!(out, (1..=257).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_then_map() {
        let out: Vec<(usize, char)> =
            vec!['a', 'b', 'c'].into_par_iter().enumerate().map(|p| p).collect();
        assert_eq!(out, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
    }

    #[test]
    fn single_thread_pool_install() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> = pool.install(|| (0..64usize).into_par_iter().map(|x| x).collect());
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn nested_maps_run_inline_and_stay_correct() {
        // The inner map must not fan out again (workers run nested
        // parallelism inline), and results must stay ordered.
        let out: Vec<Vec<usize>> = (0..64usize)
            .into_par_iter()
            .map(|x| (0..8usize).into_par_iter().map(move |y| x * 8 + y).collect::<Vec<_>>())
            .collect();
        for (x, inner) in out.iter().enumerate() {
            assert_eq!(*inner, (x * 8..x * 8 + 8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn install_restores_override_after_panic() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"))
        }));
        assert!(result.is_err());
        // The override must not leak into subsequent code.
        assert!(crate::POOL_THREADS.with(|c| c.get()).is_none());
    }
}
