//! Offline vendored shim of the `rayon` API surface this workspace
//! uses: `into_par_iter()` on ranges and vectors with `map`,
//! `map_init`, `enumerate` and indexed `collect`, plus
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`].
//!
//! Unlike most offline shims this one is **really parallel** *and*
//! load-balanced: maps run on `std::thread::scope` workers over
//! per-worker deques. Each worker pops work from the front of its own
//! deque; a worker that runs dry steals the back *half* of the
//! fullest other deque (the classic steal-half discipline real rayon's
//! Chase–Lev deques approximate), so skewed workloads — a sweep where
//! a few `(α, k)` cells run 200 dynamics rounds while most converge in
//! 3 — keep every core busy instead of idling behind one static
//! chunk. Results are still deterministic (input-order): items carry
//! their index and land in pre-assigned output slots.

#![deny(missing_docs)]

use std::cell::Cell;
use std::ops::Range;
use std::sync::Mutex;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set while the current thread is a [`par_map`] worker; nested
    /// parallel maps run inline instead of spawning another full
    /// thread set (real rayon reuses its pool the same way).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn current_threads() -> usize {
    if IN_WORKER.with(|c| c.get()) {
        return 1;
    }
    POOL_THREADS
        .with(|c| c.get())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        .max(1)
}

/// The number of worker threads a parallel map issued here would use —
/// mirrors `rayon::current_num_threads`. Honours an installed
/// [`ThreadPool`] override and reports 1 inside a pool worker (nested
/// parallelism runs inline), which is what lets callers size a fan-out
/// without ever over-subscribing.
pub fn current_num_threads() -> usize {
    current_threads()
}

/// Restores a thread-local [`Cell`] on drop, so overrides cannot leak
/// past a panicking closure.
struct CellRestore<T: Copy + 'static> {
    cell: &'static std::thread::LocalKey<Cell<T>>,
    previous: T,
}

impl<T: Copy + 'static> CellRestore<T> {
    fn set(cell: &'static std::thread::LocalKey<Cell<T>>, value: T) -> Self {
        let previous = cell.with(|c| c.replace(value));
        CellRestore { cell, previous }
    }
}

impl<T: Copy + 'static> Drop for CellRestore<T> {
    fn drop(&mut self) {
        self.cell.with(|c| c.set(self.previous));
    }
}

/// An eager "parallel" iterator: the items are materialised, adapters
/// fan the work out over scoped threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion into a [`ParIter`]; mirrors `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par {
    ($($t:ty),* $(,)?) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// One worker's share of the input, as an index range into the shared
/// slot arrays. The owner pops single items from the *front*; thieves
/// take the back half in one lock acquisition. Contention is one
/// uncontended lock per item plus one per steal — negligible against
/// the per-item work this workspace parallelises (whole dynamics
/// runs, BFS batches).
struct Deque {
    range: Mutex<Range<usize>>,
}

impl Deque {
    fn new(range: Range<usize>) -> Self {
        Deque { range: Mutex::new(range) }
    }

    /// Owner path: next index from the front, if any.
    fn pop_front(&self) -> Option<usize> {
        let mut r = self.range.lock().expect("deque lock poisoned");
        if r.start < r.end {
            let i = r.start;
            r.start += 1;
            Some(i)
        } else {
            None
        }
    }

    /// Remaining length (racy snapshot — victims are re-checked under
    /// the lock in [`Deque::steal_back_half`]).
    fn len(&self) -> usize {
        let r = self.range.lock().expect("deque lock poisoned");
        r.end - r.start
    }

    /// Thief path: detach the back half (at least one item) as a new
    /// range, or `None` if the deque is empty.
    fn steal_back_half(&self) -> Option<Range<usize>> {
        let mut r = self.range.lock().expect("deque lock poisoned");
        let len = r.end - r.start;
        if len == 0 {
            return None;
        }
        let take = len.div_ceil(2);
        let stolen = (r.end - take)..r.end;
        r.end -= take;
        Some(stolen)
    }

    /// Hands a stolen range to this (empty) deque.
    fn refill(&self, range: Range<usize>) {
        let mut r = self.range.lock().expect("deque lock poisoned");
        debug_assert!(r.start >= r.end, "refilling a non-empty deque");
        *r = range;
    }
}

/// Order-preserving work-stealing parallel map over owned items.
fn par_map<T: Send, U: Send, S, I, F>(items: Vec<T>, init: I, f: F) -> Vec<U>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    let n = items.len();
    let threads = current_threads().min(n);
    if threads <= 1 {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Initial even split; stealing rebalances from there.
    let chunk = n.div_ceil(threads);
    let deques: Vec<Deque> =
        (0..threads).map(|w| Deque::new((w * chunk).min(n)..((w + 1) * chunk).min(n))).collect();
    std::thread::scope(|scope| {
        for me in 0..threads {
            let slots = &slots;
            let out = &out;
            let deques = &deques;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let _worker = CellRestore::set(&IN_WORKER, true);
                let mut state = init();
                loop {
                    // Drain own deque from the front.
                    while let Some(i) = deques[me].pop_front() {
                        let item = slots[i]
                            .lock()
                            .expect("slot lock poisoned")
                            .take()
                            .expect("slot consumed exactly once");
                        let result = f(&mut state, item);
                        *out[i].lock().expect("slot lock poisoned") = Some(result);
                    }
                    // Dry: steal the back half of the fullest victim.
                    let victim = (0..threads)
                        .filter(|&w| w != me)
                        .map(|w| (deques[w].len(), w))
                        .max()
                        .filter(|&(len, _)| len > 0)
                        .map(|(_, w)| w);
                    let Some(victim) = victim else { break };
                    // The victim may have drained between the scan and
                    // the steal; just rescan in that case.
                    if let Some(stolen) = deques[victim].steal_back_half() {
                        deques[me].refill(stolen);
                    }
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| {
            slot.into_inner().expect("slot lock poisoned").expect("worker filled every slot")
        })
        .collect()
}

impl<T: Send> ParIter<T> {
    /// Parallel map; results keep input order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter { items: par_map(self.items, || (), |(), item| f(item)) }
    }

    /// Parallel map with per-worker scratch state created by `init` —
    /// rayon's `map_init`.
    pub fn map_init<S, U, I, F>(self, init: I, f: F) -> ParIter<U>
    where
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> U + Sync,
    {
        ParIter { items: par_map(self.items, init, f) }
    }

    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Collects the (already ordered) results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Error returned by [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A scoped thread-count override; `install` runs the closure with the
/// pool's thread count applied to every parallel map it performs.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread-count override installed; the
    /// override is restored even if `f` panics.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _restore = CellRestore::set(&POOL_THREADS, self.num_threads);
        f()
    }
}

/// Commonly used items, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let doubled: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_reuses_state_and_keeps_order() {
        let out: Vec<u64> = (0..257u64)
            .into_par_iter()
            .map_init(Vec::<u64>::new, |scratch, x| {
                scratch.push(x);
                x + 1
            })
            .collect();
        assert_eq!(out, (1..=257).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_then_map() {
        let out: Vec<(usize, char)> =
            vec!['a', 'b', 'c'].into_par_iter().enumerate().map(|p| p).collect();
        assert_eq!(out, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
    }

    #[test]
    fn single_thread_pool_install() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> = pool.install(|| (0..64usize).into_par_iter().map(|x| x).collect());
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn nested_maps_run_inline_and_stay_correct() {
        // The inner map must not fan out again (workers run nested
        // parallelism inline), and results must stay ordered.
        let out: Vec<Vec<usize>> = (0..64usize)
            .into_par_iter()
            .map(|x| (0..8usize).into_par_iter().map(move |y| x * 8 + y).collect::<Vec<_>>())
            .collect();
        for (x, inner) in out.iter().enumerate() {
            assert_eq!(*inner, (x * 8..x * 8 + 8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn skewed_workloads_complete_correctly_and_in_order() {
        // A classic work-stealing stress shape: the first items are
        // orders of magnitude heavier than the rest. Static chunking
        // would serialise behind worker 0; either way every slot must
        // be filled exactly once and order preserved.
        let out: Vec<u64> = (0..512u64)
            .into_par_iter()
            .map(|x| {
                let spins = if x < 4 { 200_000 } else { 50 };
                let mut acc = x;
                for i in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(acc);
                x * 3
            })
            .collect();
        assert_eq!(out, (0..512).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn stealing_rebalances_a_one_sided_split() {
        // All heavy items land in the first static chunk; with ≥ 2
        // workers the run can only finish correctly if every item is
        // processed exactly once regardless of who ends up running it.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let processed = AtomicUsize::new(0);
        let out: Vec<usize> = (0..64usize)
            .into_par_iter()
            .map(|x| {
                processed.fetch_add(1, Ordering::Relaxed);
                if x < 8 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                x
            })
            .collect();
        assert_eq!(processed.load(Ordering::Relaxed), 64);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn stealing_overlaps_a_chunk_of_sleepers() {
        // 2 workers, 4 items, the two *sleepy* items both in worker
        // 0's initial half. Static chunking would run them back to
        // back (≈ 2T wall even on one core — sleeps don't need CPU);
        // steal-half lets worker 1 lift one of them as soon as its own
        // chunk (two no-ops) is done, so the sleeps overlap (≈ T).
        let t = std::time::Duration::from_millis(80);
        let pool = crate::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let start = std::time::Instant::now();
        let out: Vec<usize> = pool.install(|| {
            (0..4usize)
                .into_par_iter()
                .map(|x| {
                    if x < 2 {
                        std::thread::sleep(t);
                    }
                    x
                })
                .collect()
        });
        let elapsed = start.elapsed();
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(
            elapsed < t * 2,
            "sleepy items did not overlap ({elapsed:?} ≥ {:?}) — stealing broken?",
            t * 2
        );
    }

    #[test]
    fn current_num_threads_tracks_pool_and_workers() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
        assert!(crate::current_num_threads() >= 1);
        // Inside a worker, nested parallelism is inline: threads = 1.
        let inner: Vec<usize> = pool.install(|| {
            (0..4usize).into_par_iter().map(|_| crate::current_num_threads()).collect()
        });
        assert!(inner.into_iter().all(|t| t == 1));
    }

    #[test]
    fn install_restores_override_after_panic() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"))
        }));
        assert!(result.is_err());
        // The override must not leak into subsequent code.
        assert!(crate::POOL_THREADS.with(|c| c.get()).is_none());
    }
}
