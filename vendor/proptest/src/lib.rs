//! Offline vendored shim of the `proptest` API surface this workspace
//! uses: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, integer-range and tuple strategies,
//! [`collection::vec`], [`any`], [`ProptestConfig`] and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic**: each test derives its RNG seed from the test
//!   name (override with `PROPTEST_SEED`), so `cargo test` is
//!   bit-reproducible run to run.
//! * **No shrinking**: a failing case reports its inputs via the
//!   panic message of `prop_assert*` but is not minimised.
//! * Case count comes from [`ProptestConfig`] or the `PROPTEST_CASES`
//!   environment variable (which, when set, wins everywhere).

#![deny(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The RNG handed to strategies; a seeded ChaCha8.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Creates the RNG for a named test: seed = FNV-1a of the test
    /// name, XORed with `PROPTEST_SEED` when set.
    pub fn for_test(test_name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        if let Some(seed) = std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()) {
            let seed: u64 = seed;
            hash ^= seed;
        }
        TestRng(ChaCha8Rng::seed_from_u64(hash))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration; only `cases` is honoured by the shim, the
/// other knobs exist for source compatibility.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (still overridden by
    /// `PROPTEST_CASES` when that is set).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }

    /// The case count after applying the environment override.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
            .max(1)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32, max_shrink_iters: 0 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f`.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values passing `f`; gives up (panics) after 1000
    /// consecutive rejections like real proptest does.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, reason }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.inner.generate(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.reason);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                    u64 => next_u64, usize => next_u64,
                    i8 => next_u32, i16 => next_u32, i32 => next_u32,
                    i64 => next_u64, isize => next_u64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random::<f64>()
    }
}

/// Strategy over the whole domain of `T` — `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A size specification: fixed or a range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from the size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)` — mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.random_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Skips the rest of the test when the assumption fails. Coarser than
/// real proptest (which only skips the current case) but sound: no
/// assertion is ever reached with an assumption-violating input.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests: an optional
/// `#![proptest_config(expr)]` header followed by
/// `fn name(pat in strategy, ...) { body }` items (each carrying its
/// own attributes, typically `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let cases = config.resolved_cases();
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..cases {
                    // Direct `let` destructuring keeps the bindings'
                    // types concrete (closure *parameters* would defeat
                    // method resolution inside the body); the body then
                    // runs in a Result-returning closure so
                    // `return Ok(())` early-exits work like upstream.
                    let ($($pat,)*) = ($($crate::Strategy::generate(&($strategy), &mut rng),)*);
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = __outcome {
                        panic!("property test case failed: {message}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_strategy_respect_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        let s = crate::collection::vec((0u32..5, 10usize..=12), 3..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 5);
                assert!((10..=12).contains(&b));
            }
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        if std::env::var("PROPTEST_SEED").is_ok() {
            return; // external override defeats the point of this test
        }
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end.
        #[test]
        fn macro_end_to_end(x in 0u32..10, v in crate::collection::vec(0usize..4, 0..5)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 5);
            prop_assume!(x > 0);
            prop_assert_ne!(x, 0);
        }
    }
}
