//! Offline vendored shim of `parking_lot`: thin wrappers over the
//! standard library locks exposing the non-poisoning `lock()` /
//! `read()` / `write()` API the workspace uses.

#![deny(missing_docs)]

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
