//! Section 2 of the paper grounds NP-hardness of best responses in a
//! reduction from MINIMUM DOMINATING SET: a new player joining the
//! network `G` (initially buying edges to everyone) has a best
//! response that buys exactly the edges towards a minimum dominating
//! set of `G`. These tests *execute* that reduction: they compare the
//! exact solver's best response against a brute-force domination
//! number.

use ncg::core::{GameSpec, GameState, PlayerView};
use ncg::graph::{generators, Graph, NodeId};
use ncg::solver::{max_br, Mode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Brute-force domination number of `g` (n ≤ 20).
fn domination_number(g: &Graph) -> usize {
    let n = g.node_count();
    assert!(n <= 20);
    let mut best = n;
    'mask: for mask in 0u32..(1 << n) {
        let size = mask.count_ones() as usize;
        if size >= best {
            continue;
        }
        for v in 0..n as NodeId {
            let dominated =
                mask & (1 << v) != 0 || g.neighbors(v).iter().any(|&u| mask & (1 << u) != 0);
            if !dominated {
                continue 'mask;
            }
        }
        best = size;
    }
    best
}

/// Builds the reduction instance: the host graph `G` plus a new
/// player `u = n` buying edges to every vertex (the paper's starting
/// strategy for the joining player), with `G`'s own edges owned by
/// arbitrary endpoints.
fn joining_player_state(g: &Graph) -> (GameState, NodeId) {
    let n = g.node_count();
    let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); n + 1];
    for (a, b) in g.edges() {
        strategies[a as usize].push(b);
    }
    strategies[n] = (0..n as NodeId).collect();
    (GameState::from_strategies(n + 1, strategies), n as NodeId)
}

#[test]
fn joining_players_best_response_is_a_minimum_dominating_set() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD5);
    for trial in 0..6 {
        let g = generators::gnp_connected(12, 0.25, 500, &mut rng).unwrap();
        let gamma = domination_number(&g);
        if gamma < 2 {
            continue; // degenerate: a universal vertex trivialises the instance
        }
        let (state, u) = joining_player_state(&g);
        // α = 2/n as in the Mihalák–Schlegel reduction: cheap enough
        // that staying adjacent-ish to everyone beats dropping to
        // eccentricity 3+, expensive enough that edges are not free.
        let alpha = 2.0 / g.node_count() as f64;
        let spec = GameSpec::max(alpha, 2);
        let view = PlayerView::build(&state, u, spec.k);
        assert_eq!(view.len(), state.n(), "the joining player sees everything at k = 2");
        let best = max_br::max_best_response(&spec, &view, Mode::Exact);
        // Best response: buy a minimum dominating set (eccentricity 2)
        // — cost α·γ + 2 — unless buying everything (ecc 1) is cheaper,
        // which α = 2/n rules out for γ ≥ 2... compare both anyway.
        let buy_all = alpha * g.node_count() as f64 + 1.0;
        let buy_mds = alpha * gamma as f64 + 2.0;
        let expected = buy_all.min(buy_mds);
        assert!(
            (best.total_cost - expected).abs() < 1e-9,
            "trial {trial}: solver found {}, reduction predicts {expected} (γ = {gamma})",
            best.total_cost
        );
        // When the MDS branch wins, the strategy must dominate G.
        if buy_mds < buy_all {
            assert_eq!(best.strategy_local.len(), gamma);
            let strategy_global: Vec<NodeId> = view.strategy_to_global(&best.strategy_local);
            for v in 0..g.node_count() as NodeId {
                let dominated = strategy_global.contains(&v)
                    || g.neighbors(v).iter().any(|w| strategy_global.contains(w));
                assert!(dominated, "trial {trial}: vertex {v} not dominated");
            }
        }
    }
}

#[test]
fn reduction_is_robust_to_the_players_current_strategy() {
    // The paper notes the best response is independent of the
    // strategy currently played. Start the joining player from the
    // empty strategy instead (she still sees everything through the
    // incoming edges? no — she is isolated; so instead start her with
    // a single edge) and verify the same optimum value is reached.
    let mut rng = ChaCha8Rng::seed_from_u64(0xD6);
    let g = generators::gnp_connected(11, 0.3, 500, &mut rng).unwrap();
    let n = g.node_count();
    let (state_all, u) = joining_player_state(&g);
    let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); n + 1];
    for (a, b) in g.edges() {
        strategies[a as usize].push(b);
    }
    strategies[n] = vec![0];
    let state_one = GameState::from_strategies(n + 1, strategies);
    let alpha = 2.0 / n as f64;
    // k large enough that even the single-edge player sees everything.
    let spec = GameSpec::max(alpha, 1000);
    let va = PlayerView::build(&state_all, u, spec.k);
    let vb = PlayerView::build(&state_one, u, spec.k);
    let ba = max_br::max_best_response(&spec, &va, Mode::Exact);
    let bb = max_br::max_best_response(&spec, &vb, Mode::Exact);
    // Optimal *total* cost net of the α·|σ| term structure is the
    // same game; the best-response values must coincide.
    assert!(
        (ba.total_cost - bb.total_cost).abs() < 1e-9,
        "best response must not depend on the current strategy: {} vs {}",
        ba.total_cost,
        bb.total_cost
    );
}

#[test]
fn domination_number_bruteforce_sanity() {
    assert_eq!(domination_number(&generators::star(8)), 1);
    assert_eq!(domination_number(&generators::path(9)), 3);
    assert_eq!(domination_number(&generators::cycle(9)), 3);
    assert_eq!(domination_number(&generators::complete(5)), 1);
}
