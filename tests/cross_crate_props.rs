//! Cross-crate property-based tests: invariants that must survive the
//! whole pipeline, on randomly generated instances.

use ncg::core::deviation::{current_total, evaluate_total, EvalScratch};
use ncg::core::{GameSpec, GameState, Objective, PlayerView};
use ncg::dynamics::{run, DynamicsConfig};
use ncg::graph::{generators, metrics, NodeId};
use ncg::solver::{max_br, sum_br, Mode};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a random connected game state on `n ≤ 16` players.
fn arb_state() -> impl Strategy<Value = GameState> {
    (6usize..16, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let tree = generators::random_tree(n, &mut rng);
        let mut g = tree;
        // Sprinkle a few extra edges for cycles.
        for _ in 0..n / 3 {
            let u = rand::Rng::random_range(&mut rng, 0..g.node_count() as NodeId);
            let v = rand::Rng::random_range(&mut rng, 0..g.node_count() as NodeId);
            if u != v {
                g.add_edge(u, v);
            }
        }
        GameState::from_graph_random_ownership(&g, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The exact MaxNCG solver never loses to exhaustive search and
    /// never wins (they agree up to EPS).
    #[test]
    fn solver_equals_exhaustive(state in arb_state(), k in 1u32..4, alpha in 0.05f64..6.0) {
        let spec = GameSpec::max(alpha, k);
        for u in 0..state.n() as NodeId {
            let view = PlayerView::build(&state, u, k);
            if view.candidates().len() > 14 {
                continue; // keep exhaustive fast
            }
            let exact = max_br::max_best_response(&spec, &view, Mode::Exact);
            let brute = ncg::core::equilibrium::best_response_exhaustive(&spec, &view).unwrap();
            prop_assert!((exact.total_cost - brute.total_cost).abs() < 1e-9,
                "u={}, solver={}, brute={}", u, exact.total_cost, brute.total_cost);
        }
    }

    /// Every best response (both objectives, both modes) is evaluable
    /// and not worse than standing still.
    #[test]
    fn best_responses_never_regress(state in arb_state(), k in 1u32..5, alpha in 0.05f64..8.0) {
        let mut scratch = EvalScratch::new();
        for objective in [Objective::Max, Objective::Sum] {
            let spec = GameSpec::new(alpha, k, objective);
            for u in 0..state.n() as NodeId {
                let view = PlayerView::build(&state, u, k);
                let current = current_total(&spec, &view);
                for mode in [Mode::Exact, Mode::Greedy] {
                    let d = match objective {
                        Objective::Max => max_br::max_best_response(&spec, &view, mode),
                        Objective::Sum => sum_br::sum_best_response(&spec, &view, mode),
                    };
                    prop_assert!(d.total_cost <= current + 1e-9);
                    // Contract: reported cost equals re-evaluation.
                    let re = evaluate_total(&spec, &view, &d.strategy_local, &mut scratch);
                    prop_assert!((re - d.total_cost).abs() < 1e-9
                        || (re.is_infinite() && d.total_cost.is_infinite()));
                }
            }
        }
    }

    /// Dynamics preserve state validity and connectivity, and are
    /// deterministic.
    #[test]
    fn dynamics_invariants(state in arb_state(), k in 1u32..5, alpha in 0.1f64..6.0) {
        let spec = GameSpec::max(alpha, k);
        let config = DynamicsConfig::new(spec);
        let a = run(state.clone(), &config);
        prop_assert!(a.state.validate().is_ok());
        prop_assert!(metrics::is_connected(a.state.graph()));
        let b = run(state, &config);
        prop_assert_eq!(a.state, b.state);
        prop_assert_eq!(a.outcome, b.outcome);
    }

    /// If the dynamics converge, the exact checker confirms an LKE.
    #[test]
    fn converged_is_lke(state in arb_state(), k in 2u32..4, alpha in 0.2f64..5.0) {
        let spec = GameSpec::max(alpha, k);
        let result = run(state, &DynamicsConfig::new(spec));
        if result.outcome.converged() {
            prop_assert!(ncg::solver::is_lke(&result.state, &spec));
        }
    }

    /// View semantics: with k at least the diameter, the view of every
    /// player is the whole graph and current_total equals the player's
    /// true cost.
    #[test]
    fn full_view_cost_equals_true_cost(state in arb_state(), alpha in 0.1f64..4.0) {
        let diam = metrics::diameter(state.graph()).unwrap();
        let spec = GameSpec::max(alpha, diam.max(1));
        for u in 0..state.n() as NodeId {
            let view = PlayerView::build(&state, u, spec.k);
            prop_assert_eq!(view.len(), state.n());
            let ecc = metrics::eccentricity(state.graph(), u).unwrap();
            let expected = alpha * state.bought(u) as f64 + ecc as f64;
            prop_assert!((current_total(&spec, &view) - expected).abs() < 1e-9);
        }
    }

    /// The social optimum formulas lower-bound every reachable state.
    #[test]
    fn optimum_is_a_lower_bound(state in arb_state(), alpha in 0.1f64..6.0) {
        for objective in [Objective::Max, Objective::Sum] {
            let spec = GameSpec::new(alpha, 3, objective);
            if let Some(sc) = ncg::core::social::social_cost(&state, &spec) {
                let opt = ncg::core::social::optimum_cost(state.n(), &spec);
                prop_assert!(sc >= opt - 1e-9,
                    "state cost {} below claimed optimum {} ({:?})", sc, opt, objective);
            }
        }
    }
}
