//! The paper's qualitative claims, verified at laptop scale.
//!
//! These tests pin the *shape* of the results — who wins, what grows,
//! where behaviour flips — rather than absolute numbers, which depend
//! on the authors' testbed.

use ncg::constructions::{cycle, TorusGrid};
use ncg::core::{GameSpec, GameState, Objective};
use ncg::dynamics::Outcome;
use ncg::experiments::{sweep, workloads};

/// Section 3.1 / Lemma 3.1: stable cycles make the PoA grow linearly
/// in `n` for fixed `α ≥ k − 1`.
#[test]
fn claim_cycle_poa_linear_in_n() {
    let spec = GameSpec::max(2.0, 2);
    let p1 = cycle::witnessed_poa(24, &spec);
    let p2 = cycle::witnessed_poa(48, &spec);
    let p4 = cycle::witnessed_poa(96, &spec);
    assert!(cycle::certify(24, &spec) && cycle::certify(48, &spec));
    let r21 = p2 / p1;
    let r42 = p4 / p2;
    assert!(
        (1.5..=2.5).contains(&r21) && (1.5..=2.5).contains(&r42),
        "doubling n should roughly double the PoA: ratios {r21:.2}, {r42:.2}"
    );
}

/// Introduction: "for constant values of k (regardless of α) … stable
/// graphs having diameter Ω(n)" — the torus diameter witness.
#[test]
fn claim_torus_diameter_linear_in_n() {
    let a = TorusGrid::for_theorem_312(2.0, 2, 4).unwrap();
    let b = TorusGrid::for_theorem_312(2.0, 2, 8).unwrap();
    let da = ncg::graph::metrics::diameter(a.state().graph()).unwrap() as f64;
    let db = ncg::graph::metrics::diameter(b.state().graph()).unwrap() as f64;
    let na = a.n() as f64;
    let nb = b.n() as f64;
    assert!(
        (db / da) / (nb / na) > 0.8,
        "diameter must scale ~linearly with n: d {da}→{db}, n {na}→{nb}"
    );
}

/// Section 5.4, "Knowledge of the network": view sizes decrease with
/// `α` and grow rapidly with `k`.
#[test]
fn claim_view_size_trends() {
    let n = 36;
    let reps = 4;
    let states = workloads::tree_states(n, reps, 0xBEEF);
    let alphas = [0.1, 5.0];
    let ks = [2u32, 4];
    let results = sweep::sweep(&states, &alphas, &ks, Objective::Max, None);
    let grouped = sweep::by_cell(&results, &alphas, &ks, reps);
    let avg_view = |ai: usize, ki: usize| {
        let (_, cells) = grouped[ai * ks.len() + ki];
        cells.iter().map(|c| c.result.final_metrics.avg_view).sum::<f64>() / cells.len() as f64
    };
    // Growing k widens views dramatically.
    assert!(avg_view(0, 1) > avg_view(0, 0));
    assert!(avg_view(1, 1) > avg_view(1, 0));
    // Growing α shrinks them (weakly, at small scale).
    assert!(avg_view(1, 0) <= avg_view(0, 0) + 1.0);
}

/// Section 5.4, "Convergence time": dynamics converge fast, and cycles
/// are rare.
#[test]
fn claim_fast_convergence_and_rare_cycles() {
    let reps = 6;
    let states = workloads::tree_states(30, reps, 0xCAFE);
    let alphas = [0.5, 2.0];
    let ks = [2u32, 5, 1000];
    let results = sweep::sweep(&states, &alphas, &ks, Objective::Max, None);
    let total = results.len();
    let mut converged = 0;
    let mut cycled = 0;
    let mut fast = 0;
    for c in &results {
        match c.result.outcome {
            Outcome::Converged { rounds } => {
                converged += 1;
                if rounds <= 7 {
                    fast += 1;
                }
            }
            Outcome::Cycled { .. } => cycled += 1,
            Outcome::MaxRoundsExceeded { .. } => {}
        }
    }
    assert!(converged + cycled == total, "no run may hit the round cap");
    assert!(cycled * 20 <= total, "cycles must be rare: {cycled}/{total}");
    assert!(
        fast * 100 >= converged * 95,
        "≥95% of converged runs should need ≤7 rounds ({fast}/{converged})"
    );
}

/// Section 5.4, "Quality of equilibria": at α = 10 the quality
/// degrades with n for small k but not at full knowledge (Figure 6
/// right panel's two extremes).
#[test]
fn claim_quality_gap_small_k_vs_full_knowledge() {
    let reps = 4;
    let alpha = 10.0;
    let quality = |n: usize, k: u32| {
        let states = workloads::tree_states(n, reps, 0xD00D);
        let results = sweep::sweep(&states, &[alpha], &[k], Objective::Max, None);
        let v: Vec<f64> = results.iter().filter_map(|c| c.result.final_metrics.quality).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let q_local = quality(48, 2);
    let q_full = quality(48, 1000);
    assert!(
        q_local > q_full,
        "myopic equilibria must be worse at α = 10: local {q_local:.2} vs full {q_full:.2}"
    );
}

/// Section 2: NP-hardness forces exact best responses through the
/// dominating-set reduction — sanity-check that the solver agrees with
/// brute force on a batch of random views (the Gurobi-replacement
/// claim of DESIGN.md §4).
#[test]
fn claim_solver_matches_bruteforce_on_random_views() {
    use ncg::core::equilibrium::best_response_exhaustive;
    use ncg::core::PlayerView;
    use ncg::solver::{max_br, Mode};
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xACE);
    for trial in 0..8 {
        let g = ncg::graph::generators::gnp_connected(14, 0.22, 300, &mut rng).unwrap();
        let state = GameState::from_graph_random_ownership(&g, &mut rng);
        let spec = GameSpec::max(0.7, 2 + (trial % 3) as u32);
        for u in 0..state.n() as u32 {
            let view = PlayerView::build(&state, u, spec.k);
            let exact = max_br::max_best_response(&spec, &view, Mode::Exact);
            let brute = best_response_exhaustive(&spec, &view).unwrap();
            assert!(
                (exact.total_cost - brute.total_cost).abs() < 1e-9,
                "trial {trial}, player {u}"
            );
        }
    }
}

/// Figure 9's punchline: restricting views does not *hurt* fairness;
/// the most lopsided equilibria appear under full knowledge with
/// cheap edges (hub formation).
#[test]
fn claim_full_knowledge_hubs_are_less_fair() {
    let reps = 4;
    let states = workloads::er_states(26, 0.18, reps, 0xFA1);
    let results = sweep::sweep(&states, &[0.2], &[2, 1000], Objective::Max, None);
    let grouped = sweep::by_cell(&results, &[0.2], &[2, 1000], reps);
    let unfair = |i: usize| {
        let (_, cells) = grouped[i];
        let v: Vec<f64> = cells.iter().filter_map(|c| c.result.final_metrics.unfairness).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let local = unfair(0);
    let full = unfair(1);
    assert!(
        local <= full + 0.5,
        "restricted views should be at least comparably fair: k=2 {local:.2} vs full {full:.2}"
    );
}
