//! Cross-crate integration: workload → dynamics → equilibrium →
//! certification → structural properties of equilibria.

use ncg::core::{social, GameSpec, GameState, Objective};
use ncg::dynamics::{run, DynamicsConfig, Outcome};
use ncg::graph::{generators, metrics};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Helper: run dynamics on a random tree and return the result.
fn settle_tree(n: usize, spec: GameSpec, seed: u64) -> ncg::dynamics::RunResult {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tree = generators::random_tree(n, &mut rng);
    let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
    run(initial, &DynamicsConfig::new(spec))
}

#[test]
fn converged_profiles_are_certified_lkes() {
    for (alpha, k, seed) in [(0.3, 2u32, 1u64), (1.0, 3, 2), (5.0, 4, 3), (2.0, 1000, 4)] {
        let spec = GameSpec::max(alpha, k);
        let result = settle_tree(24, spec, seed);
        assert!(result.outcome.converged(), "α={alpha}, k={k}");
        assert!(
            ncg::solver::is_lke(&result.state, &spec),
            "reached profile must certify as LKE (α={alpha}, k={k})"
        );
    }
}

#[test]
fn equilibria_stay_connected() {
    // Players never accept disconnecting moves (infinite worst-case
    // cost), so connectivity is invariant under the dynamics.
    for seed in 0..5 {
        let result = settle_tree(30, GameSpec::max(0.5, 3), seed);
        assert!(metrics::is_connected(result.state.graph()));
    }
}

#[test]
fn social_cost_identity() {
    // SC = α·total_bought + Σ_u usage_u, for both objectives.
    let result = settle_tree(20, GameSpec::max(1.5, 3), 7);
    let state = &result.state;
    for objective in [Objective::Max, Objective::Sum] {
        let spec = GameSpec::new(1.5, 3, objective);
        let sc = social::social_cost(state, &spec).unwrap();
        let usage_sum: f64 = match objective {
            Objective::Max => {
                metrics::eccentricities(state.graph()).iter().map(|&e| e as f64).sum()
            }
            Objective::Sum => (0..state.n() as u32)
                .map(|u| metrics::status(state.graph(), u).unwrap() as f64)
                .sum(),
        };
        let expect = 1.5 * state.total_bought() as f64 + usage_sum;
        assert!((sc - expect).abs() < 1e-9, "{objective}: {sc} vs {expect}");
    }
}

#[test]
fn lemma_3_17_girth_of_equilibria() {
    // In any MaxNCG equilibrium, girth ≥ 2 + min{α, 2k}: a player
    // owning an edge of a shorter visible cycle would drop it.
    for (alpha, k, seed) in [(3.0, 3u32, 11u64), (5.0, 2, 12), (2.0, 4, 13)] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::gnp_connected(26, 0.15, 500, &mut rng).unwrap();
        let initial = GameState::from_graph_random_ownership(&g, &mut rng);
        let spec = GameSpec::max(alpha, k);
        let result = run(initial, &DynamicsConfig::new(spec));
        if !result.outcome.converged() {
            continue;
        }
        if let Some(girth) = metrics::girth(result.state.graph()) {
            let bound = 2.0 + alpha.min(2.0 * k as f64);
            assert!((girth as f64) >= bound - 1e-9, "girth {girth} < {bound} at α={alpha}, k={k}");
        }
    }
}

#[test]
fn full_knowledge_lke_is_nash() {
    // With k ≥ diameter, the LKE and NE predicates agree on reached
    // equilibria (Corollary 3.14's easy direction, checked both ways
    // via the exhaustive searcher on a small instance).
    let spec = GameSpec::max(1.0, 1000);
    let result = settle_tree(12, spec, 21);
    assert!(result.outcome.converged());
    let lke = ncg::core::equilibrium::is_lke_exhaustive(&result.state, &spec).unwrap();
    let ne = ncg::core::equilibrium::is_ne_exhaustive(&result.state, &spec).unwrap();
    assert!(lke && ne, "full-knowledge equilibrium must be both LKE and NE");
}

#[test]
fn theorem_4_4_collapse_for_sum() {
    // k > 1 + 2√α ⇒ every SumNCG LKE is full-knowledge. Verify on a
    // reached equilibrium: every player's view covers the graph.
    let spec = GameSpec::sum(1.0, 4); // 4 > 1 + 2·1 = 3 ✓
    let result = settle_tree(14, spec, 22);
    assert!(result.outcome.converged());
    let diam = metrics::diameter(result.state.graph()).unwrap();
    assert!(
        diam <= spec.k,
        "Theorem 4.4 regime: equilibrium diameter {diam} must be within k = {}",
        spec.k
    );
}

#[test]
fn cheap_alpha_full_knowledge_builds_low_diameter() {
    // Full knowledge + cheap edges ⇒ near-star equilibria.
    let result = settle_tree(30, GameSpec::max(0.2, 1000), 31);
    assert!(result.outcome.converged());
    assert!(result.final_metrics.diameter.unwrap() <= 4);
    assert!(result.final_metrics.quality.unwrap() < 3.0);
}

#[test]
fn dynamics_strictly_reduce_mover_cost() {
    // Accepted moves strictly reduce the mover's perceived cost; with
    // per-round metrics on, the social cost trace must reflect real
    // movement (not necessarily monotone, but changing while moves
    // happen).
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let tree = generators::random_tree(24, &mut rng);
    let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
    let spec = GameSpec::max(0.5, 4);
    let config = DynamicsConfig::new(spec).with_per_round_metrics();
    let result = run(initial.clone(), &config);
    match result.outcome {
        Outcome::Converged { rounds } => {
            assert_eq!(result.round_metrics.len(), rounds);
            if result.total_moves > 0 {
                let first = &result.round_metrics[0];
                assert_ne!(
                    (first.edges, first.social_cost.map(|c| c.to_bits())),
                    (
                        initial.graph().edge_count(),
                        social::social_cost(&initial, &spec).map(|c| c.to_bits())
                    ),
                    "movement must change the network"
                );
            }
        }
        other => panic!("expected convergence, got {other:?}"),
    }
}

#[test]
fn er_workload_pipeline() {
    // Table II inputs flow through the same pipeline.
    let mut rng = ChaCha8Rng::seed_from_u64(51);
    let g = generators::gnp_connected(30, 0.12, 500, &mut rng).unwrap();
    let initial = GameState::from_graph_random_ownership(&g, &mut rng);
    let spec = GameSpec::max(2.0, 3);
    let result = run(initial, &DynamicsConfig::new(spec));
    assert!(result.outcome.converged());
    let m = &result.final_metrics;
    assert!(m.max_bought <= m.max_degree);
    assert!(m.min_view as f64 <= m.avg_view);
    assert!(m.quality.unwrap() >= 1.0 - 1e-9);
}
