//! # ncg — locality-based network creation games
//!
//! Facade crate for the `ncg` workspace, a production-quality Rust
//! reproduction of
//!
//! > Bilò, Gualà, Leucci, Proietti. *Locality-based Network Creation
//! > Games.* SPAA 2014 / ACM TOPC 3(1), 2016.
//!
//! Re-exports every workspace crate under one roof and provides a
//! [`prelude`]. See the individual crates for details:
//!
//! * [`graph`] — graph substrate (BFS, metrics, views, generators).
//! * [`core`] — the game: states, costs, views, LKE/NE.
//! * [`solver`] — exact & greedy best-response engines.
//! * [`dynamics`] — round-robin best-response dynamics (Section 5).
//! * [`constructions`] — the lower-bound gadgets (Section 3.1, 4).
//! * [`bounds`] — PoA bound formulas and region maps (Figures 3–4).
//! * [`stats`] — summary statistics with 95% confidence intervals.
//! * [`experiments`] — the harness reproducing every table and figure.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use ncg_bounds as bounds;
pub use ncg_constructions as constructions;
pub use ncg_core as core;
pub use ncg_dynamics as dynamics;
pub use ncg_experiments as experiments;
pub use ncg_graph as graph;
pub use ncg_solver as solver;
pub use ncg_stats as stats;

/// One-stop import for examples and downstream users.
pub mod prelude {
    pub use ncg_core::prelude::*;
}
