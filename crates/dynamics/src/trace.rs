//! Move-level tracing: a structured event log of a dynamics run.
//!
//! The aggregate metrics of [`crate::StateMetrics`] answer *what* the
//! stable networks look like; researchers replicating the paper's
//! Section 5 often also need *how* they formed — who moved when, what
//! they dropped and bought, and how their perceived cost fell. A
//! [`Trace`] records exactly that, one [`MoveEvent`] per accepted
//! strategy change, serialisable to JSON lines.

use ncg_graph::NodeId;
use serde::{Deserialize, Serialize};

/// One accepted strategy change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoveEvent {
    /// Round number (1-based, as in [`crate::Outcome::Converged`]).
    pub round: usize,
    /// The player that moved.
    pub player: NodeId,
    /// Her strategy before the move (global ids, sorted).
    pub old_strategy: Vec<NodeId>,
    /// Her strategy after the move (global ids, sorted).
    pub new_strategy: Vec<NodeId>,
    /// Her perceived (view-local, worst-case) cost before.
    pub old_cost: f64,
    /// Her perceived cost after — strictly smaller by construction.
    pub new_cost: f64,
    /// Size of her view when she moved.
    pub view_size: usize,
}

impl MoveEvent {
    /// Edges bought by the move (in `new` but not `old`).
    pub fn bought(&self) -> Vec<NodeId> {
        self.new_strategy
            .iter()
            .copied()
            .filter(|v| self.old_strategy.binary_search(v).is_err())
            .collect()
    }

    /// Edges dropped by the move (in `old` but not `new`).
    pub fn dropped(&self) -> Vec<NodeId> {
        self.old_strategy
            .iter()
            .copied()
            .filter(|v| self.new_strategy.binary_search(v).is_err())
            .collect()
    }

    /// The perceived improvement `old_cost − new_cost` (positive).
    pub fn improvement(&self) -> f64 {
        self.old_cost - self.new_cost
    }
}

/// The full event log of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Accepted moves, in execution order.
    pub events: Vec<MoveEvent>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded moves.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no move was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Moves of a given round.
    pub fn round(&self, round: usize) -> impl Iterator<Item = &MoveEvent> + '_ {
        self.events.iter().filter(move |e| e.round == round)
    }

    /// Moves of a given player.
    pub fn by_player(&self, player: NodeId) -> impl Iterator<Item = &MoveEvent> + '_ {
        self.events.iter().filter(move |e| e.player == player)
    }

    /// Total perceived improvement across all moves.
    pub fn total_improvement(&self) -> f64 {
        self.events.iter().map(MoveEvent::improvement).sum()
    }

    /// Serialises as JSON lines (one event per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&serde_json::to_string(e).expect("events are serialisable"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(round: usize, player: NodeId) -> MoveEvent {
        MoveEvent {
            round,
            player,
            old_strategy: vec![1, 3],
            new_strategy: vec![1, 4, 5],
            old_cost: 10.0,
            new_cost: 7.5,
            view_size: 9,
        }
    }

    #[test]
    fn bought_and_dropped_are_set_differences() {
        let e = event(1, 0);
        assert_eq!(e.bought(), vec![4, 5]);
        assert_eq!(e.dropped(), vec![3]);
        assert!((e.improvement() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn trace_filters() {
        let mut t = Trace::new();
        t.events.push(event(1, 0));
        t.events.push(event(1, 2));
        t.events.push(event(2, 0));
        assert_eq!(t.len(), 3);
        assert_eq!(t.round(1).count(), 2);
        assert_eq!(t.by_player(0).count(), 2);
        assert!((t.total_improvement() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn jsonl_round_trip() {
        let mut t = Trace::new();
        t.events.push(event(1, 7));
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        let back: MoveEvent = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(back, t.events[0]);
    }
}
