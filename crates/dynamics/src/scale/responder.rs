//! CSR-native greedy best-response for the million-node tier.
//!
//! The exact tier answers "what should player `u` do?" by building a
//! [`PlayerView`](ncg_core::PlayerView) — a materialised `Graph` of
//! the radius-`k` ball — and running an exact engine over it. At
//! `n = 10^6` that allocates a graph per player per round. This
//! responder never builds a `Graph`: it works on flat distance arrays
//! produced by local BFS over an induced-ball CSR assembled in
//! epoch-stamped scratch, and climbs the same
//! add/drop/swap neighbourhood as [`ncg_solver::front::hill_climb`]
//! with the identical cost → fewer-edges → lexicographic tie-break.
//!
//! **Approximation contract.** On balls with at most
//! [`ScaleResponderConfig::exhaustive_ball`] candidates the
//! neighbourhood is the full hill-climb neighbourhood, so a returned
//! move matches `hill_climb` exactly (and the exact engines whenever
//! the optimum is one move away). On larger balls only the
//! [`ScaleResponderConfig::max_add_candidates`] farthest ball nodes
//! (ties towards smaller id) are considered as new endpoints — the
//! nodes a shortcut helps most. Every *returned* move is still scored
//! exactly: costs come from the same worst-case deviation semantics
//! as [`ncg_core::deviation`] (Propositions 2.1/2.2 of the paper),
//! so a move is only proposed when it is **provably** strictly
//! improving; approximation can only cause a missed improvement,
//! never a false one.

use ncg_core::{EdgeCostModel, GameSpec, MoveRulePolicy, Objective};
use ncg_graph::bfs::DistanceBuffer;
use ncg_graph::{CsrGraph, NodeId, INFINITY};
use ncg_solver::bound::purchase_cutoff;

use super::state::ScaleState;

/// Sentinel "no node skipped" for the local BFS kernel.
const NO_SKIP: u32 = u32::MAX;

/// Knobs bounding the responder's work per player.
#[derive(Debug, Clone, Copy)]
pub struct ScaleResponderConfig {
    /// On balls with more candidates than [`Self::exhaustive_ball`],
    /// only this many add-endpoints are considered (the farthest ball
    /// nodes, ties towards smaller id).
    pub max_add_candidates: usize,
    /// Candidate-count threshold up to which the full hill-climb
    /// neighbourhood is used and the responder matches
    /// [`ncg_solver::front::hill_climb`] move for move.
    pub exhaustive_ball: usize,
    /// Cap on steepest-descent steps per response (each step strictly
    /// decreases the cost, so this bounds work, not correctness).
    pub max_steps: usize,
}

impl Default for ScaleResponderConfig {
    fn default() -> Self {
        ScaleResponderConfig { max_add_candidates: 4, exhaustive_ball: 64, max_steps: 8 }
    }
}

/// A strictly improving strategy rewrite found by [`respond`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleMove {
    /// The moving player.
    pub player: NodeId,
    /// Replacement strategy in global ids, sorted ascending.
    pub strategy: Vec<NodeId>,
    /// Exact total cost of the player's current strategy.
    pub old_cost: f64,
    /// Exact total cost of [`Self::strategy`] (strictly lower).
    pub new_cost: f64,
}

/// Reusable buffers for [`respond`]: an epoch-stamped global→local
/// map sized to the full graph plus ball-sized work arrays. One
/// instance per worker thread; `O(n)` once, then allocation-free.
#[derive(Debug, Clone, Default)]
pub struct ScaleScratch {
    epoch: u32,
    stamp: Vec<u32>,
    local_of: Vec<u32>,
    loc_offsets: Vec<u32>,
    loc_targets: Vec<u32>,
    dist0: Vec<u32>,
    base: Vec<u32>,
    row_tmp: Vec<u32>,
    fields: Vec<u32>,
    src_ids: Vec<u32>,
    queue: Vec<u32>,
    purchases: Vec<u32>,
    incoming_globals: Vec<NodeId>,
    incoming: Vec<u32>,
    cand: Vec<u32>,
    sel: Vec<(u32, u32)>,
    current: Vec<u32>,
    trial: Vec<u32>,
    best: Vec<u32>,
    rows: Vec<usize>,
}

impl ScaleScratch {
    /// Fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new epoch of the global→local stamp map, growing it
    /// to `n` slots if needed.
    fn begin_epoch(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.local_of.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Radius-`k` ball of `u` in `g`, sorted ascending into `out`.
    ///
    /// Unlike [`collect_ball`] this costs `O(|ball| + ball edges)` —
    /// visited bookkeeping is epoch-stamped, so there is no `O(n)`
    /// buffer reset per call. That is the difference between a
    /// million-player round taking seconds and taking hours: the
    /// whole-graph kernels ([`ncg_graph::bfs`], [`ncg_graph::batch`])
    /// pay a full-array clear per (batch of) source(s), which
    /// amortises for global metrics but not for a million tiny balls.
    pub fn discover_ball(&mut self, g: &CsrGraph, u: NodeId, k: u32, out: &mut Vec<NodeId>) {
        self.begin_epoch(g.node_count());
        let epoch = self.epoch;
        out.clear();
        // `local_of` doubles as the distance store during discovery;
        // `respond` re-stamps it with its own epoch afterwards.
        self.queue.clear();
        self.stamp[u as usize] = epoch;
        self.local_of[u as usize] = 0;
        self.queue.push(u);
        out.push(u);
        let mut head = 0usize;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            let d = self.local_of[v as usize];
            if d == k {
                continue;
            }
            for &w in g.neighbors(v) {
                if self.stamp[w as usize] != epoch {
                    self.stamp[w as usize] = epoch;
                    self.local_of[w as usize] = d + 1;
                    self.queue.push(w);
                    out.push(w);
                }
            }
        }
        out.sort_unstable();
    }
}

/// Collects the radius-`k` ball of `u` in `g` into `out`, sorted
/// ascending — the scalar-path equivalent of
/// [`BatchDistances::lane_ball_into`](ncg_graph::batch::BatchDistances::lane_ball_into).
pub fn collect_ball(
    g: &CsrGraph,
    u: NodeId,
    k: u32,
    buf: &mut DistanceBuffer,
    out: &mut Vec<NodeId>,
) {
    g.bfs_bounded(u, k, buf);
    out.clear();
    out.extend_from_slice(buf.visited());
    out.sort_unstable();
}

/// Unbounded BFS over the local induced-ball CSR from a set of
/// sources, optionally deleting one node (`skip`); distances land in
/// `dist` (resized to the ball, `INFINITY` where unreached).
fn local_bfs(
    offsets: &[u32],
    targets: &[u32],
    skip: u32,
    sources: &[u32],
    dist: &mut Vec<u32>,
    queue: &mut Vec<u32>,
) {
    let b = offsets.len() - 1;
    dist.clear();
    dist.resize(b, INFINITY);
    queue.clear();
    for &s in sources {
        if s != skip && dist[s as usize] == INFINITY {
            dist[s as usize] = 0;
            queue.push(s);
        }
    }
    let mut head = 0usize;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        let d = dist[v as usize] + 1;
        for &w in &targets[offsets[v as usize] as usize..offsets[v as usize + 1] as usize] {
            if w != skip && dist[w as usize] == INFINITY {
                dist[w as usize] = d;
                queue.push(w);
            }
        }
    }
}

/// Worst-case usage cost of a trial strategy, evaluated over the
/// precomputed distance fields: for every non-center ball node `v`,
/// `d(u, v) = 1 + min` over the trial's purchases (their field rows)
/// and the incoming sources (folded into `base`) of the source's
/// distance to `v` in the ball minus the center — exactly
/// Propositions 2.1/2.2. Returns `None` when the deviation
/// disconnects the ball or, under Sum, violates the frontier rule
/// (a vertex at distance exactly `k` whose nearest source sits at
/// distance `> k − 1`).
#[allow(clippy::too_many_arguments)]
fn usage_of(
    objective: Objective,
    k: u32,
    center: u32,
    dist0: &[u32],
    base: &[u32],
    fields: &[u32],
    row_offs: &[usize],
) -> Option<u64> {
    let b = dist0.len();
    if b == 1 {
        return Some(0);
    }
    let mut acc = 0u64;
    for v in 0..b {
        if v == center as usize {
            continue;
        }
        let mut d = base[v];
        for &ro in row_offs {
            d = d.min(fields[ro + v]);
        }
        if objective == Objective::Sum && dist0[v] == k && d > k - 1 {
            return None; // forbidden frontier
        }
        if d == INFINITY {
            return None; // disconnecting
        }
        match objective {
            Objective::Max => acc = acc.max(d as u64 + 1),
            Objective::Sum => acc += d as u64 + 1,
        }
    }
    Some(acc)
}

/// Scores `trial` and replaces the incumbent neighbour when it wins
/// under hill-climb's ordering: strictly better than the step's start
/// first, then cost → fewer edges → lexicographically smaller among
/// accepted neighbours.
#[allow(clippy::too_many_arguments)]
fn consider(
    spec: &GameSpec,
    center: u32,
    dist0: &[u32],
    base: &[u32],
    fields: &[u32],
    src_ids: &[u32],
    trial: &[u32],
    current_cost: f64,
    rows: &mut Vec<usize>,
    best: &mut Vec<u32>,
    best_cost: &mut f64,
    found: &mut bool,
) {
    let b = dist0.len();
    rows.clear();
    for &s in trial {
        let idx = src_ids.binary_search(&s).expect("trial member must be a field source");
        rows.push(idx * b);
    }
    let usage = usage_of(spec.objective, spec.k, center, dist0, base, fields, rows);
    let cost = spec.total_cost(trial.len(), usage);
    if !GameSpec::strictly_better(cost, current_cost) {
        return;
    }
    let wins = !*found
        || GameSpec::strictly_better(cost, *best_cost)
        || ((cost - *best_cost).abs() <= ncg_core::EPS
            && (trial.len() < best.len() || (trial.len() == best.len() && trial < &best[..])));
    if wins {
        best.clear();
        best.extend_from_slice(trial);
        *best_cost = cost;
        *found = true;
    }
}

/// Greedy best response for `u` over its radius-`k` ball (`ball` must
/// be the sorted ascending ball of `u` in `state.graph()`, center
/// included — [`collect_ball`] or a batched-BFS lane). Returns a
/// strictly improving move with exact old/new costs, or `None` when
/// the climb finds nothing better than the current strategy.
///
/// Only the paper's base scenario is supported (uniform edge cost,
/// any-subset moves) — asserted, because the count-based pruning via
/// [`purchase_cutoff`] is unsound otherwise.
pub fn respond(
    state: &ScaleState,
    spec: &GameSpec,
    cfg: &ScaleResponderConfig,
    u: NodeId,
    ball: &[NodeId],
    scratch: &mut ScaleScratch,
) -> Option<ScaleMove> {
    assert!(
        spec.edge_cost == EdgeCostModel::Uniform && spec.move_rule == MoveRulePolicy::AnySubset,
        "scale responder supports the uniform any-subset scenario only"
    );
    let b = ball.len();
    if b <= 1 {
        // An isolated player has no purchases and no candidates.
        return None;
    }
    scratch.begin_epoch(state.n());
    let ScaleScratch {
        epoch,
        stamp,
        local_of,
        loc_offsets,
        loc_targets,
        dist0,
        base,
        row_tmp,
        fields,
        src_ids,
        queue,
        purchases,
        incoming_globals,
        incoming,
        cand,
        sel,
        current,
        trial,
        best,
        rows,
    } = scratch;
    let epoch = *epoch;
    for (i, &g) in ball.iter().enumerate() {
        local_of[g as usize] = i as u32;
        stamp[g as usize] = epoch;
    }
    let center = ball.binary_search(&u).expect("ball must contain the center") as u32;

    // Induced-ball CSR in local ids. Rows stay sorted because global
    // adjacency rows are sorted and local ids are order-isomorphic.
    loc_offsets.clear();
    loc_offsets.push(0);
    loc_targets.clear();
    let graph = state.graph();
    for &g in ball {
        for &w in graph.neighbors(g) {
            if stamp[w as usize] == epoch {
                loc_targets.push(local_of[w as usize]);
            }
        }
        loc_offsets.push(loc_targets.len() as u32);
    }

    // Center's distances inside the ball (= the exact tier's
    // `view.dist`: radius-k shortest paths never leave the ball).
    local_bfs(loc_offsets, loc_targets, NO_SKIP, &[center], dist0, queue);

    purchases.clear();
    purchases.extend(state.strategy(u).iter().map(|&v| local_of[v as usize]));
    state.incoming_into(u, incoming_globals);
    incoming.clear();
    incoming.extend(incoming_globals.iter().map(|&v| local_of[v as usize]));

    // Distance fields on the ball minus the center: one shared
    // multi-source row for the incoming sources, one row per possible
    // purchase endpoint (current purchases ∪ add candidates).
    local_bfs(loc_offsets, loc_targets, center, incoming, base, queue);

    cand.clear();
    if b - 1 <= cfg.exhaustive_ball {
        cand.extend((0..b as u32).filter(|&v| v != center));
    } else {
        sel.clear();
        for v in 0..b as u32 {
            if v == center {
                continue;
            }
            let d = dist0[v as usize];
            let pos = sel.partition_point(|&(pd, pv)| pd > d || (pd == d && pv < v));
            if pos < cfg.max_add_candidates.max(1) {
                sel.insert(pos, (d, v));
                sel.truncate(cfg.max_add_candidates.max(1));
            }
        }
        cand.extend(sel.iter().map(|&(_, v)| v));
        cand.sort_unstable();
    }

    src_ids.clear();
    src_ids.extend_from_slice(purchases);
    src_ids.extend_from_slice(cand);
    src_ids.sort_unstable();
    src_ids.dedup();
    fields.clear();
    for &s in src_ids.iter() {
        local_bfs(loc_offsets, loc_targets, center, &[s], row_tmp, queue);
        fields.extend_from_slice(row_tmp);
    }

    // Baseline: the current strategy scored through the same fields.
    // By the worst-case deviation identity this equals the view-based
    // current cost bit for bit (every shortest path from the center
    // starts at a purchase or an incoming neighbour).
    current.clear();
    current.extend_from_slice(purchases);
    rows.clear();
    for &s in current.iter() {
        rows.push(src_ids.binary_search(&s).expect("purchase is a field source") * b);
    }
    let start_cost = spec.total_cost(
        current.len(),
        usage_of(spec.objective, spec.k, center, dist0, base, fields, rows),
    );
    let mut current_cost = start_cost;

    // Empty-strategy second seed, as in `hill_climb`: incoming edges
    // alone may keep the ball connected.
    let empty_usage = usage_of(spec.objective, spec.k, center, dist0, base, fields, &[]);
    let empty_cost = spec.total_cost(0, empty_usage);
    if GameSpec::strictly_better(empty_cost, current_cost) {
        current.clear();
        current_cost = empty_cost;
    }

    let usage_floor = match spec.objective {
        Objective::Max => 1.0,
        Objective::Sum => (b - 1) as f64,
    };
    for _step in 0..cfg.max_steps {
        let mut found = false;
        let mut best_cost = f64::INFINITY;
        best.clear();
        let cutoff = purchase_cutoff(current_cost, usage_floor, spec.alpha);
        // Additions.
        if current.len() + 1 < cutoff {
            for &c in cand.iter() {
                if current.binary_search(&c).is_err() {
                    trial.clear();
                    trial.extend_from_slice(current);
                    let pos = trial.binary_search(&c).unwrap_err();
                    trial.insert(pos, c);
                    consider(
                        spec,
                        center,
                        dist0,
                        base,
                        fields,
                        src_ids,
                        trial,
                        current_cost,
                        rows,
                        best,
                        &mut best_cost,
                        &mut found,
                    );
                }
            }
        }
        // Removals (never prunable: they can only lower the purchase
        // bill).
        for i in 0..current.len() {
            trial.clear();
            trial.extend_from_slice(current);
            trial.remove(i);
            consider(
                spec,
                center,
                dist0,
                base,
                fields,
                src_ids,
                trial,
                current_cost,
                rows,
                best,
                &mut best_cost,
                &mut found,
            );
        }
        // Swaps: drop one purchase, add one candidate.
        if current.len() < cutoff {
            for i in 0..current.len() {
                for &c in cand.iter() {
                    if current.binary_search(&c).is_err() {
                        trial.clear();
                        trial.extend_from_slice(current);
                        trial.remove(i);
                        let pos = trial.binary_search(&c).unwrap_err();
                        trial.insert(pos, c);
                        consider(
                            spec,
                            center,
                            dist0,
                            base,
                            fields,
                            src_ids,
                            trial,
                            current_cost,
                            rows,
                            best,
                            &mut best_cost,
                            &mut found,
                        );
                    }
                }
            }
        }
        if !found {
            break;
        }
        std::mem::swap(current, best);
        current_cost = best_cost;
    }

    if current.as_slice() == purchases.as_slice() {
        return None;
    }
    debug_assert!(GameSpec::strictly_better(current_cost, start_cost));
    Some(ScaleMove {
        player: u,
        strategy: current.iter().map(|&l| ball[l as usize]).collect(),
        old_cost: start_cost,
        new_cost: current_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_core::deviation::evaluate_total;
    use ncg_core::{GameState, PlayerView, ViewScratch};

    fn exhaustive_cfg() -> ScaleResponderConfig {
        ScaleResponderConfig { exhaustive_ball: 1024, max_steps: 64, ..Default::default() }
    }

    /// Runs the responder for `u` and cross-checks every claimed cost
    /// against the exact tier's evaluator on a freshly built view.
    fn respond_checked(
        gs: &GameState,
        spec: &GameSpec,
        u: NodeId,
        cfg: &ScaleResponderConfig,
    ) -> Option<ScaleMove> {
        let ss = ScaleState::from_game_state(gs);
        let mut scratch = ScaleScratch::new();
        let mut buf = DistanceBuffer::new();
        let mut ball = Vec::new();
        collect_ball(ss.graph(), u, spec.k, &mut buf, &mut ball);
        let mv = respond(&ss, spec, cfg, u, &ball, &mut scratch);
        let view = PlayerView::build_with(gs, u, spec.k, &mut ViewScratch::new());
        let current = ncg_core::deviation::current_total(spec, &view);
        if let Some(mv) = &mv {
            assert_eq!(mv.old_cost.to_bits(), current.to_bits(), "old cost disagrees with view");
            let local: Vec<NodeId> = mv
                .strategy
                .iter()
                .map(|&g| view.sub.to_local(g).expect("move target must be in the ball"))
                .collect();
            let exact =
                evaluate_total(spec, &view, &local, &mut ncg_core::deviation::EvalScratch::new());
            assert_eq!(mv.new_cost.to_bits(), exact.to_bits(), "new cost disagrees with view");
            assert!(GameSpec::strictly_better(mv.new_cost, mv.old_cost));
        }
        mv
    }

    #[test]
    fn path_endpoint_shortcuts_like_the_exact_tier() {
        // Successor-buying path: the tail player can cut its
        // eccentricity by rewiring when edges are cheap.
        let n = 8;
        let strategies: Vec<Vec<NodeId>> =
            (0..n).map(|u| if u + 1 < n { vec![u as NodeId + 1] } else { vec![] }).collect();
        let gs = GameState::from_strategies(n, strategies);
        let spec = GameSpec::max(0.5, 3);
        let mv = respond_checked(&gs, &spec, 0, &exhaustive_cfg());
        assert!(mv.is_some(), "cheap edges must tempt the path head");
    }

    #[test]
    fn equilibrium_player_stands_pat() {
        // On a complete-ish clique with expensive edges, dropping all
        // purchases disconnects and single moves don't pay.
        let gs = GameState::from_strategies(3, vec![vec![1], vec![2], vec![0]]);
        let spec = GameSpec::max(0.9, 2);
        // Triangle, α < 1: every player already has eccentricity 1.
        assert!(respond_checked(&gs, &spec, 0, &exhaustive_cfg()).is_none());
    }

    #[test]
    fn truncated_candidates_still_score_exactly() {
        let n = 12;
        let strategies: Vec<Vec<NodeId>> =
            (0..n).map(|u| if u + 1 < n { vec![u as NodeId + 1] } else { vec![] }).collect();
        let gs = GameState::from_strategies(n, strategies);
        let spec = GameSpec::sum(1.0, 2);
        let cfg = ScaleResponderConfig {
            exhaustive_ball: 2,
            max_add_candidates: 2,
            ..Default::default()
        };
        for u in 0..n as NodeId {
            respond_checked(&gs, &spec, u, &cfg);
        }
    }
}
