//! Simultaneous-move dynamics over [`ScaleState`] — the scale tier's
//! round loop.
//!
//! ## Round structure (`RoundMode::Simultaneous`)
//!
//! 1. **Propose** — every dirty player computes a greedy best
//!    response against the *frozen* start-of-round network, in
//!    parallel over fixed-size chunks. Chunk boundaries depend only on
//!    the dirty list, never on the worker count, and the vendored
//!    rayon map preserves input order, so the proposal list is
//!    byte-identical for any `NCG_THREADS`.
//! 2. **Resolve** — proposals are scanned once in canonical player
//!    order. A proposal is *accepted* unless its player lies within
//!    distance `k` of the touched set (mover + strategy symmetric
//!    difference) of an earlier accepted move — in which case the
//!    proposal was computed on stale information and is *conflicted*
//!    (dropped, player retried next round). Acceptance is safe: a
//!    changed edge is incident to a touched node, so any path from an
//!    unconflicted player through a changed edge is longer than `k`,
//!    her radius-`k` ball is bit-identical in the frozen and updated
//!    networks, and her proposal's exact cost delta still holds.
//! 3. **Apply** — accepted moves land in one `O(n + m)` SoA rebuild.
//! 4. **Dirty** — the next round's dirty set is the union of the
//!    radius-`k` balls of all touched nodes in the frozen *and* the
//!    updated network, plus the conflicted players. Everyone else
//!    kept their ball bit-identical and provably stands pat.
//!
//! `RoundMode::Sequential` is the small-`n` reference mode: players
//! move one at a time in ascending order within a round (each seeing
//! all earlier moves), which matches the exact tier's round-robin
//! discipline and anchors the sequential-vs-simultaneous parity
//! tests. It rebuilds the SoA per move, so it is not meant for
//! million-node inputs.
//!
//! Convergence and cycling reuse the exact tier's [`Outcome`]
//! vocabulary. Cycle detection is a 128-bit incremental profile
//! fingerprint (two independently seeded XOR'd per-player terms) —
//! unlike [`CycleDetector`](crate::CycleDetector) hits are *not*
//! re-verified against a journal, which is the documented
//! approximation of this tier (a false cycle needs a 2⁻¹²⁸ collision).

use std::collections::HashMap;
use std::sync::Mutex;

use ncg_core::GameSpec;
use ncg_graph::batch::{batch_bfs, BatchDistances, BatchScratch, WORD_LANES};
use ncg_graph::{CsrGraph, NodeId};
use rayon::prelude::*;

use super::responder::{respond, ScaleMove, ScaleResponderConfig, ScaleScratch};
use super::state::{ApplyScratch, ScaleState};
use crate::Outcome;

/// Players whose proposals one parallel task computes. Fixed — chunk
/// boundaries must not depend on the worker count, or artifacts would
/// differ across `NCG_THREADS`.
const PROPOSAL_CHUNK: usize = 4096;

/// How players take turns within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundMode {
    /// All dirty players propose against the frozen round-start
    /// network; colliding proposals are dropped deterministically
    /// (canonical player order wins). The scale mode.
    Simultaneous,
    /// Players move one at a time in ascending order, each seeing all
    /// earlier moves — the exact tier's discipline, kept as the
    /// small-`n` parity reference.
    Sequential,
}

/// Configuration of a scale-tier dynamics run.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Game parameters (uniform any-subset scenarios only).
    pub spec: GameSpec,
    /// Responder approximation knobs.
    pub responder: ScaleResponderConfig,
    /// Safety cap on rounds.
    pub max_rounds: usize,
    /// Turn-taking discipline.
    pub mode: RoundMode,
}

impl ScaleConfig {
    /// Defaults: simultaneous rounds, default responder, 64-round cap.
    pub fn new(spec: GameSpec) -> Self {
        ScaleConfig {
            spec,
            responder: ScaleResponderConfig::default(),
            max_rounds: 64,
            mode: RoundMode::Simultaneous,
        }
    }
}

/// Per-round accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleRoundStats {
    /// Players that responded this round.
    pub dirty: usize,
    /// Strictly improving proposals collected.
    pub proposals: usize,
    /// Proposals applied after conflict resolution.
    pub applied: usize,
    /// Proposals dropped as conflicted (simultaneous mode only).
    pub conflicts: usize,
}

/// Ball sizes of a deterministic 64-player sample (the batched-BFS
/// stand-in for the exact tier's exhaustive min/avg view statistics,
/// which are `O(n·m)` and unaffordable at this tier).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewSample {
    /// Number of sampled players (`min(64, n)`).
    pub lanes: usize,
    /// Smallest sampled radius-`k` ball.
    pub min: usize,
    /// Largest sampled radius-`k` ball.
    pub max: usize,
    /// Mean sampled ball size.
    pub avg: f64,
}

/// Result of [`run_scale`].
#[derive(Debug, Clone)]
pub struct ScaleRunResult {
    /// How the run ended (same vocabulary as the exact tier).
    pub outcome: Outcome,
    /// Per-round accounting, in order.
    pub rounds: Vec<ScaleRoundStats>,
    /// Total moves applied.
    pub total_moves: usize,
    /// Total strictly improving proposals (applied + conflicted).
    pub total_proposals: usize,
    /// Total conflicted proposals.
    pub total_conflicts: usize,
    /// Sampled ball statistics of the final network.
    pub view_sample: ViewSample,
}

/// Per-worker scratch: responder buffers plus the ball staging vector.
#[derive(Debug, Default)]
struct WorkerScratch {
    responder: ScaleScratch,
    ball: Vec<NodeId>,
}

/// Checks a worker scratch out of the shared pool and returns it on
/// drop, so buffers persist across rounds instead of being
/// reallocated per parallel task.
struct PoolGuard<'a> {
    pool: &'a Mutex<Vec<WorkerScratch>>,
    ws: Option<WorkerScratch>,
}

impl<'a> PoolGuard<'a> {
    fn take(pool: &'a Mutex<Vec<WorkerScratch>>) -> Self {
        let ws = pool.lock().expect("scratch pool poisoned").pop().unwrap_or_default();
        PoolGuard { pool, ws: Some(ws) }
    }

    fn get(&mut self) -> &mut WorkerScratch {
        self.ws.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PoolGuard<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.lock().expect("scratch pool poisoned").push(ws);
        }
    }
}

/// Epoch-stamped bounded multi-source BFS used for interference and
/// dirty marking: `O(marked)` per call, no per-call `O(n)` reset, and
/// repeated calls within one epoch accumulate the *union* of balls
/// (distances only ever shrink, with re-enqueueing on improvement so
/// later, closer sources extend the marked region correctly).
#[derive(Debug, Clone, Default)]
struct MarkScratch {
    epoch: u32,
    stamp: Vec<u32>,
    dist: Vec<u32>,
    queue: Vec<NodeId>,
    /// Log of nodes stamped in the current epoch.
    marked: Vec<NodeId>,
}

impl MarkScratch {
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.marked.clear();
    }

    fn is_marked(&self, v: NodeId) -> bool {
        self.stamp[v as usize] == self.epoch
    }

    /// Marks every node within distance `k` of `sources` in `g`.
    fn mark_ball(&mut self, g: &CsrGraph, sources: &[NodeId], k: u32) {
        self.queue.clear();
        for &s in sources {
            if self.stamp[s as usize] != self.epoch {
                self.stamp[s as usize] = self.epoch;
                self.marked.push(s);
                self.dist[s as usize] = 0;
                self.queue.push(s);
            } else if self.dist[s as usize] > 0 {
                self.dist[s as usize] = 0;
                self.queue.push(s);
            }
        }
        let mut head = 0usize;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            let d = self.dist[v as usize];
            if d == k {
                continue;
            }
            let nd = d + 1;
            for &w in g.neighbors(v) {
                if self.stamp[w as usize] != self.epoch {
                    self.stamp[w as usize] = self.epoch;
                    self.marked.push(w);
                    self.dist[w as usize] = nd;
                    self.queue.push(w);
                } else if self.dist[w as usize] > nd {
                    self.dist[w as usize] = nd;
                    self.queue.push(w);
                }
            }
        }
    }
}

/// 128-bit incremental strategy-profile fingerprint: XOR over players
/// of two independently seeded well-mixed terms, updated in
/// `O(|σ_old| + |σ_new|)` per accepted move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ProfileFp(u64, u64);

/// FNV-1a over `(seed, u, σ_u)` finished with the splitmix64 mixer —
/// the same construction as the exact tier's detector, seeded so the
/// two fingerprint lanes are independent.
fn player_term(seed: u64, u: NodeId, sigma: &[NodeId]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ seed;
    h = (h ^ u as u64).wrapping_mul(FNV_PRIME);
    for &v in sigma {
        h = (h ^ (v as u64 + 1)).wrapping_mul(FNV_PRIME);
    }
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

const FP_SEED_A: u64 = 0;
const FP_SEED_B: u64 = 0x9e37_79b9_7f4a_7c15;

impl ProfileFp {
    fn of_state(state: &ScaleState) -> Self {
        let mut a = 0u64;
        let mut b = 0u64;
        for u in 0..state.n() as NodeId {
            let sigma = state.strategy(u);
            a ^= player_term(FP_SEED_A, u, sigma);
            b ^= player_term(FP_SEED_B, u, sigma);
        }
        ProfileFp(a, b)
    }

    fn apply(&mut self, u: NodeId, old: &[NodeId], new: &[NodeId]) {
        self.0 ^= player_term(FP_SEED_A, u, old) ^ player_term(FP_SEED_A, u, new);
        self.1 ^= player_term(FP_SEED_B, u, old) ^ player_term(FP_SEED_B, u, new);
    }
}

/// All allocations [`run_scale`] needs, reusable across runs (the
/// sweep engine keeps one per repetition slot, like the exact tier's
/// [`CacheArena`](crate::CacheArena)).
#[derive(Debug, Default)]
pub struct ScaleArena {
    pool: Mutex<Vec<WorkerScratch>>,
    seq: WorkerScratch,
    apply: ApplyScratch,
    mark: MarkScratch,
    dirty: Vec<NodeId>,
    next_dirty: Vec<NodeId>,
    touched: Vec<NodeId>,
    touched_all: Vec<NodeId>,
    accepted: Vec<(NodeId, Vec<NodeId>)>,
    conflicted: Vec<NodeId>,
    seen: HashMap<ProfileFp, usize>,
    batch: BatchScratch,
    dists: BatchDistances,
}

impl ScaleArena {
    /// Fresh arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// `{u} ∪ (old Δ new)` of a move, ascending — the nodes whose
/// incident edges or ownership can change (same set as the exact
/// tier's [`EdgeDiff::touched`](ncg_core::EdgeDiff::touched)).
fn touched_of(u: NodeId, old: &[NodeId], new: &[NodeId], out: &mut Vec<NodeId>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some(&a), Some(&b)) if a == b => {
                i += 1;
                j += 1;
            }
            (Some(&a), b) if b.is_none() || a < *b.unwrap() => {
                out.push(a);
                i += 1;
            }
            (_, Some(&b)) => {
                out.push(b);
                j += 1;
            }
            _ => unreachable!(),
        }
    }
    let pos = out.binary_search(&u).unwrap_err();
    out.insert(pos, u);
}

/// Ball sizes of `min(64, n)` evenly spaced players via one batched
/// BFS call — the only place the whole-graph kernel's `O(n)` setup is
/// paid, once per run.
fn sample_views(state: &ScaleState, k: u32, arena: &mut ScaleArena) -> ViewSample {
    let n = state.n();
    if n == 0 {
        return ViewSample { lanes: 0, min: 0, max: 0, avg: 0.0 };
    }
    let lanes = n.min(WORD_LANES);
    let sources: Vec<NodeId> = (0..lanes).map(|i| (i * n / lanes) as NodeId).collect();
    batch_bfs(state.graph(), &sources, k, &mut arena.batch, &mut arena.dists);
    let sizes: Vec<usize> = (0..lanes).map(|l| arena.dists.ball_size(l, k)).collect();
    ViewSample {
        lanes,
        min: sizes.iter().copied().min().unwrap_or(0),
        max: sizes.iter().copied().max().unwrap_or(0),
        avg: sizes.iter().sum::<usize>() as f64 / lanes as f64,
    }
}

/// One simultaneous round. Returns the stats; mutates `state`, the
/// arena's dirty bookkeeping, and the profile fingerprint.
fn simultaneous_round(
    state: &mut ScaleState,
    config: &ScaleConfig,
    arena: &mut ScaleArena,
    fp: &mut ProfileFp,
) -> ScaleRoundStats {
    let k = config.spec.k;
    let n = state.n();
    let dirty_count = arena.dirty.len();

    // Phase 1: proposals against the frozen network, in parallel over
    // fixed-size chunks (order-preserving map ⇒ canonical order).
    let chunks: Vec<Vec<NodeId>> = arena.dirty.chunks(PROPOSAL_CHUNK).map(|c| c.to_vec()).collect();
    let spec = &config.spec;
    let rcfg = &config.responder;
    let pool = &arena.pool;
    let frozen: &ScaleState = state;
    let proposals: Vec<ScaleMove> = chunks
        .into_par_iter()
        .map_init(
            || PoolGuard::take(pool),
            |guard, chunk| {
                let ws = guard.get();
                let mut out = Vec::new();
                for &u in &chunk {
                    ws.responder.discover_ball(frozen.graph(), u, k, &mut ws.ball);
                    if let Some(mv) = respond(frozen, spec, rcfg, u, &ws.ball, &mut ws.responder) {
                        out.push(mv);
                    }
                }
                out
            },
        )
        .collect::<Vec<Vec<ScaleMove>>>()
        .into_iter()
        .flatten()
        .collect();

    let proposal_count = proposals.len();
    if proposal_count == 0 {
        return ScaleRoundStats { dirty: dirty_count, proposals: 0, applied: 0, conflicts: 0 };
    }

    // Phase 2: canonical-order conflict resolution on the frozen
    // network (proposals arrive ascending by player).
    arena.mark.begin(n);
    arena.accepted.clear();
    arena.conflicted.clear();
    arena.touched_all.clear();
    for mv in proposals {
        if arena.mark.is_marked(mv.player) {
            arena.conflicted.push(mv.player);
            continue;
        }
        let old = state.strategy(mv.player);
        touched_of(mv.player, old, &mv.strategy, &mut arena.touched);
        fp.apply(mv.player, old, &mv.strategy);
        arena.mark.mark_ball(state.graph(), &arena.touched, k);
        arena.touched_all.extend_from_slice(&arena.touched);
        arena.accepted.push((mv.player, mv.strategy));
    }
    let applied = arena.accepted.len();
    let conflicts = arena.conflicted.len();

    // Phase 3: one batched SoA rebuild.
    arena.next_dirty.clear();
    arena.next_dirty.extend_from_slice(&arena.mark.marked);
    state.apply_moves(&arena.accepted, &mut arena.apply);

    // Phase 4: dirty set for the next round = frozen-ball ∪ new-ball
    // of everything touched, plus the conflicted players.
    arena.mark.begin(n);
    arena.mark.mark_ball(state.graph(), &arena.touched_all, k);
    arena.next_dirty.extend_from_slice(&arena.mark.marked);
    arena.next_dirty.extend_from_slice(&arena.conflicted);
    arena.next_dirty.sort_unstable();
    arena.next_dirty.dedup();
    std::mem::swap(&mut arena.dirty, &mut arena.next_dirty);

    ScaleRoundStats { dirty: dirty_count, proposals: proposal_count, applied, conflicts }
}

/// One sequential round: ascending order, each mover immediately
/// applied (full SoA rebuild per move — reference mode, small `n`).
fn sequential_round(
    state: &mut ScaleState,
    config: &ScaleConfig,
    arena: &mut ScaleArena,
    fp: &mut ProfileFp,
) -> ScaleRoundStats {
    let k = config.spec.k;
    let n = state.n();
    let dirty_count = arena.dirty.len();
    arena.mark.begin(n);
    let mut applied = 0usize;
    arena.next_dirty.clear();
    std::mem::swap(&mut arena.dirty, &mut arena.next_dirty);
    for i in 0..arena.next_dirty.len() {
        let u = arena.next_dirty[i];
        let ws = &mut arena.seq;
        ws.responder.discover_ball(state.graph(), u, k, &mut ws.ball);
        let Some(mv) =
            respond(state, &config.spec, &config.responder, u, &ws.ball, &mut ws.responder)
        else {
            continue;
        };
        let old = state.strategy(u);
        touched_of(u, old, &mv.strategy, &mut arena.touched);
        fp.apply(u, old, &mv.strategy);
        // Union of pre- and post-move balls of the touched set, all
        // accumulated in one mark epoch.
        arena.mark.mark_ball(state.graph(), &arena.touched, k);
        state.apply_moves(&[(u, mv.strategy)], &mut arena.apply);
        arena.mark.mark_ball(state.graph(), &arena.touched, k);
        applied += 1;
    }
    arena.dirty.clear();
    arena.dirty.extend_from_slice(&arena.mark.marked);
    arena.dirty.sort_unstable();
    arena.dirty.dedup();
    ScaleRoundStats { dirty: dirty_count, proposals: applied, applied, conflicts: 0 }
}

/// Runs the scale-tier dynamics to convergence, a detected cycle, or
/// the round cap. Deterministic for a given `(state, config)` —
/// independent of `NCG_THREADS` and of whether a previous run shared
/// the arena.
pub fn run_scale(
    state: &mut ScaleState,
    config: &ScaleConfig,
    arena: &mut ScaleArena,
) -> ScaleRunResult {
    let n = state.n();
    arena.seen.clear();
    let mut fp = ProfileFp::of_state(state);
    arena.seen.insert(fp, 0);
    arena.dirty.clear();
    arena.dirty.extend(0..n as NodeId);

    let mut rounds = Vec::new();
    let mut total_moves = 0usize;
    let mut total_proposals = 0usize;
    let mut total_conflicts = 0usize;
    let mut outcome = Outcome::MaxRoundsExceeded { rounds: config.max_rounds };
    for round in 1..=config.max_rounds {
        let stats = match config.mode {
            RoundMode::Simultaneous => simultaneous_round(state, config, arena, &mut fp),
            RoundMode::Sequential => sequential_round(state, config, arena, &mut fp),
        };
        rounds.push(stats);
        total_moves += stats.applied;
        total_proposals += stats.proposals;
        total_conflicts += stats.conflicts;
        if stats.proposals == 0 {
            outcome = Outcome::Converged { rounds: round };
            break;
        }
        if let Some(&first_seen) = arena.seen.get(&fp) {
            outcome = Outcome::Cycled { first_seen, repeated_at: round };
            break;
        }
        arena.seen.insert(fp, round);
    }
    let view_sample = sample_views(state, config.spec.k, arena);
    ScaleRunResult { outcome, rounds, total_moves, total_proposals, total_conflicts, view_sample }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_core::GameState;

    fn successor_path(n: usize) -> ScaleState {
        let strategies: Vec<Vec<NodeId>> =
            (0..n).map(|u| if u + 1 < n { vec![u as NodeId + 1] } else { vec![] }).collect();
        ScaleState::from_game_state(&GameState::from_strategies(n, strategies))
    }

    #[test]
    fn converges_and_validates_on_a_path() {
        for mode in [RoundMode::Simultaneous, RoundMode::Sequential] {
            let mut state = successor_path(16);
            let mut config = ScaleConfig::new(GameSpec::max(0.5, 3));
            config.mode = mode;
            let mut arena = ScaleArena::new();
            let result = run_scale(&mut state, &config, &mut arena);
            assert!(
                matches!(result.outcome, Outcome::Converged { .. }),
                "{mode:?} did not converge: {:?}",
                result.outcome
            );
            assert!(state.validate().is_ok());
            // Re-running from the converged profile is a one-round no-op.
            let again = run_scale(&mut state, &config, &mut arena);
            assert!(matches!(again.outcome, Outcome::Converged { rounds: 1 }));
            assert_eq!(again.total_moves, 0);
        }
    }

    #[test]
    fn arena_reuse_is_bit_identical() {
        let config = ScaleConfig::new(GameSpec::sum(1.0, 2));
        let mut arena = ScaleArena::new();
        let mut first = successor_path(12);
        let r1 = run_scale(&mut first, &config, &mut arena);
        let mut second = successor_path(12);
        let r2 = run_scale(&mut second, &config, &mut arena);
        assert_eq!(first, second);
        assert_eq!(r1.outcome, r2.outcome);
        assert_eq!(r1.rounds, r2.rounds);
    }

    #[test]
    fn touched_of_is_center_plus_symdiff() {
        let mut out = Vec::new();
        touched_of(5, &[1, 3, 7], &[3, 4], &mut out);
        assert_eq!(out, vec![1, 4, 5, 7]);
        touched_of(0, &[], &[], &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn view_sample_covers_small_graphs() {
        let state = successor_path(5);
        let mut arena = ScaleArena::new();
        let sample = sample_views(&state, 2, &mut arena);
        assert_eq!(sample.lanes, 5);
        assert!(sample.min >= 1 && sample.avg > 0.0);
    }
}
