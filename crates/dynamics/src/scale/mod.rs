//! The million-node scale tier: CSR-native approximate dynamics.
//!
//! The exact tier (crate root) prices every candidate deviation
//! through materialised [`PlayerView`](ncg_core::PlayerView) graphs —
//! faithful to the paper but `O(n)` allocations per round, which caps
//! it around `n ≈ 10^5`. This module trades *none of the cost
//! semantics* and *some of the search breadth* for three orders of
//! magnitude: flat structure-of-arrays state ([`ScaleState`]), a
//! greedy responder working directly on distance arrays
//! ([`respond`]), and simultaneous rounds with deterministic conflict
//! resolution ([`run_scale`]). See DESIGN.md §13 for the layout, the
//! conflict-resolution rule, and the approximation contract.
//!
//! Every move the tier applies is *provably* strictly improving under
//! the same worst-case deviation semantics as the exact tier
//! (Propositions 2.1/2.2); approximation only narrows which moves are
//! found, never their pricing. Artifacts are byte-identical for any
//! `NCG_THREADS` — enforced by the CI `scale` lane.

mod responder;
mod runner;
mod state;

pub use responder::{collect_ball, respond, ScaleMove, ScaleResponderConfig, ScaleScratch};
pub use runner::{
    run_scale, RoundMode, ScaleArena, ScaleConfig, ScaleRoundStats, ScaleRunResult, ViewSample,
};
pub use state::{ApplyScratch, ScaleState};
