//! Flat structure-of-arrays game state for the million-node tier.
//!
//! [`GameState`](ncg_core::GameState) stores one `Vec<NodeId>` per
//! player plus an adjacency `Graph` of per-node `Vec`s — `2n + 1`
//! allocations and pointer-chasing that caps the exact tier around
//! `n ≈ 10^5`. [`ScaleState`] keeps the same information in four flat
//! arrays: a strategy CSR (`strat_offsets`/`strat_targets`, row `u` =
//! `σ_u` sorted ascending) and a [`CsrGraph`] of the induced network,
//! rebuilt wholesale from the strategy rows after every round with the
//! counting-sort builder ([`CsrGraph::rebuild_from_edges`]). Rebuild
//! is `O(n + m)` with zero steady-state allocation — cheaper than
//! patching per-node `Vec`s once thousands of players move per round.
//!
//! Ownership queries (`owns`, `incoming_into`) binary-search the
//! strategy rows exactly like the exact tier, so the two tiers agree
//! on every ownership-dependent quantity.

use ncg_core::GameState;
use ncg_graph::{CsrGraph, NodeId};

/// Reusable buffers for [`ScaleState::apply_moves`]: the next round's
/// strategy CSR is written into these and swapped in, so repeated
/// rounds ping-pong between two allocations instead of growing fresh
/// ones.
#[derive(Debug, Clone, Default)]
pub struct ApplyScratch {
    new_offsets: Vec<u32>,
    new_targets: Vec<NodeId>,
    edges: Vec<(NodeId, NodeId)>,
}

/// Strategy profile + induced network in structure-of-arrays layout.
///
/// Invariants (checked by [`ScaleState::validate`], maintained by all
/// constructors and [`ScaleState::apply_moves`]):
/// * strategy row `u` is sorted ascending, duplicate-free, in range,
///   and never contains `u` itself;
/// * `graph` is exactly the network induced by the strategy rows
///   (union of `{u, v}` for `v ∈ σ_u`, deduplicated across
///   double-buys).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleState {
    n: usize,
    /// `strat_offsets[u]..strat_offsets[u + 1]` indexes `σ_u` in
    /// `strat_targets`; length `n + 1`.
    strat_offsets: Vec<u32>,
    strat_targets: Vec<NodeId>,
    graph: CsrGraph,
}

impl ScaleState {
    /// Builds a state from `(owner, target)` pairs: player `owner`
    /// buys the edge towards `target`. Pairs may arrive in any order;
    /// duplicates collapse. Panics on self-loops or out-of-range ids.
    pub fn from_owned_edges(n: usize, owned: &[(NodeId, NodeId)]) -> Self {
        let mut strat_offsets = vec![0u32; n + 1];
        for &(u, v) in owned {
            assert!(u != v, "self-loop purchase {u} -> {v}");
            assert!(
                (u as usize) < n && (v as usize) < n,
                "purchase {u} -> {v} out of range for n = {n}"
            );
            strat_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            strat_offsets[i + 1] += strat_offsets[i];
        }
        // Offsets-as-cursors fill, then shift back (same discipline as
        // the CSR builder).
        let mut strat_targets = vec![0 as NodeId; owned.len()];
        for &(u, v) in owned {
            strat_targets[strat_offsets[u as usize] as usize] = v;
            strat_offsets[u as usize] += 1;
        }
        for u in (1..=n).rev() {
            strat_offsets[u] = strat_offsets[u - 1];
        }
        strat_offsets[0] = 0;
        // Sort + dedup each row in place, compacting leftwards.
        let mut write = 0usize;
        let mut row_start = 0usize;
        for u in 0..n {
            let row_end = strat_offsets[u + 1] as usize;
            strat_targets[row_start..row_end].sort_unstable();
            let new_start = write;
            let mut last: Option<NodeId> = None;
            for i in row_start..row_end {
                let t = strat_targets[i];
                if last != Some(t) {
                    strat_targets[write] = t;
                    write += 1;
                    last = Some(t);
                }
            }
            row_start = row_end;
            strat_offsets[u] = new_start as u32;
            strat_offsets[u + 1] = write as u32;
        }
        strat_targets.truncate(write);
        let mut state = ScaleState { n, strat_offsets, strat_targets, graph: CsrGraph::default() };
        let mut edges = Vec::new();
        state.rebuild_adjacency(&mut edges);
        state
    }

    /// Flattens an exact-tier [`GameState`] (testing bridge: small
    /// instances round-trip between the tiers).
    pub fn from_game_state(gs: &GameState) -> Self {
        let n = gs.n();
        let mut owned = Vec::new();
        for u in 0..n as NodeId {
            for &v in gs.strategy(u) {
                owned.push((u, v));
            }
        }
        Self::from_owned_edges(n, &owned)
    }

    /// Expands back into the exact tier's representation.
    pub fn to_game_state(&self) -> GameState {
        let strategies: Vec<Vec<NodeId>> =
            (0..self.n).map(|u| self.strategy(u as NodeId).to_vec()).collect();
        GameState::from_strategies(self.n, strategies)
    }

    /// Number of players.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The induced network as a frozen CSR graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Player `u`'s purchase list, sorted ascending.
    pub fn strategy(&self, u: NodeId) -> &[NodeId] {
        let lo = self.strat_offsets[u as usize] as usize;
        let hi = self.strat_offsets[u as usize + 1] as usize;
        &self.strat_targets[lo..hi]
    }

    /// Number of edges player `u` pays for.
    pub fn bought(&self, u: NodeId) -> usize {
        self.strategy(u).len()
    }

    /// Whether `u` pays for the edge towards `v`.
    pub fn owns(&self, u: NodeId, v: NodeId) -> bool {
        self.strategy(u).binary_search(&v).is_ok()
    }

    /// Total number of purchases (with double-buys counted twice).
    pub fn total_bought(&self) -> usize {
        self.strat_targets.len()
    }

    /// Largest purchase count over all players.
    pub fn max_bought(&self) -> usize {
        (0..self.n).map(|u| self.bought(u as NodeId)).max().unwrap_or(0)
    }

    /// Neighbours `v` of `u` (in the induced network) that pay for
    /// their edge towards `u` — the sources beyond `u`'s own purchases
    /// whose distance fields a deviation of `u` inherits. Appended to
    /// `out` in ascending order.
    pub fn incoming_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        for &v in self.graph.neighbors(u) {
            if self.owns(v, u) {
                out.push(v);
            }
        }
    }

    /// Applies a batch of strategy rewrites and rebuilds the induced
    /// network. `moves` must be sorted by player ascending with no
    /// player repeated; each new strategy must be sorted ascending,
    /// duplicate-free, in range, and self-loop-free (the responder
    /// returns exactly this shape). `O(n + m)`, allocation-free at
    /// steady state via `scratch`.
    pub fn apply_moves(&mut self, moves: &[(NodeId, Vec<NodeId>)], scratch: &mut ApplyScratch) {
        debug_assert!(moves.windows(2).all(|w| w[0].0 < w[1].0), "moves not ascending by player");
        scratch.new_offsets.clear();
        scratch.new_offsets.reserve(self.n + 1);
        scratch.new_offsets.push(0);
        scratch.new_targets.clear();
        let mut mi = 0usize;
        for u in 0..self.n as NodeId {
            let row: &[NodeId] = if mi < moves.len() && moves[mi].0 == u {
                let row = moves[mi].1.as_slice();
                debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "new strategy not canonical");
                debug_assert!(
                    row.iter().all(|&v| v != u && (v as usize) < self.n),
                    "new strategy target out of range or self-loop"
                );
                mi += 1;
                row
            } else {
                self.strategy(u)
            };
            scratch.new_targets.extend_from_slice(row);
            scratch.new_offsets.push(scratch.new_targets.len() as u32);
        }
        debug_assert_eq!(mi, moves.len(), "move for out-of-range player");
        std::mem::swap(&mut self.strat_offsets, &mut scratch.new_offsets);
        std::mem::swap(&mut self.strat_targets, &mut scratch.new_targets);
        self.rebuild_adjacency(&mut scratch.edges);
    }

    /// Re-derives `graph` from the strategy rows via the counting-sort
    /// CSR builder; `edges` is a reused staging buffer.
    fn rebuild_adjacency(&mut self, edges: &mut Vec<(NodeId, NodeId)>) {
        edges.clear();
        edges.reserve(self.strat_targets.len());
        for u in 0..self.n as NodeId {
            for &v in self.strategy(u) {
                edges.push((u, v));
            }
        }
        self.graph.rebuild_from_edges(self.n, edges);
    }

    /// Checks every representation invariant; returns the first
    /// violation found. Meant for tests and debug assertions, not hot
    /// paths (`O(n + m log m)`).
    pub fn validate(&self) -> Result<(), String> {
        if self.strat_offsets.len() != self.n + 1 {
            return Err(format!(
                "offsets length {} != n + 1 = {}",
                self.strat_offsets.len(),
                self.n + 1
            ));
        }
        for u in 0..self.n as NodeId {
            let row = self.strategy(u);
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("strategy row {u} not sorted/deduplicated"));
            }
            if row.contains(&u) {
                return Err(format!("player {u} buys a self-loop"));
            }
            if row.iter().any(|&v| v as usize >= self.n) {
                return Err(format!("player {u} buys out of range"));
            }
        }
        let rebuilt = CsrGraph::from_edges(
            self.n,
            &(0..self.n as NodeId)
                .flat_map(|u| self.strategy(u).iter().map(move |&v| (u, v)))
                .collect::<Vec<_>>(),
        );
        if rebuilt != self.graph {
            return Err("adjacency out of sync with strategy rows".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_game_state() {
        let gs = GameState::from_strategies(4, vec![vec![1, 2], vec![2], vec![], vec![0]]);
        let ss = ScaleState::from_game_state(&gs);
        assert!(ss.validate().is_ok());
        assert_eq!(ss.to_game_state(), gs);
        assert_eq!(ss.bought(0), 2);
        assert!(ss.owns(0, 2));
        assert!(!ss.owns(2, 0));
        let mut inc = Vec::new();
        ss.incoming_into(2, &mut inc);
        assert_eq!(inc, vec![0, 1]);
    }

    #[test]
    fn from_owned_edges_collapses_duplicates() {
        let ss = ScaleState::from_owned_edges(3, &[(0, 2), (0, 1), (0, 2), (1, 2)]);
        assert_eq!(ss.strategy(0), &[1, 2]);
        assert_eq!(ss.strategy(1), &[2]);
        assert_eq!(ss.total_bought(), 3);
        // Double-buy 0->2 and 1->2: the induced network still has one
        // edge per pair.
        assert_eq!(ss.graph().edge_count(), 3);
        assert!(ss.validate().is_ok());
    }

    #[test]
    fn apply_moves_matches_set_strategy() {
        let gs = GameState::from_strategies(4, vec![vec![1], vec![2], vec![3], vec![0]]);
        let mut ss = ScaleState::from_game_state(&gs);
        let mut scratch = ApplyScratch::default();
        ss.apply_moves(&[(1, vec![0, 3]), (2, vec![])], &mut scratch);
        assert!(ss.validate().is_ok());

        let mut expected = gs;
        expected.set_strategy(1, vec![0, 3]);
        expected.set_strategy(2, vec![]);
        assert_eq!(ss.to_game_state(), expected);

        // A second batch reuses the swapped-out buffers.
        ss.apply_moves(&[(0, vec![2])], &mut scratch);
        assert!(ss.validate().is_ok());
        assert_eq!(ss.strategy(0), &[2]);
    }
}
