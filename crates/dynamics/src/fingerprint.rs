//! Constant-time-per-round cycle detection via strategy-profile
//! fingerprints.
//!
//! The seed detector cloned and hashed the *entire* strategy profile
//! (`Vec<Vec<u32>>`, `O(n·m)`) at the end of every round. This module
//! maintains a 64-bit profile fingerprint incrementally instead: each
//! player contributes one well-mixed term `h(u, σ_u)` and the profile
//! fingerprint is the XOR of all terms, so an accepted move updates it
//! in `O(|σ_old| + |σ_new|)` by XOR-ing the player's old term out and
//! her new term in. End-of-round bookkeeping is then an `O(1)` map
//! probe.
//!
//! Fingerprint hits are confirmed *exactly* (no reliance on hash
//! quality) against a journal of accepted moves: the profile at the
//! end of round `r₁` equals the current one iff every player that
//! moved after `r₁` has her pre-first-move strategy equal to her
//! current one — checked in `O(moves since r₁)` without materialising
//! either profile.

use std::collections::HashMap;

use ncg_core::GameState;
use ncg_graph::NodeId;

/// One accepted move, as the detector needs it: when, who, and what
/// the player's strategy was *before* the move.
#[derive(Debug, Clone)]
struct JournalEntry {
    round: usize,
    player: NodeId,
    old_strategy: Vec<NodeId>,
}

/// Incremental strategy-profile cycle detector. Construct with
/// [`CycleDetector::new`] — the detector must be primed with the
/// initial profile for round-0 repetitions to be caught (hence no
/// `Default`).
#[derive(Debug, Clone)]
pub struct CycleDetector {
    /// Current profile fingerprint: XOR over players of
    /// [`player_term`].
    fp: u64,
    /// Fingerprint → end-of-round indices observed with it (almost
    /// always a single round; collisions keep the short list honest).
    seen: HashMap<u64, Vec<usize>>,
    /// Accepted moves in order; `round` values are non-decreasing.
    journal: Vec<JournalEntry>,
}

/// The well-mixed fingerprint term of `(player, strategy)`: FNV-1a
/// over the id and the sorted purchase list, finalised with the
/// splitmix64 mixer so that XOR-combining terms across players keeps
/// high entropy. Deterministic across runs and platforms.
fn player_term(u: NodeId, sigma: &[NodeId]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    h = (h ^ u as u64).wrapping_mul(FNV_PRIME);
    for &v in sigma {
        h = (h ^ (v as u64 + 1)).wrapping_mul(FNV_PRIME);
    }
    // splitmix64 finalizer.
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl CycleDetector {
    /// A detector primed with the initial profile (recorded as the
    /// end-of-round-0 profile, matching the seed semantics).
    pub fn new(state: &GameState) -> Self {
        let mut fp = 0u64;
        for u in 0..state.n() as NodeId {
            fp ^= player_term(u, state.strategy(u));
        }
        let mut seen = HashMap::new();
        seen.insert(fp, vec![0]);
        CycleDetector { fp, seen, journal: Vec::new() }
    }

    /// Records an accepted move: updates the fingerprint and appends
    /// to the journal. `old` and `new` must be the *normalised*
    /// (sorted, deduplicated) purchase lists before and after the
    /// move, i.e. exactly what [`GameState::strategy`] stores.
    pub fn record_move(&mut self, round: usize, u: NodeId, old: &[NodeId], new: &[NodeId]) {
        debug_assert!(
            self.journal.last().is_none_or(|e| e.round <= round),
            "journal rounds must be non-decreasing"
        );
        self.fp ^= player_term(u, old) ^ player_term(u, new);
        self.journal.push(JournalEntry { round, player: u, old_strategy: old.to_vec() });
    }

    /// End-of-round check: if the current profile matches the
    /// end-of-round profile of an earlier round, returns that round;
    /// otherwise records the current profile. `state` must be the
    /// end-of-round state (used only on fingerprint hits, for exact
    /// confirmation).
    pub fn check_round(&mut self, round: usize, state: &GameState) -> Option<usize> {
        if let Some(rounds) = self.seen.get(&self.fp) {
            for &first_seen in rounds {
                if self.profile_equals_round(first_seen, state) {
                    return Some(first_seen);
                }
            }
        }
        self.seen.entry(self.fp).or_default().push(round);
        None
    }

    /// Exact check that the end-of-round-`r` profile equals the
    /// current one, replay-free: a player's strategy at the end of
    /// round `r` is her `old_strategy` in her first journal entry
    /// after round `r` (or her current strategy if she never moved
    /// again). Profiles agree iff every such first entry matches the
    /// player's current strategy.
    fn profile_equals_round(&self, r: usize, state: &GameState) -> bool {
        let start = self.journal.partition_point(|e| e.round <= r);
        // First subsequent move per player decides; later ones are
        // overwritten history.
        let mut decided: Vec<NodeId> = Vec::new();
        for e in &self.journal[start..] {
            if decided.contains(&e.player) {
                continue;
            }
            decided.push(e.player);
            if e.old_strategy != state.strategy(e.player) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_profile_is_round_zero() {
        let state = GameState::cycle_successor(5);
        let mut det = CycleDetector::new(&state);
        // Unchanged profile at end of round 1 → matches round 0.
        assert_eq!(det.check_round(1, &state), Some(0));
    }

    #[test]
    fn toggle_cycle_is_detected_with_correct_first_seen() {
        let mut state = GameState::from_strategies(3, vec![vec![1], vec![2], vec![0]]);
        let mut det = CycleDetector::new(&state);
        // Round 1: player 0 switches 1 → 2.
        det.record_move(1, 0, &[1], &[2]);
        state.set_strategy(0, vec![2]);
        assert_eq!(det.check_round(1, &state), None);
        // Round 2: back to 1 — the end-of-round profile equals round 0's.
        det.record_move(2, 0, &[2], &[1]);
        state.set_strategy(0, vec![1]);
        assert_eq!(det.check_round(2, &state), Some(0));
    }

    #[test]
    fn distinct_profiles_do_not_collide_in_practice() {
        let mut state = GameState::cycle_successor(6);
        let mut det = CycleDetector::new(&state);
        // A run of distinct profiles: grow player 0's strategy.
        for (round, t) in [(1usize, 2u32), (2, 3), (3, 4)] {
            let old = state.strategy(0).to_vec();
            let mut new = old.clone();
            new.push(t);
            det.record_move(round, 0, &old, &new);
            state.set_strategy(0, new);
            assert_eq!(det.check_round(round, &state), None, "round {round}");
        }
    }

    #[test]
    fn fingerprint_is_order_insensitive_across_players_but_not_targets() {
        // Same multiset of (player, strategy) pairs → same fingerprint;
        // swapping which player owns which strategy must change it.
        let a = player_term(0, &[1]) ^ player_term(1, &[2]);
        let b = player_term(1, &[2]) ^ player_term(0, &[1]);
        assert_eq!(a, b);
        let c = player_term(0, &[2]) ^ player_term(1, &[1]);
        assert_ne!(a, c);
    }

    #[test]
    fn confirmation_rejects_same_fingerprint_different_profile() {
        // Force the rare path: identical fingerprints cannot be
        // synthesised easily, so instead check profile_equals_round
        // directly distinguishes a changed profile.
        let mut state = GameState::from_strategies(3, vec![vec![1], vec![2], vec![0]]);
        let mut det = CycleDetector::new(&state);
        det.record_move(1, 0, &[1], &[2]);
        state.set_strategy(0, vec![2]);
        assert!(!det.profile_equals_round(0, &state));
        det.record_move(2, 1, &[2], &[0]);
        state.set_strategy(1, vec![0]);
        assert!(!det.profile_equals_round(0, &state));
        assert!(!det.profile_equals_round(1, &state));
    }
}
