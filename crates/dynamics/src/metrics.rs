//! Per-network statistics — the quantities the paper collects after
//! each round and reports in Figures 5–10.

use ncg_core::{social, GameSpec, GameState};
use ncg_graph::batch::{batch_bfs, batch_enabled, BatchDistances, BatchScratch, WORD_LANES};
use ncg_graph::bfs::DistanceBuffer;
use ncg_graph::{CsrGraph, NodeId, INFINITY};
use serde::{Deserialize, Serialize};

/// Reusable workspace of the measurement pass: the frozen CSR, the
/// scalar BFS buffer, the batched kernel's scratch + result, and the
/// per-player usage vector. One per repetition (the sweep engine's
/// [`crate::CacheArena`] owns one), threaded through
/// [`StateMetrics::measure_with`] so the per-cell epilogue re-allocates
/// nothing — the same discipline `DistanceBuffer` brings to a single
/// BFS.
#[derive(Debug, Clone, Default)]
pub struct MeasureScratch {
    csr: CsrGraph,
    buf: DistanceBuffer,
    batch: BatchScratch,
    dists: BatchDistances,
    usages: Vec<Option<u64>>,
    sources: Vec<NodeId>,
}

impl MeasureScratch {
    /// Fresh scratch; it sizes itself on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Snapshot of every statistic the experimental section plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateMetrics {
    /// Number of players.
    pub n: usize,
    /// Number of edges of `G(σ)`.
    pub edges: usize,
    /// Diameter (`None` if disconnected).
    pub diameter: Option<u32>,
    /// Social cost (`None` if disconnected).
    pub social_cost: Option<f64>,
    /// `SC/OPT` — the "quality of equilibrium" of Figures 6–7.
    pub quality: Option<f64>,
    /// Maximum node degree (Figure 8, left).
    pub max_degree: usize,
    /// Average node degree.
    pub avg_degree: f64,
    /// Maximum `|σ_u|` (Figure 8, right; Tables I–II).
    pub max_bought: usize,
    /// Average `|σ_u|`.
    pub avg_bought: f64,
    /// Smallest view size over players (Figure 5, right).
    pub min_view: usize,
    /// Mean view size over players (Figure 5, left).
    pub avg_view: f64,
    /// Max/min player cost ratio (Figure 9); `None` if degenerate.
    pub unfairness: Option<f64>,
}

impl StateMetrics {
    /// Measures a state under the given spec (view sizes use `spec.k`).
    ///
    /// One CSR freeze plus one full BFS per vertex over the shared
    /// multi-source kernel produces the diameter, both view-size
    /// statistics (a ball of radius `k` is exactly the nodes at
    /// distance `≤ k`), *and* every social statistic together: the
    /// per-player usage (eccentricity for Max, status for Sum) falls
    /// out of the same distance arrays, so `social_cost`, `quality`
    /// and `unfairness` no longer run their own per-vertex BFS over
    /// the mutable adjacency inside `ncg_core::social` — the last
    /// duplicate sweep of the per-cell epilogue (ROADMAP follow-up;
    /// parity-tested against `ncg_graph::metrics::diameter`,
    /// `ncg_graph::view::ball`, and the `ncg_core::social` BFS path).
    pub fn measure(state: &GameState, spec: &GameSpec) -> Self {
        Self::measure_with(state, spec, &mut MeasureScratch::new())
    }

    /// [`StateMetrics::measure`] with caller-provided scratch: the
    /// sweep epilogue's hot path, one scratch per repetition.
    pub fn measure_with(state: &GameState, spec: &GameSpec, scratch: &mut MeasureScratch) -> Self {
        Self::measure_with_policy(state, spec, scratch, batch_enabled())
    }

    /// [`StateMetrics::measure_with`] with the kernel choice pinned
    /// explicitly — the in-process A/B hook of the bit-parity tests
    /// (toggling `NCG_BATCH_BFS` inside a test process would race the
    /// once-read environment).
    pub fn measure_with_policy(
        state: &GameState,
        spec: &GameSpec,
        scratch: &mut MeasureScratch,
        batched: bool,
    ) -> Self {
        let g = state.graph();
        let n = state.n();
        scratch.csr.refreeze(g);
        let mut min_view = usize::MAX;
        let mut view_total = 0usize;
        let mut ecc_max = 0u32;
        let mut connected = true;
        scratch.usages.clear();
        let usage_cost = spec.objective.usage_cost();
        if batched {
            // ⌈n/64⌉ lane-group passes instead of n scalar BFS: every
            // per-player quantity falls out of the per-lane aggregates
            // (level histogram), bit-identical to the scalar loop.
            let mut lo = 0usize;
            while lo < n {
                let hi = (lo + WORD_LANES).min(n);
                scratch.sources.clear();
                scratch.sources.extend(lo as u32..hi as u32);
                batch_bfs(
                    &scratch.csr,
                    &scratch.sources,
                    u32::MAX,
                    &mut scratch.batch,
                    &mut scratch.dists,
                );
                for lane in 0..hi - lo {
                    let ecc = scratch.dists.ecc(lane);
                    let reaches_all = scratch.dists.reached(lane) == n;
                    connected &= reaches_all;
                    ecc_max = ecc_max.max(ecc);
                    let size = scratch.dists.ball_size(lane, spec.k);
                    min_view = min_view.min(size);
                    view_total += size;
                    scratch.usages.push(usage_cost.aggregate_usage(
                        reaches_all,
                        ecc,
                        scratch.dists.status_sum(lane),
                    ));
                }
                lo = hi;
            }
        } else {
            for u in 0..n as u32 {
                let ecc = scratch.csr.bfs(u, &mut scratch.buf);
                let reaches_all = scratch.buf.visited().len() == n;
                connected &= reaches_all;
                ecc_max = ecc_max.max(ecc);
                let size = scratch
                    .buf
                    .distances()
                    .iter()
                    .filter(|&&d| d != INFINITY && d <= spec.k)
                    .count();
                min_view = min_view.min(size);
                view_total += size;
                scratch.usages.push(usage_cost.distance_usage(
                    reaches_all,
                    ecc,
                    scratch.buf.distances(),
                ));
            }
        }
        if n == 0 {
            min_view = 0;
        }
        let usages = &scratch.usages;
        StateMetrics {
            n,
            edges: g.edge_count(),
            diameter: (n > 0 && connected).then_some(ecc_max),
            social_cost: social::social_cost_with_usages(state, spec, usages),
            quality: social::quality_with_usages(state, spec, usages),
            max_degree: g.max_degree(),
            avg_degree: g.avg_degree(),
            max_bought: state.max_bought(),
            avg_bought: if n == 0 { 0.0 } else { state.total_bought() as f64 / n as f64 },
            min_view,
            avg_view: if n == 0 { 0.0 } else { view_total as f64 / n as f64 },
            unfairness: social::unfairness_with_usages(state, spec, usages),
        }
    }

    /// Convenience: the view-size statistics alone, which Figure 5
    /// plots (min and mean over players). Same lane-grouped (or, with
    /// `NCG_BATCH_BFS=0`, CSR bounded-BFS) path as
    /// [`StateMetrics::measure`].
    pub fn view_sizes(state: &GameState, k: u32) -> (usize, f64) {
        let n = state.n();
        if n == 0 {
            return (0, 0.0);
        }
        let mut scratch = MeasureScratch::new();
        scratch.csr.refreeze(state.graph());
        let mut min = usize::MAX;
        let mut total = 0usize;
        if batch_enabled() {
            let mut lo = 0usize;
            while lo < n {
                let hi = (lo + WORD_LANES).min(n);
                scratch.sources.clear();
                scratch.sources.extend(lo as u32..hi as u32);
                batch_bfs(
                    &scratch.csr,
                    &scratch.sources,
                    k,
                    &mut scratch.batch,
                    &mut scratch.dists,
                );
                for lane in 0..hi - lo {
                    let size = scratch.dists.reached(lane);
                    min = min.min(size);
                    total += size;
                }
                lo = hi;
            }
        } else {
            for u in 0..n as u32 {
                scratch.csr.bfs_bounded(u, k, &mut scratch.buf);
                let size = scratch.buf.visited().len();
                min = min.min(size);
                total += size;
            }
        }
        (min, total as f64 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_core::GameSpec;

    #[test]
    fn star_metrics_are_exact() {
        let state = GameState::star_center_owned(9);
        let spec = GameSpec::max(2.0, 3);
        let m = StateMetrics::measure(&state, &spec);
        assert_eq!(m.n, 9);
        assert_eq!(m.edges, 8);
        assert_eq!(m.diameter, Some(2));
        assert_eq!(m.max_degree, 8);
        assert_eq!(m.max_bought, 8);
        assert!((m.avg_bought - 8.0 / 9.0).abs() < 1e-12);
        // k = 3 ≥ diameter: everyone sees everything.
        assert_eq!(m.min_view, 9);
        assert!((m.avg_view - 9.0).abs() < 1e-12);
        // Quality 1: star is optimal at α = 2.
        assert!((m.quality.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn view_sizes_on_cycle() {
        let state = GameState::cycle_successor(10);
        let (min, avg) = StateMetrics::view_sizes(&state, 2);
        assert_eq!(min, 5);
        assert!((avg - 5.0).abs() < 1e-12);
        let (min, avg) = StateMetrics::view_sizes(&state, 1000);
        assert_eq!(min, 10);
        assert!((avg - 10.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_state_has_none_fields() {
        let state = GameState::from_strategies(4, vec![vec![1], vec![], vec![3], vec![]]);
        let m = StateMetrics::measure(&state, &GameSpec::max(1.0, 2));
        assert_eq!(m.diameter, None);
        assert_eq!(m.social_cost, None);
        assert_eq!(m.quality, None);
        assert_eq!(m.unfairness, None);
        assert_eq!(m.edges, 2);
    }

    #[test]
    fn serde_round_trip() {
        let state = GameState::cycle_successor(6);
        let m = StateMetrics::measure(&state, &GameSpec::sum(1.0, 2));
        let back: StateMetrics = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn csr_usage_path_matches_social_bfs_path() {
        // The social statistics now come from the measurement pass's
        // own distance arrays; they must agree bit-for-bit with the
        // `ncg_core::social` BFS entry points they replaced, for both
        // objectives, on connected and disconnected profiles.
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(44);
        let mut states: Vec<GameState> = (0..4)
            .map(|t| {
                let g = ncg_graph::generators::gnp(30, 0.04 + 0.04 * t as f64, &mut rng).unwrap();
                GameState::from_graph_random_ownership(&g, &mut rng)
            })
            .collect();
        states.push(GameState::from_strategies(4, vec![vec![1], vec![], vec![3], vec![]]));
        states.push(GameState::cycle_successor(11));
        for (i, state) in states.iter().enumerate() {
            for spec in [GameSpec::max(1.3, 2), GameSpec::sum(2.1, 3)] {
                let m = StateMetrics::measure(state, &spec);
                assert_eq!(
                    m.social_cost,
                    ncg_core::social::social_cost(state, &spec),
                    "social cost parity (state {i}, {:?})",
                    spec.objective
                );
                assert_eq!(
                    m.quality,
                    ncg_core::social::quality(state, &spec),
                    "quality parity (state {i}, {:?})",
                    spec.objective
                );
                assert_eq!(
                    m.unfairness,
                    ncg_core::social::unfairness(state, &spec),
                    "unfairness parity (state {i}, {:?})",
                    spec.objective
                );
            }
        }
    }

    #[test]
    fn batched_measure_is_bit_identical_to_scalar() {
        // The 64-lane batched path and the per-vertex scalar path must
        // agree on every field — including the f64 averages — on
        // connected, disconnected, empty, and >64-node profiles (the
        // last exercising multiple lane groups and a partial one).
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let mut states: Vec<GameState> = (0..3)
            .map(|t| {
                let g = ncg_graph::generators::gnp(70, 0.03 + 0.03 * t as f64, &mut rng).unwrap();
                GameState::from_graph_random_ownership(&g, &mut rng)
            })
            .collect();
        states.push(GameState::from_strategies(4, vec![vec![1], vec![], vec![3], vec![]]));
        states.push(GameState::cycle_successor(130));
        states.push(GameState::from_strategies(0, vec![]));
        let mut scratch = MeasureScratch::new();
        for (i, state) in states.iter().enumerate() {
            for spec in [GameSpec::max(1.3, 2), GameSpec::sum(2.1, 3)] {
                let batched = StateMetrics::measure_with_policy(state, &spec, &mut scratch, true);
                let scalar = StateMetrics::measure_with_policy(state, &spec, &mut scratch, false);
                assert_eq!(batched, scalar, "batched parity (state {i}, {:?})", spec.objective);
            }
        }
    }

    #[test]
    fn csr_path_matches_reference_diameter_and_balls() {
        // Parity of the CSR measurement path against the per-vertex
        // `Graph` reference implementations it replaced.
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(33);
        for trial in 0..4 {
            let g = ncg_graph::generators::gnp(40, 0.05 + 0.03 * trial as f64, &mut rng).unwrap();
            let state = GameState::from_graph_random_ownership(&g, &mut rng);
            for k in [1u32, 2, 3, 1000] {
                let spec = GameSpec::max(1.0, k);
                let m = StateMetrics::measure(&state, &spec);
                assert_eq!(
                    m.diameter,
                    ncg_graph::metrics::diameter(state.graph()),
                    "diameter parity (trial {trial}, k={k})"
                );
                let mut min = usize::MAX;
                let mut total = 0usize;
                for u in 0..state.n() as u32 {
                    let size = ncg_graph::view::ball(state.graph(), u, k).len();
                    min = min.min(size);
                    total += size;
                }
                assert_eq!(m.min_view, min, "min view parity (trial {trial}, k={k})");
                let avg = total as f64 / state.n() as f64;
                assert!((m.avg_view - avg).abs() < 1e-12, "avg view parity (trial {trial}, k={k})");
                assert_eq!(StateMetrics::view_sizes(&state, k), (min, avg));
            }
        }
    }
}
