//! # ncg-dynamics — best-response dynamics (Section 5.1 of the paper)
//!
//! Simulates the iterated locality-based game exactly as the paper's
//! experiments do:
//!
//! > *"The players play in turns, following a round-robin policy […]
//! > we compute a best-response strategy according to her local
//! > knowledge of the network, and whenever this strategy is strictly
//! > better than the current one we update the network. […] We
//! > continue until we attain an equilibrium […] we check if the last
//! > strategy profile of the current round already appeared as the
//! > last strategy profile of any previous round"*
//!
//! — in which case the dynamics cycles and no equilibrium will ever
//! be reached.
//!
//! * [`run`] — one dynamics from a given initial
//!   [`GameState`](ncg_core::GameState); deterministic (round-robin
//!   order, deterministic solver). Incremental by default: a
//!   [`ViewCache`] reuses player views across rounds and skips players
//!   whose radius-`k` ball provably did not change (see DESIGN.md §6);
//!   outcomes are bit-identical with the cache on or off.
//! * [`run_many`] — rayon-parallel batch over independent initial
//!   states, results in input order.
//! * [`run_with_cache`] — warm-started variant: a [`CacheArena`]
//!   (one [`ViewCache`] + one solver responder) carried across
//!   consecutive runs reuses every allocation; outcomes stay
//!   bit-identical to cold runs. The experiments sweep engine keeps
//!   one arena per repetition across all `(α, k)` cells.
//! * [`StateMetrics`] — the per-network statistics the paper collects
//!   after every round (diameter, social cost, degrees, bought edges,
//!   view sizes, fairness).
//! * [`scale`] — the million-node tier: flat structure-of-arrays
//!   state, CSR-native greedy responders, and simultaneous rounds
//!   with deterministic conflict resolution (approximate responders,
//!   exact pricing; see DESIGN.md §13).
//!
//! ## Example
//!
//! ```
//! use ncg_core::{GameSpec, GameState};
//! use ncg_dynamics::{run, DynamicsConfig, Outcome};
//!
//! let initial = GameState::cycle_successor(10);
//! let config = DynamicsConfig::new(GameSpec::max(1.0, 3));
//! let result = run(initial, &config);
//! assert!(matches!(result.outcome, Outcome::Converged { .. }));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod fingerprint;
mod metrics;
mod runner;
pub mod scale;
mod trace;
mod view_cache;

pub use fingerprint::CycleDetector;
pub use metrics::{MeasureScratch, StateMetrics};
pub use runner::{
    run, run_many, run_with, run_with_cache, CacheArena, DynamicsConfig, Outcome, RunResult,
};
pub use trace::{MoveEvent, Trace};
pub use view_cache::{CacheStats, ViewCache};
