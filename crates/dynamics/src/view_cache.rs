//! The incremental view cache: round-over-round reuse of player views
//! with dirty-ball invalidation.
//!
//! `PlayerView::build` is `O(ball)` per player, so rebuilding all `n`
//! views every round makes a dynamics round `O(n·m)` even when almost
//! nobody moves — and the paper's experiments (Figures 5–10) converge
//! in ≤ 7 rounds with sharply decaying per-round move counts, so most
//! of that work re-derives views that cannot have changed. The cache
//! keeps all `n` views alive across rounds and, after a move, marks
//! dirty exactly the players whose view *can* have changed.
//!
//! **Invalidation radius argument** (DESIGN.md §6): the view of `u` is
//! a function of (a) the subgraph induced by her radius-`k` ball, (b)
//! her own purchase list, and (c) her incoming-ownership set. When
//! player `v` moves, every changed quantity is anchored at a *touched
//! endpoint* — `v` herself plus the targets in the symmetric
//! difference of her old and new strategies ([`ncg_core::EdgeDiff`]).
//! A ball `B(u, k)` can only gain, lose, or re-wire vertices if some
//! touched endpoint lies within distance `k` of `u` in the old graph
//! (removals shrink the ball) or the new one (additions grow it);
//! `incoming(u)` changes only if `u` is adjacent to `v` (distance 1)
//! or is herself a touched target. Two bounded multi-source BFS sweeps
//! from the touched set — one before the mutation, one after — over
//! the shared [`ncg_graph::bfs`] kernel therefore cover every player
//! whose view could differ, in `O(ball(touched, k))` instead of
//! `O(n·m)`.
//!
//! A *clean* player's cached view is bit-identical to a fresh build
//! (property-tested in `tests/view_cache_props.rs`), so with a
//! deterministic responder her best response — and hence her decision
//! not to move — is unchanged: the runner skips view construction
//! *and* the solver call for her entirely.

use ncg_core::{EdgeDiff, GameState, PlayerView, ViewScratch};
use ncg_graph::batch::{batch_bfs, batch_enabled, BatchDistances, BatchScratch, WORD_LANES};
use ncg_graph::bfs::{bfs_multi_bounded, DistanceBuffer};
use ncg_graph::NodeId;

/// Cache statistics, exposed for benchmarks and the skip-proof tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Views (re)built — fresh constructions plus in-place refreshes.
    pub rebuilds: u64,
    /// Player turns skipped because the player was provably clean.
    pub skips: u64,
}

/// Per-player cached views with dirty-ball tracking.
///
/// Protocol (what [`crate::run_with`] does each turn of player `u`):
///
/// 1. [`ViewCache::is_clean`]`(u)` — if `true`, skip the turn (call
///    [`ViewCache::note_skip`] for the statistics); the player had no
///    improving move when last solved and nothing in her ball changed.
/// 2. Otherwise [`ViewCache::refresh`]`(state, u)` to get the current
///    view (rebuilt in place, reusing allocations) and solve on it.
///    The refresh clears the dirty bit, so a player left unmoved
///    stays clean until a later move dirties her ball.
/// 3. On an accepted move, route the mutation through
///    [`ViewCache::apply_move`] instead of calling
///    [`GameState::set_strategy`] directly, so the cache can run its
///    two invalidation sweeps around the mutation.
#[derive(Debug, Clone)]
pub struct ViewCache {
    k: u32,
    views: Vec<Option<PlayerView>>,
    dirty: Vec<bool>,
    /// Players whose cached view was rebuilt by the round-start
    /// [`ViewCache::prefetch`] and not invalidated since: their next
    /// [`ViewCache::refresh`] consumes the slot as-is.
    fresh: Vec<bool>,
    batch: bool,
    scratch: ViewScratch,
    bfs: DistanceBuffer,
    touched: Vec<NodeId>,
    batch_scratch: BatchScratch,
    batch_dists: BatchDistances,
    prefetch_sources: Vec<NodeId>,
    ball: Vec<NodeId>,
    stats: CacheStats,
}

impl ViewCache {
    /// A cache for `n` players at knowledge radius `k`; every player
    /// starts dirty (nothing has been solved yet).
    pub fn new(n: usize, k: u32) -> Self {
        ViewCache {
            k,
            views: vec![None; n],
            dirty: vec![true; n],
            fresh: vec![false; n],
            batch: batch_enabled(),
            scratch: ViewScratch::new(),
            bfs: DistanceBuffer::new(),
            touched: Vec::new(),
            batch_scratch: BatchScratch::new(),
            batch_dists: BatchDistances::default(),
            prefetch_sources: Vec::new(),
            ball: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Pins whether [`ViewCache::prefetch`] uses the 64-lane batched
    /// ball kernel (`true`) or is a no-op (`false`, the scalar path).
    /// Defaults to [`ncg_graph::batch::batch_enabled`]; the dynamics
    /// runner pins it from its config so in-process A/B comparisons
    /// need no environment mutation.
    #[inline]
    pub fn set_batch_bfs(&mut self, on: bool) {
        self.batch = on;
    }

    /// The knowledge radius the cache was built for.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Re-arms the cache for a fresh run of `n` players at radius `k`,
    /// keeping every allocation the previous run grew: cached
    /// [`PlayerView`]s (their next [`ViewCache::refresh`] rebuilds in
    /// place instead of building from scratch), the BFS buffer, and
    /// the view scratch. Every player starts dirty and the statistics
    /// restart at zero, so a reset cache is observationally identical
    /// to [`ViewCache::new`] — the warm-start soundness argument of
    /// DESIGN.md §7 rests on exactly this equivalence.
    pub fn reset(&mut self, n: usize, k: u32) {
        self.k = k;
        if self.views.len() != n {
            self.views.resize_with(n, || None);
        }
        self.dirty.clear();
        self.dirty.resize(n, true);
        self.fresh.clear();
        self.fresh.resize(n, false);
        self.touched.clear();
        self.stats = CacheStats::default();
    }

    /// Whether player `u`'s cached view is current *and* she had no
    /// improving move when last solved on it.
    #[inline]
    pub fn is_clean(&self, u: NodeId) -> bool {
        !self.dirty[u as usize]
    }

    /// Records a skipped turn (statistics only).
    #[inline]
    pub fn note_skip(&mut self) {
        self.stats.skips += 1;
    }

    /// Returns player `u`'s up-to-date view, rebuilding it in place
    /// (reusing the slot's allocations) and clearing her dirty bit.
    /// The caller is expected to solve on the returned view; the
    /// clean-skip invariant relies on it.
    pub fn refresh(&mut self, state: &GameState, u: NodeId) -> &PlayerView {
        // Rebuild accounting happens at *consume* time whether the
        // view was prefetched or is rebuilt here — `rebuilds` counts
        // views the solver actually ran on, which is what the
        // skip-proof tests pin against solver calls.
        self.stats.rebuilds += 1;
        self.dirty[u as usize] = false;
        if self.fresh[u as usize] {
            self.fresh[u as usize] = false;
            debug_assert_eq!(
                self.views[u as usize].as_ref(),
                Some(&PlayerView::build(state, u, self.k)),
                "prefetched view of player {u} is stale"
            );
            return self.views[u as usize].as_ref().expect("fresh implies built");
        }
        let slot = &mut self.views[u as usize];
        match slot {
            Some(view) => view.rebuild(state, u, self.k, &mut self.scratch),
            None => *slot = Some(PlayerView::build_with(state, u, self.k, &mut self.scratch)),
        }
        slot.as_ref().expect("slot filled above")
    }

    /// Rebuilds the views of every currently-dirty player in 64-lane
    /// batched ball sweeps over the *current* graph, marking them
    /// fresh so their next [`ViewCache::refresh`] is a pointer return.
    /// Sound only at a point where the state will not change before
    /// those refreshes consume the views — the runner calls it at the
    /// top of each round, and any mid-round move's invalidation sweep
    /// clears the fresh bit of every player it reaches, so a view is
    /// consumed fresh only if nothing in her ball moved since the
    /// prefetch. No-op unless batching is on ([`ViewCache::set_batch_bfs`]);
    /// touches neither the dirty bits nor the statistics.
    pub fn prefetch(&mut self, state: &GameState) {
        if !self.batch {
            return;
        }
        self.prefetch_sources.clear();
        self.prefetch_sources.extend(
            (0..state.n() as NodeId).filter(|&u| self.dirty[u as usize] && !self.fresh[u as usize]),
        );
        let mut lo = 0usize;
        while lo < self.prefetch_sources.len() {
            let hi = (lo + WORD_LANES).min(self.prefetch_sources.len());
            batch_bfs(
                state.graph(),
                &self.prefetch_sources[lo..hi],
                self.k,
                &mut self.batch_scratch,
                &mut self.batch_dists,
            );
            for (lane, &u) in self.prefetch_sources[lo..hi].iter().enumerate() {
                self.batch_dists.lane_ball_into(lane, &mut self.ball);
                let slot = &mut self.views[u as usize];
                match slot {
                    Some(view) => {
                        view.rebuild_from_ball(state, u, self.k, &self.ball, &mut self.scratch);
                    }
                    None => {
                        *slot = Some(PlayerView::build_from_ball(
                            state,
                            u,
                            self.k,
                            &self.ball,
                            &mut self.scratch,
                        ));
                    }
                }
                self.fresh[u as usize] = true;
            }
            lo = hi;
        }
    }

    /// Applies player `u`'s accepted move through the cache: computes
    /// the touched-endpoint set, sweeps the old graph, mutates the
    /// state, sweeps the new graph (seeded from the returned
    /// [`EdgeDiff::touched`]), and marks every reached player dirty.
    /// Returns the [`EdgeDiff`] from the underlying
    /// [`GameState::set_strategy`].
    pub fn apply_move(
        &mut self,
        state: &mut GameState,
        u: NodeId,
        new_strategy: Vec<NodeId>,
    ) -> EdgeDiff {
        // Touched endpoints: the mover plus the symmetric difference
        // of old and new purchases. The pre-move set must be computed
        // *before* the mutation so the old-graph sweep can run first
        // (edge removals can move a player out of every touched ball
        // in the new graph while her own ball still shrank); the
        // post-move sweep reuses the mutation's own endpoint report,
        // and the debug assertion below pins the two computations to
        // each other.
        self.touched.clear();
        self.touched.push(u);
        let mut normalized = new_strategy;
        normalized.sort_unstable();
        normalized.dedup();
        let old = state.strategy(u);
        let (mut i, mut j) = (0, 0);
        while i < old.len() || j < normalized.len() {
            match (old.get(i), normalized.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                }
                (Some(&a), Some(&b)) if a < b => {
                    self.touched.push(a);
                    i += 1;
                }
                (Some(_), Some(&b)) => {
                    self.touched.push(b);
                    j += 1;
                }
                (Some(&a), None) => {
                    self.touched.push(a);
                    i += 1;
                }
                (None, Some(&b)) => {
                    self.touched.push(b);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.sweep_and_mark(state);
        let diff = state.set_strategy(u, normalized);
        debug_assert_eq!(
            {
                let mut pre = self.touched.clone();
                pre.sort_unstable();
                pre
            },
            {
                let mut post: Vec<NodeId> = diff.touched().collect();
                post.sort_unstable();
                post.dedup();
                post
            },
            "pre-move symmetric difference disagrees with the EdgeDiff endpoints"
        );
        self.touched.clear();
        self.touched.extend(diff.touched());
        self.sweep_and_mark(state);
        diff
    }

    /// One bounded multi-source BFS from the touched set, marking
    /// every player within distance `k` dirty.
    fn sweep_and_mark(&mut self, state: &GameState) {
        bfs_multi_bounded(state.graph(), &self.touched, self.k, &mut self.bfs);
        for &v in self.bfs.visited() {
            self.dirty[v as usize] = true;
            // A prefetched view inside the invalidation radius is no
            // longer trustworthy; force a scalar rebuild at refresh.
            self.fresh[v as usize] = false;
        }
    }

    /// The cached view of `u`, if one was ever built (current only if
    /// [`ViewCache::is_clean`]; test/diagnostic accessor).
    pub fn view(&self, u: NodeId) -> Option<&PlayerView> {
        self.views[u as usize].as_ref()
    }

    /// Rebuild/skip counters accumulated so far.
    #[inline]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_core::GameState;

    #[test]
    fn all_players_start_dirty_and_refresh_cleans() {
        let state = GameState::cycle_successor(6);
        let mut cache = ViewCache::new(6, 2);
        assert!((0..6).all(|u| !cache.is_clean(u)));
        let view = cache.refresh(&state, 3);
        assert_eq!(view, &PlayerView::build(&state, 3, 2));
        assert!(cache.is_clean(3));
        assert_eq!(cache.stats().rebuilds, 1);
    }

    #[test]
    fn apply_move_dirties_exactly_the_touched_balls() {
        // Long path, k = 1: a move at one end must not dirty the far end.
        let n = 12;
        let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, sigma) in strategies.iter_mut().enumerate().take(n - 1) {
            sigma.push((i + 1) as NodeId);
        }
        let mut state = GameState::from_strategies(n, strategies);
        let mut cache = ViewCache::new(n, 1);
        for u in 0..n as NodeId {
            cache.refresh(&state, u);
        }
        assert!((0..n as NodeId).all(|u| cache.is_clean(u)));
        // Player 0 swaps her edge from 1 to 2: touched = {0, 1, 2}.
        let diff = cache.apply_move(&mut state, 0, vec![2]);
        assert_eq!(diff.added, vec![2]);
        assert_eq!(diff.removed, vec![1]);
        // Within distance 1 of {0,1,2} in old or new graph: 0,1,2,3.
        for u in 0..=3 {
            assert!(!cache.is_clean(u), "player {u} must be dirty");
        }
        for u in 4..n as NodeId {
            assert!(cache.is_clean(u), "player {u} must stay clean");
        }
        // Refreshed dirty views match fresh builds.
        for u in 0..n as NodeId {
            assert_eq!(cache.refresh(&state, u), &PlayerView::build(&state, u, 1));
        }
    }

    #[test]
    fn clean_views_stay_identical_to_fresh_builds_after_moves() {
        let mut state = GameState::cycle_successor(10);
        let k = 2;
        let mut cache = ViewCache::new(10, k);
        for u in 0..10 {
            cache.refresh(&state, u);
        }
        cache.apply_move(&mut state, 4, vec![0, 5]);
        for u in 0..10u32 {
            if cache.is_clean(u) {
                assert_eq!(
                    cache.view(u).unwrap(),
                    &PlayerView::build(&state, u, k),
                    "clean player {u} holds a stale view"
                );
            }
        }
    }

    #[test]
    fn reset_rearms_like_a_fresh_cache() {
        let state_a = GameState::cycle_successor(8);
        let mut cache = ViewCache::new(8, 2);
        for u in 0..8 {
            cache.refresh(&state_a, u);
        }
        assert!(cache.stats().rebuilds > 0);
        // Re-arm for a different state, size, and radius.
        let state_b = GameState::star_center_owned(6);
        cache.reset(6, 3);
        assert_eq!(cache.k(), 3);
        assert_eq!(cache.stats(), CacheStats::default());
        assert!((0..6).all(|u| !cache.is_clean(u)));
        for u in 0..6 {
            assert_eq!(
                cache.refresh(&state_b, u),
                &PlayerView::build(&state_b, u, 3),
                "warm refresh of player {u} must equal a fresh build"
            );
        }
        // Growing again is also fine.
        cache.reset(8, 2);
        for u in 0..8 {
            assert_eq!(cache.refresh(&state_a, u), &PlayerView::build(&state_a, u, 2));
        }
    }

    #[test]
    fn prefetched_views_match_fresh_builds_and_are_invalidated_by_moves() {
        let mut state = GameState::cycle_successor(70);
        let k = 2;
        let mut cache = ViewCache::new(70, k);
        cache.set_batch_bfs(true);
        // Round-start prefetch over >64 dirty players (two lane
        // groups, one partial): every refresh must consume the
        // prefetched slot and still equal a plain build.
        cache.prefetch(&state);
        for u in 0..70u32 {
            assert_eq!(
                cache.refresh(&state, u),
                &PlayerView::build(&state, u, k),
                "prefetched view of player {u} diverges"
            );
        }
        assert_eq!(cache.stats().rebuilds, 70, "rebuilds counted at consume time");
        // A move invalidates prefetched views inside the sweep radius;
        // the follow-up prefetch + refresh still match plain builds.
        cache.apply_move(&mut state, 10, vec![40]);
        cache.prefetch(&state);
        for u in 0..70u32 {
            if !cache.is_clean(u) {
                assert_eq!(cache.refresh(&state, u), &PlayerView::build(&state, u, k));
            }
        }
        // With batching pinned off, prefetch is a no-op and refresh
        // takes the scalar path — same views either way.
        let mut scalar = ViewCache::new(70, k);
        scalar.set_batch_bfs(false);
        scalar.prefetch(&state);
        for u in 0..70u32 {
            assert_eq!(scalar.refresh(&state, u), cache.view(u).unwrap());
        }
    }

    #[test]
    fn ownership_only_move_dirties_the_target() {
        // 0 and 1 both own (0,1); when 1 drops her copy the graph is
        // unchanged but incoming(0) loses 1, so 0 must be re-solved.
        let mut state = GameState::from_strategies(3, vec![vec![1], vec![0, 2], vec![]]);
        let mut cache = ViewCache::new(3, 1);
        for u in 0..3 {
            cache.refresh(&state, u);
        }
        let before = state.graph().clone();
        let diff = cache.apply_move(&mut state, 1, vec![2]);
        assert_eq!(state.graph(), &before, "graph must be unchanged");
        assert_eq!(diff.ownership, vec![0]);
        assert!(!cache.is_clean(0));
        assert_eq!(cache.refresh(&state, 0), &PlayerView::build(&state, 0, 1));
    }
}
