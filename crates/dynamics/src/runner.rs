//! The round-robin best-response loop with cycle detection.
//!
//! The loop is *incremental* by default: a [`ViewCache`] keeps all `n`
//! player views alive across rounds and invalidates only the players
//! whose radius-`k` ball can have changed after a move, so clean
//! players skip view construction **and** the solver call entirely —
//! their best response is unchanged by determinism. Late rounds (and
//! the final quiet round that certifies the equilibrium) then cost
//! `O(moved players' balls)` instead of `O(n·m)`. Outcomes are
//! bit-identical with the cache on and off (property-tested); the
//! cache can be disabled per run with
//! [`DynamicsConfig::without_view_cache`] for A/B benchmarking.

use ncg_core::deviation::current_total;
use ncg_core::equilibrium::BestResponder;
use ncg_core::{GameSpec, GameState, PlayerView};
use ncg_solver::{Mode, Responder};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::fingerprint::CycleDetector;
use crate::metrics::MeasureScratch;
use crate::view_cache::{CacheStats, ViewCache};
use crate::StateMetrics;
use ncg_graph::batch::batch_enabled;

/// Configuration of one dynamics run.
#[derive(Debug, Clone, Copy)]
pub struct DynamicsConfig {
    /// Game parameters (`α`, `k`, objective).
    pub spec: GameSpec,
    /// Best-response effort (exact reproduces the paper; greedy is the
    /// ablation).
    pub mode: Mode,
    /// Safety cap on rounds; the paper's runs converge in ≤ 7 rounds
    /// almost always, so the default of 200 is generous.
    pub max_rounds: usize,
    /// Record a [`StateMetrics`] snapshot after every round (the
    /// paper does; off by default to keep sweeps lean).
    pub per_round_metrics: bool,
    /// Record a move-level [`Trace`](crate::Trace) (off by default).
    pub record_trace: bool,
    /// Reuse player views across rounds and skip provably-unchanged
    /// players (on by default; results are identical either way, the
    /// flag exists for A/B benchmarks and belt-and-braces parity
    /// tests).
    pub use_view_cache: bool,
    /// Use the 64-lane bit-parallel BFS kernels for metric sweeps and
    /// the view cache's round-start prefetch (on by default unless
    /// `NCG_BATCH_BFS=0`; results are bit-identical either way, the
    /// flag exists for in-process A/B parity tests that cannot safely
    /// mutate the environment).
    pub batch_bfs: bool,
}

impl DynamicsConfig {
    /// Defaults: exact responses, 200-round cap, no per-round metrics,
    /// no trace, incremental view cache on.
    pub fn new(spec: GameSpec) -> Self {
        DynamicsConfig {
            spec,
            mode: Mode::Exact,
            max_rounds: 200,
            per_round_metrics: false,
            record_trace: false,
            use_view_cache: true,
            batch_bfs: batch_enabled(),
        }
    }

    /// Switches to greedy best responses.
    pub fn greedy(mut self) -> Self {
        self.mode = Mode::Greedy;
        self
    }

    /// Enables per-round metric snapshots.
    pub fn with_per_round_metrics(mut self) -> Self {
        self.per_round_metrics = true;
        self
    }

    /// Enables the move-level event log.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Disables the incremental view cache: every round rebuilds every
    /// view and re-solves every player, as the seed implementation
    /// did. Outcomes are identical; only the work differs.
    pub fn without_view_cache(mut self) -> Self {
        self.use_view_cache = false;
        self
    }

    /// Pins the scalar BFS kernels (disables 64-lane batching) for
    /// this run regardless of `NCG_BATCH_BFS`. Outcomes are identical;
    /// only the work differs.
    pub fn without_batch_bfs(mut self) -> Self {
        self.batch_bfs = false;
        self
    }
}

/// How a dynamics run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// A full round passed with no strategy change: equilibrium.
    Converged {
        /// Rounds executed, *including* the final quiet round.
        rounds: usize,
    },
    /// The end-of-round profile repeated an earlier one: with
    /// round-robin order the dynamics is periodic and will never
    /// reach an equilibrium (the paper observed 5 cycles in ≈36 000
    /// runs).
    Cycled {
        /// Round at which the repeated profile first appeared.
        first_seen: usize,
        /// Round at which the repetition was detected.
        repeated_at: usize,
    },
    /// The safety cap was hit without convergence or a detected cycle.
    MaxRoundsExceeded {
        /// Rounds actually executed (the configured cap).
        rounds: usize,
    },
}

impl Outcome {
    /// Whether the run reached an equilibrium.
    pub fn converged(&self) -> bool {
        matches!(self, Outcome::Converged { .. })
    }

    /// Rounds executed, whatever the terminal condition: the quiet
    /// round for convergence, the detection round for cycles, the cap
    /// for capped runs.
    pub fn rounds(&self) -> usize {
        match *self {
            Outcome::Converged { rounds } => rounds,
            Outcome::Cycled { repeated_at, .. } => repeated_at,
            Outcome::MaxRoundsExceeded { rounds } => rounds,
        }
    }
}

/// The result of one dynamics run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Terminal condition.
    pub outcome: Outcome,
    /// The final state (the equilibrium when `outcome.converged()`).
    pub state: GameState,
    /// Total accepted strategy changes across all rounds.
    pub total_moves: usize,
    /// Best-response solver invocations across the run — with the view
    /// cache this is how skipping is measured (`≤ n · rounds`, with
    /// equality exactly when nothing was skippable).
    pub solver_calls: usize,
    /// View-cache rebuild/skip counters (`None` when the cache was
    /// disabled).
    pub cache_stats: Option<CacheStats>,
    /// Metrics of the final state.
    pub final_metrics: StateMetrics,
    /// Per-round snapshots if requested in the config.
    pub round_metrics: Vec<StateMetrics>,
    /// Move-level event log if requested in the config.
    pub trace: Option<crate::Trace>,
}

/// Runs round-robin best-response dynamics from `initial` until
/// equilibrium, cycle, or the round cap. Deterministic.
pub fn run(initial: GameState, config: &DynamicsConfig) -> RunResult {
    let mut responder = Responder::new(config.mode);
    run_with(initial, config, &mut responder)
}

/// Reusable warm-start bundle for back-to-back dynamics runs: one
/// [`ViewCache`] plus one [`Responder`] (which owns its
/// `SolverScratch`), handed to [`run_with_cache`] so consecutive runs
/// sharing an initial-state family reuse every view, BFS buffer, and
/// solver allocation instead of re-growing them from cold. The sweep
/// engine keeps one arena per repetition across all `(α, k)` cells.
///
/// Warm starts are *allocation* reuse only: the cache is
/// [`ViewCache::reset`] before every run and the responder's
/// determinism contract makes its scratch contents unobservable, so
/// outcomes are bit-identical to cold [`run`] calls (property-tested
/// in the experiments crate).
#[derive(Debug, Clone, Default)]
pub struct CacheArena {
    cache: Option<ViewCache>,
    responder: Responder,
    measure: MeasureScratch,
}

impl CacheArena {
    /// An empty arena; it sizes itself on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Discards the arena's view cache and responder and replaces them
    /// with fresh ones.
    ///
    /// This is the *poison-recovery* path: if a run borrowing this
    /// arena panicked (and the panic was caught with `catch_unwind`),
    /// the cache's dirty-tracking and the responder's scratch may have
    /// been left mid-update, and the warm-start soundness argument no
    /// longer applies to them. Rebuilding restores the "fresh arena"
    /// state, so the next [`run_with_cache`] call is observationally a
    /// cold run — at the cost of re-growing the allocations once.
    pub fn rebuild(&mut self) {
        *self = CacheArena::new();
    }
}

/// Like [`run`], but warm-started from `arena`: the arena's view
/// cache is re-armed (same observable behaviour as a fresh cache)
/// and its responder reused, so nothing is re-allocated between
/// consecutive runs. Honours `config.use_view_cache` — when the cache
/// is disabled only the responder's solver scratch is reused.
pub fn run_with_cache(
    initial: GameState,
    config: &DynamicsConfig,
    arena: &mut CacheArena,
) -> RunResult {
    arena.responder.mode = config.mode;
    if config.use_view_cache {
        let n = initial.n();
        let cache = arena.cache.get_or_insert_with(|| ViewCache::new(n, config.spec.k));
        cache.reset(n, config.spec.k);
        run_core(initial, config, &mut arena.responder, Some(cache), &mut arena.measure)
    } else {
        run_core(initial, config, &mut arena.responder, None, &mut arena.measure)
    }
}

/// Like [`run`], but with a caller-provided best-response engine —
/// any [`BestResponder`], including closures. The engine must be
/// deterministic for the cycle detection to be sound (a repeated
/// end-of-round profile then proves periodicity) **and** for the view
/// cache's clean-player skip to be sound (an unchanged view must
/// yield an unchanged response); internal scratch reuse is fine, a
/// response depending on anything but `(spec, view)` is not.
pub fn run_with<B: BestResponder>(
    initial: GameState,
    config: &DynamicsConfig,
    responder: &mut B,
) -> RunResult {
    let mut cache = config.use_view_cache.then(|| ViewCache::new(initial.n(), config.spec.k));
    run_core(initial, config, responder, cache.as_mut(), &mut MeasureScratch::new())
}

/// The round loop shared by every entry point; `cache` is either
/// owned by the caller for this one run ([`run_with`]) or borrowed
/// from a long-lived [`CacheArena`] ([`run_with_cache`]).
fn run_core<B: BestResponder>(
    initial: GameState,
    config: &DynamicsConfig,
    responder: &mut B,
    mut cache: Option<&mut ViewCache>,
    measure: &mut MeasureScratch,
) -> RunResult {
    let mut state = initial;
    let spec = config.spec;
    let n = state.n();
    if let Some(cache) = cache.as_mut() {
        cache.set_batch_bfs(config.batch_bfs);
    }
    let mut detector = CycleDetector::new(&state);
    let mut total_moves = 0usize;
    let mut solver_calls = 0usize;
    let mut round_metrics = Vec::new();
    let mut trace = if config.record_trace { Some(crate::Trace::new()) } else { None };
    let mut outcome = Outcome::MaxRoundsExceeded { rounds: config.max_rounds };
    for round in 1..=config.max_rounds {
        let mut moves_this_round = 0usize;
        // Round-start batched prefetch: rebuild every dirty player's
        // view in 64-lane ball sweeps before the state can change this
        // round (no-op when batching is off; mid-round invalidation
        // clears the fresh bits it sets).
        if let Some(cache) = cache.as_mut() {
            cache.prefetch(&state);
        }
        for u in 0..n as u32 {
            if let Some(cache) = cache.as_mut() {
                if cache.is_clean(u) {
                    // Nothing in u's ball changed since she was last
                    // solved without finding an improvement; by
                    // determinism she would stand pat again.
                    cache.note_skip();
                    continue;
                }
            }
            let fresh;
            let view: &PlayerView = match cache.as_mut() {
                Some(cache) => cache.refresh(&state, u),
                None => {
                    fresh = PlayerView::build(&state, u, spec.k);
                    &fresh
                }
            };
            let current = current_total(&spec, view);
            solver_calls += 1;
            let best = responder.best_response(&spec, view);
            if GameSpec::strictly_better(best.total_cost, current) {
                let global = view.strategy_to_global(&best.strategy_local);
                if let Some(trace) = trace.as_mut() {
                    trace.events.push(crate::MoveEvent {
                        round,
                        player: u,
                        old_strategy: state.strategy(u).to_vec(),
                        new_strategy: global.clone(),
                        old_cost: current,
                        new_cost: best.total_cost,
                        view_size: view.len(),
                    });
                }
                let old = state.strategy(u).to_vec();
                match cache.as_mut() {
                    Some(cache) => {
                        cache.apply_move(&mut state, u, global);
                    }
                    None => {
                        state.set_strategy(u, global);
                    }
                }
                detector.record_move(round, u, &old, state.strategy(u));
                moves_this_round += 1;
            }
        }
        total_moves += moves_this_round;
        if config.per_round_metrics {
            round_metrics.push(StateMetrics::measure_with_policy(
                &state,
                &spec,
                measure,
                config.batch_bfs,
            ));
        }
        if moves_this_round == 0 {
            outcome = Outcome::Converged { rounds: round };
            break;
        }
        // Round-robin + deterministic responses ⇒ a repeated
        // end-of-round profile proves a best-response cycle.
        if let Some(first_seen) = detector.check_round(round, &state) {
            outcome = Outcome::Cycled { first_seen, repeated_at: round };
            break;
        }
    }
    let final_metrics = StateMetrics::measure_with_policy(&state, &spec, measure, config.batch_bfs);
    RunResult {
        outcome,
        state,
        total_moves,
        solver_calls,
        cache_stats: cache.map(|c| c.stats()),
        final_metrics,
        round_metrics,
        trace,
    }
}

/// Runs many independent dynamics in parallel (rayon); results are in
/// input order regardless of scheduling.
pub fn run_many(initials: Vec<GameState>, config: &DynamicsConfig) -> Vec<RunResult> {
    initials.into_par_iter().map(|initial| run(initial, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn stable_cycle_converges_immediately() {
        // Lemma 3.1 equilibrium: one quiet round, zero moves.
        let result =
            run(GameState::cycle_successor(12), &DynamicsConfig::new(GameSpec::max(3.0, 2)));
        assert_eq!(result.outcome, Outcome::Converged { rounds: 1 });
        assert_eq!(result.total_moves, 0);
        assert_eq!(result.solver_calls, 12, "round 1 must solve everyone");
    }

    #[test]
    fn unstable_cycle_converges_to_low_diameter() {
        let config = DynamicsConfig::new(GameSpec::max(0.5, 6));
        let result = run(GameState::cycle_successor(12), &config);
        assert!(result.outcome.converged());
        assert!(result.total_moves > 0);
        let d = result.final_metrics.diameter.unwrap();
        assert!(d <= 4, "cheap edges should collapse the cycle, diameter {d}");
        // The reached profile must be an LKE (exact responder).
        assert!(ncg_solver::is_lke(&result.state, &config.spec));
    }

    #[test]
    fn dynamics_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let tree = ncg_graph::generators::random_tree(30, &mut rng);
        let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
        let config = DynamicsConfig::new(GameSpec::max(1.0, 3));
        let a = run(initial.clone(), &config);
        let b = run(initial, &config);
        assert_eq!(a.state, b.state);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.total_moves, b.total_moves);
    }

    #[test]
    fn cache_and_rebuild_paths_agree() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..3 {
            let tree = ncg_graph::generators::random_tree(24, &mut rng);
            let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
            for (alpha, k) in [(0.4, 2u32), (1.0, 3), (4.0, 2)] {
                let cached = DynamicsConfig::new(GameSpec::max(alpha, k));
                let rebuilt = cached.without_view_cache();
                let a = run(initial.clone(), &cached);
                let b = run(initial.clone(), &rebuilt);
                assert_eq!(a.outcome, b.outcome, "α={alpha} k={k}");
                assert_eq!(a.state, b.state, "α={alpha} k={k}");
                assert_eq!(a.total_moves, b.total_moves, "α={alpha} k={k}");
                assert!(
                    a.solver_calls <= b.solver_calls,
                    "the cache may only ever skip work (α={alpha} k={k})"
                );
                assert!(a.cache_stats.is_some() && b.cache_stats.is_none());
            }
        }
    }

    #[test]
    fn clean_players_are_skipped_not_resolved() {
        // Converging run of ≥ 2 rounds: the final quiet round must not
        // call the solver for players untouched since their last solve.
        let config = DynamicsConfig::new(GameSpec::max(0.5, 6));
        let result = run(GameState::cycle_successor(12), &config);
        assert!(result.outcome.converged());
        let rounds = result.outcome.rounds();
        assert!(rounds >= 2, "need a multi-round run to observe skipping");
        let baseline = 12 * rounds;
        assert!(
            result.solver_calls < baseline,
            "cache must skip some of the {baseline} baseline solves, \
             made {}",
            result.solver_calls
        );
        let stats = result.cache_stats.unwrap();
        assert_eq!(stats.rebuilds as usize, result.solver_calls);
        assert_eq!(stats.skips as usize, baseline - result.solver_calls);
    }

    #[test]
    fn converged_states_are_lke_on_random_trees() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..3 {
            let tree = ncg_graph::generators::random_tree(20, &mut rng);
            let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
            for (alpha, k) in [(0.5, 2u32), (2.0, 3), (5.0, 2)] {
                let config = DynamicsConfig::new(GameSpec::max(alpha, k));
                let result = run(initial.clone(), &config);
                if result.outcome.converged() {
                    assert!(
                        ncg_solver::is_lke(&result.state, &config.spec),
                        "converged state must be an LKE (α={alpha}, k={k})"
                    );
                }
            }
        }
    }

    #[test]
    fn per_round_metrics_are_recorded() {
        let config = DynamicsConfig::new(GameSpec::max(0.5, 6)).with_per_round_metrics();
        let result = run(GameState::cycle_successor(12), &config);
        if let Outcome::Converged { rounds } = result.outcome {
            assert_eq!(result.round_metrics.len(), rounds);
            // Last snapshot equals the final metrics.
            assert_eq!(result.round_metrics.last().unwrap(), &result.final_metrics);
        } else {
            panic!("expected convergence");
        }
    }

    #[test]
    fn greedy_mode_still_converges_on_trees() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let tree = ncg_graph::generators::random_tree(25, &mut rng);
        let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
        let config = DynamicsConfig::new(GameSpec::max(1.0, 3)).greedy();
        let result = run(initial, &config);
        assert!(result.outcome.converged() || matches!(result.outcome, Outcome::Cycled { .. }));
    }

    #[test]
    fn sum_dynamics_run_end_to_end() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let tree = ncg_graph::generators::random_tree(12, &mut rng);
        let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
        let config = DynamicsConfig::new(GameSpec::sum(1.5, 2));
        let result = run(initial, &config);
        assert!(result.outcome.converged(), "SumNCG dynamics should settle on a small tree");
    }

    #[test]
    fn sum_warm_started_runs_match_cold_runs_bitwise() {
        // The exact SumNCG branch-and-bound warm-restarts through the
        // arena's responder (distance rows, per-depth pools, node
        // scratch); reusing one arena across (state, α, k) combinations
        // must reproduce every cold run exactly — including
        // full-knowledge views well past the old enumeration cap.
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut arena = CacheArena::new();
        for n in [12usize, 20] {
            let tree = ncg_graph::generators::random_tree(n, &mut rng);
            let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
            for (alpha, k) in [(0.5, 2u32), (1.5, 3), (0.8, 1000)] {
                let config = DynamicsConfig::new(GameSpec::sum(alpha, k));
                let warm = run_with_cache(initial.clone(), &config, &mut arena);
                let cold = run(initial.clone(), &config);
                assert_eq!(warm.outcome, cold.outcome, "n={n} α={alpha} k={k}");
                assert_eq!(warm.state, cold.state, "n={n} α={alpha} k={k}");
                assert_eq!(warm.total_moves, cold.total_moves, "n={n} α={alpha} k={k}");
                assert_eq!(warm.solver_calls, cold.solver_calls, "n={n} α={alpha} k={k}");
            }
        }
    }

    #[test]
    fn run_many_matches_sequential_runs() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let initials: Vec<GameState> = (0..6)
            .map(|_| {
                let t = ncg_graph::generators::random_tree(15, &mut rng);
                GameState::from_graph_random_ownership(&t, &mut rng)
            })
            .collect();
        let config = DynamicsConfig::new(GameSpec::max(1.0, 3));
        let parallel = run_many(initials.clone(), &config);
        for (initial, par) in initials.into_iter().zip(&parallel) {
            let seq = run(initial, &config);
            assert_eq!(seq.state, par.state);
            assert_eq!(seq.outcome, par.outcome);
        }
    }

    #[test]
    fn trace_records_every_accepted_move() {
        let config = DynamicsConfig::new(GameSpec::max(0.5, 6)).with_trace();
        let result = run(GameState::cycle_successor(12), &config);
        let trace = result.trace.expect("trace requested");
        assert_eq!(trace.len(), result.total_moves);
        for e in &trace.events {
            assert!(e.new_cost < e.old_cost, "every move strictly improves");
            assert!(e.view_size >= 2);
            assert_ne!(e.old_strategy, e.new_strategy);
        }
        // Replaying the trace from the initial state reproduces the
        // final profile.
        let mut replay = GameState::cycle_successor(12);
        for e in &trace.events {
            replay.set_strategy(e.player, e.new_strategy.clone());
        }
        assert_eq!(replay, result.state);
        // Traces are off by default.
        let untraced =
            run(GameState::cycle_successor(12), &DynamicsConfig::new(GameSpec::max(0.5, 6)));
        assert!(untraced.trace.is_none());
    }

    #[test]
    fn warm_started_runs_match_cold_runs_bitwise() {
        // One arena reused across many (state, α, k, objective)
        // combinations — the sweep engine's per-rep usage pattern —
        // must reproduce every cold run exactly, including solver-call
        // counts and cache statistics.
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut arena = CacheArena::new();
        for n in [14usize, 22, 18] {
            let tree = ncg_graph::generators::random_tree(n, &mut rng);
            let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
            for (alpha, k) in [(0.3, 2u32), (1.0, 3), (5.0, 2), (0.5, 1000)] {
                let config = DynamicsConfig::new(GameSpec::max(alpha, k));
                let warm = run_with_cache(initial.clone(), &config, &mut arena);
                let cold = run(initial.clone(), &config);
                assert_eq!(warm.outcome, cold.outcome, "n={n} α={alpha} k={k}");
                assert_eq!(warm.state, cold.state, "n={n} α={alpha} k={k}");
                assert_eq!(warm.total_moves, cold.total_moves, "n={n} α={alpha} k={k}");
                assert_eq!(warm.solver_calls, cold.solver_calls, "n={n} α={alpha} k={k}");
                assert_eq!(warm.cache_stats, cold.cache_stats, "n={n} α={alpha} k={k}");
                assert_eq!(warm.final_metrics, cold.final_metrics, "n={n} α={alpha} k={k}");
            }
        }
    }

    #[test]
    fn warm_start_honours_disabled_cache_and_mode() {
        let mut arena = CacheArena::new();
        let initial = GameState::cycle_successor(12);
        let config = DynamicsConfig::new(GameSpec::max(0.5, 6)).without_view_cache();
        let warm = run_with_cache(initial.clone(), &config, &mut arena);
        assert!(warm.cache_stats.is_none());
        assert_eq!(warm.state, run(initial.clone(), &config).state);
        // Same arena, now greedy mode with the cache on.
        let greedy = DynamicsConfig::new(GameSpec::max(1.0, 3)).greedy();
        let warm = run_with_cache(initial.clone(), &greedy, &mut arena);
        let cold = run(initial, &greedy);
        assert_eq!(warm.outcome, cold.outcome);
        assert_eq!(warm.state, cold.state);
    }

    #[test]
    fn rebuilt_arena_matches_cold_runs_after_a_caught_panic() {
        // A panic mid-run (here: a responder that blows up after a few
        // calls) may leave the arena's cache and responder scratch in
        // an inconsistent state. After `rebuild`, warm runs through the
        // same arena must again match cold runs bit for bit.
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let tree = ncg_graph::generators::random_tree(18, &mut rng);
        let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
        let config = DynamicsConfig::new(GameSpec::max(0.5, 3));
        let mut arena = CacheArena::new();
        // Prime the arena, then poison it with a panicking run.
        let _ = run_with_cache(initial.clone(), &config, &mut arena);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut calls = 0usize;
            let mut inner = Responder::new(config.mode);
            let mut bomb = |spec: &GameSpec, view: &PlayerView| {
                calls += 1;
                if calls > 3 {
                    panic!("injected responder fault");
                }
                ncg_core::equilibrium::BestResponder::best_response(&mut inner, spec, view)
            };
            run_with(initial.clone(), &config, &mut bomb)
        }));
        assert!(panicked.is_err(), "the bomb responder must panic");
        arena.rebuild();
        let warm = run_with_cache(initial.clone(), &config, &mut arena);
        let cold = run(initial, &config);
        assert_eq!(warm.outcome, cold.outcome);
        assert_eq!(warm.state, cold.state);
        assert_eq!(warm.solver_calls, cold.solver_calls);
        assert_eq!(warm.cache_stats, cold.cache_stats);
    }

    #[test]
    fn batched_and_scalar_kernels_produce_bitwise_identical_runs() {
        // The pinned-off flag (not the environment, which is read
        // once per process) drives the A/B: full traces, per-round
        // metrics, solver-call counts, and cache statistics must all
        // agree, with the view cache both on and off, on instances
        // large enough to exercise multiple lane groups.
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let mut initials = vec![GameState::cycle_successor(70)];
        for n in [24usize, 66] {
            let tree = ncg_graph::generators::random_tree(n, &mut rng);
            initials.push(GameState::from_graph_random_ownership(&tree, &mut rng));
        }
        for initial in initials {
            for (alpha, k) in [(0.5, 2u32), (1.5, 3)] {
                let base = DynamicsConfig::new(GameSpec::max(alpha, k))
                    .with_per_round_metrics()
                    .with_trace();
                for cached in [true, false] {
                    let base = if cached { base } else { base.without_view_cache() };
                    let batched = run(initial.clone(), &DynamicsConfig { batch_bfs: true, ..base });
                    let scalar = run(initial.clone(), &base.without_batch_bfs());
                    let tag = format!("α={alpha} k={k} cached={cached}");
                    assert_eq!(batched.outcome, scalar.outcome, "{tag}");
                    assert_eq!(batched.state, scalar.state, "{tag}");
                    assert_eq!(batched.total_moves, scalar.total_moves, "{tag}");
                    assert_eq!(batched.solver_calls, scalar.solver_calls, "{tag}");
                    assert_eq!(batched.cache_stats, scalar.cache_stats, "{tag}");
                    assert_eq!(batched.round_metrics, scalar.round_metrics, "{tag}");
                    assert_eq!(batched.final_metrics, scalar.final_metrics, "{tag}");
                    assert_eq!(
                        batched.trace.as_ref().map(|t| &t.events),
                        scalar.trace.as_ref().map(|t| &t.events),
                        "{tag}"
                    );
                }
            }
        }
    }

    #[test]
    fn max_rounds_cap_is_respected() {
        // A cap of 0 rounds leaves the state untouched.
        let config = DynamicsConfig { max_rounds: 0, ..DynamicsConfig::new(GameSpec::max(0.1, 5)) };
        let initial = GameState::cycle_successor(10);
        let result = run(initial.clone(), &config);
        assert_eq!(result.outcome, Outcome::MaxRoundsExceeded { rounds: 0 });
        assert_eq!(result.outcome.rounds(), 0);
        assert_eq!(result.state, initial);
    }
}
