//! The round-robin best-response loop with cycle detection.

use std::collections::HashMap;

use ncg_core::deviation::current_total;
use ncg_core::equilibrium::BestResponder;
use ncg_core::{GameSpec, GameState, PlayerView};
use ncg_solver::{Mode, Responder};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::StateMetrics;

/// Configuration of one dynamics run.
#[derive(Debug, Clone, Copy)]
pub struct DynamicsConfig {
    /// Game parameters (`α`, `k`, objective).
    pub spec: GameSpec,
    /// Best-response effort (exact reproduces the paper; greedy is the
    /// ablation).
    pub mode: Mode,
    /// Safety cap on rounds; the paper's runs converge in ≤ 7 rounds
    /// almost always, so the default of 200 is generous.
    pub max_rounds: usize,
    /// Record a [`StateMetrics`] snapshot after every round (the
    /// paper does; off by default to keep sweeps lean).
    pub per_round_metrics: bool,
    /// Record a move-level [`Trace`](crate::Trace) (off by default).
    pub record_trace: bool,
}

impl DynamicsConfig {
    /// Defaults: exact responses, 200-round cap, no per-round metrics,
    /// no trace.
    pub fn new(spec: GameSpec) -> Self {
        DynamicsConfig {
            spec,
            mode: Mode::Exact,
            max_rounds: 200,
            per_round_metrics: false,
            record_trace: false,
        }
    }

    /// Switches to greedy best responses.
    pub fn greedy(mut self) -> Self {
        self.mode = Mode::Greedy;
        self
    }

    /// Enables per-round metric snapshots.
    pub fn with_per_round_metrics(mut self) -> Self {
        self.per_round_metrics = true;
        self
    }

    /// Enables the move-level event log.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }
}

/// How a dynamics run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// A full round passed with no strategy change: equilibrium.
    Converged {
        /// Rounds executed, *including* the final quiet round.
        rounds: usize,
    },
    /// The end-of-round profile repeated an earlier one: with
    /// round-robin order the dynamics is periodic and will never
    /// reach an equilibrium (the paper observed 5 cycles in ≈36 000
    /// runs).
    Cycled {
        /// Round at which the repeated profile first appeared.
        first_seen: usize,
        /// Round at which the repetition was detected.
        repeated_at: usize,
    },
    /// The safety cap was hit without convergence or a detected cycle.
    MaxRoundsExceeded,
}

impl Outcome {
    /// Whether the run reached an equilibrium.
    pub fn converged(&self) -> bool {
        matches!(self, Outcome::Converged { .. })
    }
}

/// The result of one dynamics run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Terminal condition.
    pub outcome: Outcome,
    /// The final state (the equilibrium when `outcome.converged()`).
    pub state: GameState,
    /// Total accepted strategy changes across all rounds.
    pub total_moves: usize,
    /// Metrics of the final state.
    pub final_metrics: StateMetrics,
    /// Per-round snapshots if requested in the config.
    pub round_metrics: Vec<StateMetrics>,
    /// Move-level event log if requested in the config.
    pub trace: Option<crate::Trace>,
}

/// Runs round-robin best-response dynamics from `initial` until
/// equilibrium, cycle, or the round cap. Deterministic.
pub fn run(initial: GameState, config: &DynamicsConfig) -> RunResult {
    let mut responder = Responder::new(config.mode);
    run_with(initial, config, &mut responder)
}

/// Like [`run`], but with a caller-provided best-response engine —
/// any [`BestResponder`], including closures. The engine must be
/// deterministic for the cycle detection to be sound (a repeated
/// end-of-round profile then proves periodicity).
pub fn run_with<B: BestResponder>(
    initial: GameState,
    config: &DynamicsConfig,
    responder: &mut B,
) -> RunResult {
    let mut state = initial;
    let spec = config.spec;
    let n = state.n();
    let mut seen: HashMap<Vec<Vec<u32>>, usize> = HashMap::new();
    let mut total_moves = 0usize;
    let mut round_metrics = Vec::new();
    let mut trace = if config.record_trace { Some(crate::Trace::new()) } else { None };
    let profile_of = |state: &GameState| -> Vec<Vec<u32>> {
        (0..n as u32).map(|u| state.strategy(u).to_vec()).collect()
    };
    seen.insert(profile_of(&state), 0);
    let mut outcome = Outcome::MaxRoundsExceeded;
    for round in 1..=config.max_rounds {
        let mut moves_this_round = 0usize;
        for u in 0..n as u32 {
            let view = PlayerView::build(&state, u, spec.k);
            let current = current_total(&spec, &view);
            let best = responder.best_response(&spec, &view);
            if GameSpec::strictly_better(best.total_cost, current) {
                let global = view.strategy_to_global(&best.strategy_local);
                if let Some(trace) = trace.as_mut() {
                    trace.events.push(crate::MoveEvent {
                        round,
                        player: u,
                        old_strategy: state.strategy(u).to_vec(),
                        new_strategy: global.clone(),
                        old_cost: current,
                        new_cost: best.total_cost,
                        view_size: view.len(),
                    });
                }
                state.set_strategy(u, global);
                moves_this_round += 1;
            }
        }
        total_moves += moves_this_round;
        if config.per_round_metrics {
            round_metrics.push(StateMetrics::measure(&state, &spec));
        }
        if moves_this_round == 0 {
            outcome = Outcome::Converged { rounds: round };
            break;
        }
        // Round-robin + deterministic responses ⇒ a repeated
        // end-of-round profile proves a best-response cycle.
        let profile = profile_of(&state);
        if let Some(&first_seen) = seen.get(&profile) {
            outcome = Outcome::Cycled { first_seen, repeated_at: round };
            break;
        }
        seen.insert(profile, round);
    }
    let final_metrics = StateMetrics::measure(&state, &spec);
    RunResult { outcome, state, total_moves, final_metrics, round_metrics, trace }
}

/// Runs many independent dynamics in parallel (rayon); results are in
/// input order regardless of scheduling.
pub fn run_many(initials: Vec<GameState>, config: &DynamicsConfig) -> Vec<RunResult> {
    initials.into_par_iter().map(|initial| run(initial, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_core::Objective;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn stable_cycle_converges_immediately() {
        // Lemma 3.1 equilibrium: one quiet round, zero moves.
        let result =
            run(GameState::cycle_successor(12), &DynamicsConfig::new(GameSpec::max(3.0, 2)));
        assert_eq!(result.outcome, Outcome::Converged { rounds: 1 });
        assert_eq!(result.total_moves, 0);
    }

    #[test]
    fn unstable_cycle_converges_to_low_diameter() {
        let config = DynamicsConfig::new(GameSpec::max(0.5, 6));
        let result = run(GameState::cycle_successor(12), &config);
        assert!(result.outcome.converged());
        assert!(result.total_moves > 0);
        let d = result.final_metrics.diameter.unwrap();
        assert!(d <= 4, "cheap edges should collapse the cycle, diameter {d}");
        // The reached profile must be an LKE (exact responder).
        assert!(ncg_solver::is_lke(&result.state, &config.spec));
    }

    #[test]
    fn dynamics_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let tree = ncg_graph::generators::random_tree(30, &mut rng);
        let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
        let config = DynamicsConfig::new(GameSpec::max(1.0, 3));
        let a = run(initial.clone(), &config);
        let b = run(initial, &config);
        assert_eq!(a.state, b.state);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.total_moves, b.total_moves);
    }

    #[test]
    fn converged_states_are_lke_on_random_trees() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..3 {
            let tree = ncg_graph::generators::random_tree(20, &mut rng);
            let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
            for (alpha, k) in [(0.5, 2u32), (2.0, 3), (5.0, 2)] {
                let config = DynamicsConfig::new(GameSpec::max(alpha, k));
                let result = run(initial.clone(), &config);
                if result.outcome.converged() {
                    assert!(
                        ncg_solver::is_lke(&result.state, &config.spec),
                        "converged state must be an LKE (α={alpha}, k={k})"
                    );
                }
            }
        }
    }

    #[test]
    fn per_round_metrics_are_recorded() {
        let config = DynamicsConfig::new(GameSpec::max(0.5, 6)).with_per_round_metrics();
        let result = run(GameState::cycle_successor(12), &config);
        if let Outcome::Converged { rounds } = result.outcome {
            assert_eq!(result.round_metrics.len(), rounds);
            // Last snapshot equals the final metrics.
            assert_eq!(result.round_metrics.last().unwrap(), &result.final_metrics);
        } else {
            panic!("expected convergence");
        }
    }

    #[test]
    fn greedy_mode_still_converges_on_trees() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let tree = ncg_graph::generators::random_tree(25, &mut rng);
        let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
        let config = DynamicsConfig::new(GameSpec::max(1.0, 3)).greedy();
        let result = run(initial, &config);
        assert!(result.outcome.converged() || matches!(result.outcome, Outcome::Cycled { .. }));
    }

    #[test]
    fn sum_dynamics_run_end_to_end() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let tree = ncg_graph::generators::random_tree(12, &mut rng);
        let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
        let config = DynamicsConfig::new(GameSpec { alpha: 1.5, k: 2, objective: Objective::Sum });
        let result = run(initial, &config);
        assert!(result.outcome.converged(), "SumNCG dynamics should settle on a small tree");
    }

    #[test]
    fn run_many_matches_sequential_runs() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let initials: Vec<GameState> = (0..6)
            .map(|_| {
                let t = ncg_graph::generators::random_tree(15, &mut rng);
                GameState::from_graph_random_ownership(&t, &mut rng)
            })
            .collect();
        let config = DynamicsConfig::new(GameSpec::max(1.0, 3));
        let parallel = run_many(initials.clone(), &config);
        for (initial, par) in initials.into_iter().zip(&parallel) {
            let seq = run(initial, &config);
            assert_eq!(seq.state, par.state);
            assert_eq!(seq.outcome, par.outcome);
        }
    }

    #[test]
    fn trace_records_every_accepted_move() {
        let config = DynamicsConfig::new(GameSpec::max(0.5, 6)).with_trace();
        let result = run(GameState::cycle_successor(12), &config);
        let trace = result.trace.expect("trace requested");
        assert_eq!(trace.len(), result.total_moves);
        for e in &trace.events {
            assert!(e.new_cost < e.old_cost, "every move strictly improves");
            assert!(e.view_size >= 2);
            assert_ne!(e.old_strategy, e.new_strategy);
        }
        // Replaying the trace from the initial state reproduces the
        // final profile.
        let mut replay = GameState::cycle_successor(12);
        for e in &trace.events {
            replay.set_strategy(e.player, e.new_strategy.clone());
        }
        assert_eq!(replay, result.state);
        // Traces are off by default.
        let untraced =
            run(GameState::cycle_successor(12), &DynamicsConfig::new(GameSpec::max(0.5, 6)));
        assert!(untraced.trace.is_none());
    }

    #[test]
    fn max_rounds_cap_is_respected() {
        // A cap of 0 rounds leaves the state untouched.
        let config = DynamicsConfig { max_rounds: 0, ..DynamicsConfig::new(GameSpec::max(0.1, 5)) };
        let initial = GameState::cycle_successor(10);
        let result = run(initial.clone(), &config);
        assert_eq!(result.outcome, Outcome::MaxRoundsExceeded);
        assert_eq!(result.state, initial);
    }
}
