//! Cycle detection: with round-robin scheduling and a deterministic
//! responder, a repeated end-of-round profile proves the dynamics is
//! periodic. The paper observed 5 genuine best-response cycles in
//! ≈36 000 runs; synthesising one with the real solver is not
//! reliable, so these tests drive [`run_with`] with crafted responders
//! whose induced dynamics provably cycles, and check the detector
//! fires with the right bookkeeping.

use ncg_core::deviation::current_total;
use ncg_core::equilibrium::Deviation;
use ncg_core::{GameSpec, GameState, PlayerView};
use ncg_dynamics::{run_with, DynamicsConfig, Outcome};
use ncg_graph::NodeId;

/// A responder that makes player 0 perpetually toggle her single
/// purchase between nodes 1 and 2 of a triangle-ish gadget, claiming
/// a (fictitious) improvement each time. Deterministic, never
/// converging: the profile sequence has period 2.
struct TogglingResponder;

impl ncg_core::equilibrium::BestResponder for TogglingResponder {
    fn best_response(&mut self, spec: &GameSpec, view: &PlayerView) -> Deviation {
        if view.center_global != 0 {
            // Everyone else stands pat (report the current strategy at
            // its true cost — never strictly better, so no move).
            return Deviation {
                strategy_local: view.purchases.clone(),
                total_cost: current_total(spec, view),
            };
        }
        // Player 0 proposes "the other" target with a fake bargain
        // cost, forcing an accepted move every round.
        let current_global: Vec<NodeId> =
            view.purchases.iter().map(|&l| view.sub.to_global(l)).collect();
        let next_global: NodeId = if current_global.contains(&1) { 2 } else { 1 };
        let next_local = view.sub.to_local(next_global).expect("triangle is fully visible");
        Deviation { strategy_local: vec![next_local], total_cost: f64::NEG_INFINITY }
    }
}

fn triangle() -> GameState {
    // 0 buys 1; 1 buys 2; 2 buys 0 — a 3-cycle where every node stays
    // connected no matter which single edge player 0 owns.
    GameState::from_strategies(3, vec![vec![1], vec![2], vec![0]])
}

#[test]
fn toggling_responder_is_caught_as_a_cycle() {
    let config = DynamicsConfig::new(GameSpec::max(1.0, 5));
    let result = run_with(triangle(), &config, &mut TogglingResponder);
    match result.outcome {
        Outcome::Cycled { first_seen, repeated_at } => {
            assert!(first_seen < repeated_at);
            // Period 2: the profile after round r+2 equals after r.
            assert_eq!(repeated_at - first_seen, 2, "toggle has period 2");
        }
        other => panic!("expected a detected cycle, got {other:?}"),
    }
    assert!(result.total_moves >= 2);
}

#[test]
fn cycle_detection_never_fires_for_a_silent_responder() {
    // A responder that always reports the current strategy converges
    // in exactly one (quiet) round.
    let mut silent = |spec: &GameSpec, view: &PlayerView| Deviation {
        strategy_local: view.purchases.clone(),
        total_cost: current_total(spec, view),
    };
    let config = DynamicsConfig::new(GameSpec::max(1.0, 2));
    let result = run_with(triangle(), &config, &mut silent);
    assert_eq!(result.outcome, Outcome::Converged { rounds: 1 });
    assert_eq!(result.total_moves, 0);
}

#[test]
fn round_cap_reports_max_rounds_for_nonrepeating_dynamics() {
    // A responder that keeps *adding* a new edge each round (player 0
    // buys 1, then {1,2}, then {1,2,3}, …) never repeats a profile;
    // with a tiny cap the runner must report MaxRoundsExceeded.
    struct Grower;
    impl ncg_core::equilibrium::BestResponder for Grower {
        fn best_response(&mut self, spec: &GameSpec, view: &PlayerView) -> Deviation {
            if view.center_global != 0 {
                return Deviation {
                    strategy_local: view.purchases.clone(),
                    total_cost: current_total(spec, view),
                };
            }
            let mut strategy = view.purchases.clone();
            if let Some(next) =
                view.candidates().into_iter().find(|c| strategy.binary_search(c).is_err())
            {
                let pos = strategy.binary_search(&next).unwrap_err();
                strategy.insert(pos, next);
            }
            Deviation { strategy_local: strategy, total_cost: f64::NEG_INFINITY }
        }
    }
    // A star around player 0 so every node is visible: 6 players.
    let state =
        GameState::from_strategies(6, vec![vec![1], vec![2], vec![3], vec![4], vec![5], vec![0]]);
    let config = DynamicsConfig { max_rounds: 3, ..DynamicsConfig::new(GameSpec::max(1.0, 10)) };
    let result = run_with(state, &config, &mut Grower);
    assert_eq!(result.outcome, Outcome::MaxRoundsExceeded { rounds: 3 });
    assert_eq!(result.total_moves, 3, "one accepted move per round");
}
