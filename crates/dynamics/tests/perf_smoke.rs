//! Tier-1-safe performance smoke test for the incremental dynamics
//! engine (the `dynamics_rounds` bench's fast guard; see DESIGN.md
//! §6).
//!
//! Two guards, both robust to CI noise and debug builds:
//!
//! * a *structural* one — on a multi-round converging run the view
//!   cache must actually skip solver calls (this is what makes late
//!   rounds and the final quiet round `O(moved balls)` instead of
//!   `O(n·m)`), and the final round must be solver-free except for the
//!   players dirtied by the previous round's moves;
//! * a *wall-clock* one with an orders-of-magnitude margin — the whole
//!   mid-size run must finish far inside a generous cap even in debug,
//!   which a regression to per-round `O(n·m)` rebuilding plus re-solve
//!   of all `n` players would threaten and a real speed-class
//!   regression (seed-style per-candidate clones, cache never marking
//!   anyone clean) would trip.

use ncg_core::{GameSpec, GameState};
use ncg_dynamics::{run, DynamicsConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

#[test]
fn incremental_dynamics_mid_size_run_is_fast_and_skips() {
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let tree = ncg_graph::generators::random_tree(96, &mut rng);
    let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
    let config = DynamicsConfig::new(GameSpec::max(0.8, 2));
    let start = Instant::now();
    let result = run(initial, &config);
    let elapsed = start.elapsed();
    assert!(result.outcome.converged(), "smoke instance must converge, got {:?}", result.outcome);
    let rounds = result.outcome.rounds();
    assert!(rounds >= 2, "need a multi-round run to exercise the cache (got {rounds})");
    let baseline_calls = 96 * rounds;
    let stats = result.cache_stats.expect("cache on by default");
    assert!(
        result.solver_calls < baseline_calls,
        "view cache skipped nothing: {} solver calls out of a {} baseline — \
         dirty-ball tracking regression?",
        result.solver_calls,
        baseline_calls
    );
    assert_eq!(stats.skips as usize, baseline_calls - result.solver_calls);
    assert!(
        elapsed < Duration::from_secs(60),
        "mid-size incremental dynamics took {elapsed:?} — speed-class regression? \
         (expected well under a second in release, a few seconds in debug)"
    );
}
