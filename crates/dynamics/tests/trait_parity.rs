//! Bit-identity of the trait-dispatched front against the pre-refactor
//! engine dispatch, through full dynamics runs.
//!
//! The model-zoo refactor replaced the hard-wired `match objective`
//! dispatch (Max → `max_br`, Sum → `sum_br`) with
//! `front::best_response_with`, which routes by move rule and edge-cost
//! model first. On the two canonical scenarios (uniform pricing, subset
//! moves) the front must be an identity transformation: every accepted
//! move, every trace event, every final strategy and every cost must
//! come out bit-for-bit the same as a responder that inlines the old
//! dispatch — with the view cache on and off, and under rayon pools of
//! 1, 2 and 4 threads (the parallel branch-and-bound fan-out is policy-
//! driven, so the pool size must be unobservable in the results).

use ncg_core::equilibrium::Deviation;
use ncg_core::{GameSpec, GameState, PlayerView};
use ncg_dynamics::{run_with, DynamicsConfig, Outcome};
use ncg_solver::{max_br, sum_br, Mode, Responder, SolverScratch};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The pre-refactor dispatch, inlined: straight to the per-objective
/// engine, no front, no scenario routing. What `Responder` did before
/// the model-zoo layer existed.
struct LegacyResponder {
    mode: Mode,
    scratch: SolverScratch,
}

impl ncg_core::equilibrium::BestResponder for LegacyResponder {
    fn best_response(&mut self, spec: &GameSpec, view: &PlayerView) -> Deviation {
        match spec.objective {
            ncg_core::Objective::Max => {
                max_br::max_best_response_with(spec, view, self.mode, &mut self.scratch)
            }
            ncg_core::Objective::Sum => {
                sum_br::sum_best_response_with(spec, view, self.mode, &mut self.scratch)
            }
        }
    }
}

fn assert_runs_identical(state: &GameState, spec: GameSpec, use_cache: bool) {
    let mut config = DynamicsConfig::new(spec).with_trace();
    if !use_cache {
        config = config.without_view_cache();
    }
    let via_front = run_with(state.clone(), &config, &mut Responder::exact());
    let legacy = run_with(
        state.clone(),
        &config,
        &mut LegacyResponder { mode: Mode::Exact, scratch: SolverScratch::new() },
    );
    assert_eq!(via_front.outcome, legacy.outcome);
    assert_eq!(via_front.total_moves, legacy.total_moves);
    for u in 0..state.n() as u32 {
        assert_eq!(via_front.state.strategy(u), legacy.state.strategy(u), "player {u}");
    }
    let (a, b) = (via_front.trace.unwrap(), legacy.trace.unwrap());
    assert_eq!(a.len(), b.len());
    for (ea, eb) in a.events.iter().zip(b.events.iter()) {
        assert_eq!(ea.player, eb.player);
        assert_eq!(ea.new_strategy, eb.new_strategy);
        assert_eq!(ea.new_cost.to_bits(), eb.new_cost.to_bits(), "player {}", ea.player);
        assert_eq!(ea.old_cost.to_bits(), eb.old_cost.to_bits(), "player {}", ea.player);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full dynamics through the front == full dynamics through the
    /// old dispatch, for both objectives, cache on and off.
    #[test]
    fn front_dynamics_bit_identical_to_legacy_dispatch(
        seed in 0u64..500,
        n in 8usize..18,
        alpha_i in 0usize..3,
        k in 2u32..=3,
        max_obj in any::<bool>(),
        use_cache in any::<bool>(),
    ) {
        let alpha = [0.4f64, 1.2, 2.5][alpha_i];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = ncg_graph::generators::gnp_connected(n, 0.25, 100, &mut rng).unwrap();
        let state = GameState::from_graph_random_ownership(&g, &mut rng);
        let spec = if max_obj { GameSpec::max(alpha, k) } else { GameSpec::sum(alpha, k) };
        assert_runs_identical(&state, spec, use_cache);
    }
}

/// Thread-count invariance of the trait-dispatched path: the same run
/// executed inside rayon pools of 1, 2 and 4 threads must produce
/// identical outcomes, final strategies and traces (the adaptive
/// `ParallelPolicy` may fan out differently, but the canonical-rule
/// engines make the results bit-identical regardless).
#[test]
fn front_dynamics_invariant_under_pool_size() {
    let mut rng = ChaCha8Rng::seed_from_u64(909);
    let g = ncg_graph::generators::gnp_connected(26, 0.12, 100, &mut rng).unwrap();
    let state = GameState::from_graph_random_ownership(&g, &mut rng);
    for spec in [GameSpec::max(0.8, 3), GameSpec::sum(1.5, 2)] {
        let config = DynamicsConfig::new(spec).with_trace();
        let runs: Vec<_> = [1usize, 2, 4]
            .into_iter()
            .map(|threads| {
                let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
                pool.install(|| run_with(state.clone(), &config, &mut Responder::exact()))
            })
            .collect();
        let reference = &runs[0];
        for (i, r) in runs.iter().enumerate().skip(1) {
            assert_eq!(r.outcome, reference.outcome, "pool {i}");
            assert_eq!(r.total_moves, reference.total_moves, "pool {i}");
            for u in 0..state.n() as u32 {
                assert_eq!(r.state.strategy(u), reference.state.strategy(u));
            }
            let (a, b) = (r.trace.as_ref().unwrap(), reference.trace.as_ref().unwrap());
            assert_eq!(a, b, "traces must be bit-identical across pool sizes");
        }
    }
}

/// The two new scenarios run end-to-end through the same loop: swap
/// dynamics preserve every player's purchase count by construction,
/// and non-uniform dynamics converge deterministically.
#[test]
fn new_scenarios_run_through_the_same_loop() {
    use ncg_core::{Objective, Scenario};
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let g = ncg_graph::generators::gnp_connected(14, 0.2, 100, &mut rng).unwrap();
    let state = GameState::from_graph_random_ownership(&g, &mut rng);
    let counts: Vec<usize> = (0..state.n() as u32).map(|u| state.strategy(u).len()).collect();

    let swap = DynamicsConfig::new(Scenario::swap(Objective::Max).spec(0.5, 3));
    let r = run_with(state.clone(), &swap, &mut Responder::exact());
    assert!(matches!(r.outcome, Outcome::Converged { .. } | Outcome::Cycled { .. }));
    for u in 0..state.n() as u32 {
        assert_eq!(
            r.state.strategy(u).len(),
            counts[u as usize],
            "swap moves must preserve player {u}'s purchase count"
        );
    }

    let nonuni = DynamicsConfig::new(Scenario::non_uniform(Objective::Max, 0xC0FFEE).spec(0.8, 2));
    let a = run_with(state.clone(), &nonuni, &mut Responder::exact());
    let b = run_with(state.clone(), &nonuni, &mut Responder::exact());
    assert_eq!(a.outcome, b.outcome, "non-uniform dynamics must be deterministic");
    for u in 0..state.n() as u32 {
        assert_eq!(a.state.strategy(u), b.state.strategy(u));
    }
}
