//! Property tests for the incremental view cache.
//!
//! Two families of properties back the tentpole claim that the
//! incremental engine is observationally identical to per-round
//! rebuilding:
//!
//! 1. **View parity** — after an arbitrary move sequence routed
//!    through [`ViewCache::apply_move`], every *clean* player's cached
//!    view is field-for-field identical to a fresh
//!    [`PlayerView::build`], and every refreshed dirty view is too
//!    (exercising the allocation-reusing `rebuild` path).
//! 2. **Dynamics parity** — full runs with the cache on and off agree
//!    bit-for-bit on outcome, final state, move count, and trace.
//!
//! Plus the skip proof: an instrumented responder shows untouched
//! players are never re-solved.

use ncg_core::equilibrium::BestResponder;
use ncg_core::{GameSpec, GameState, PlayerView};
use ncg_dynamics::{run, run_with, DynamicsConfig, Outcome, ViewCache};
use ncg_graph::NodeId;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random strategy profile on `n` players: each ownership pair
/// `(u, v)` means `u` buys an edge to `v`.
fn state_from_pairs(n: usize, pairs: &[(NodeId, NodeId)]) -> GameState {
    let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &(u, v) in pairs {
        if u != v {
            strategies[u as usize].push(v);
        }
    }
    GameState::from_strategies(n, strategies)
}

/// `(n, ownership pairs, k, move sequence)`.
type Scenario = (usize, Vec<(NodeId, NodeId)>, u32, Vec<(NodeId, Vec<NodeId>)>);

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (4..=14usize).prop_flat_map(|n| {
        let node = 0..n as NodeId;
        let pairs = proptest::collection::vec((node.clone(), node.clone()), 0..=2 * n);
        let moves = proptest::collection::vec(
            (node.clone(), proptest::collection::vec(node, 0..=4)),
            1..=12,
        );
        (Just(n), pairs, 1..=3u32, moves)
    })
}

proptest! {
    // Capped so a full `cargo test -q` stays fast and deterministic;
    // override with PROPTEST_CASES (and PROPTEST_SEED) for deeper runs.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 1: cached-and-patched views are identical to
    /// from-scratch builds after arbitrary move sequences — clean
    /// players *before* any refresh (the invalidation never misses a
    /// changed ball), dirty players after their in-place rebuild.
    #[test]
    fn cached_views_match_scratch_builds((n, pairs, k, moves) in arb_scenario()) {
        let mut state = state_from_pairs(n, &pairs);
        let mut cache = ViewCache::new(n, k);
        for u in 0..n as NodeId {
            cache.refresh(&state, u);
        }
        for (mover, strategy) in moves {
            let strategy: Vec<NodeId> =
                strategy.into_iter().filter(|&v| v != mover).collect();
            cache.apply_move(&mut state, mover, strategy);
            // Clean views must already be current — this is the
            // invalidation-soundness half of the tentpole.
            for u in 0..n as NodeId {
                if cache.is_clean(u) {
                    prop_assert_eq!(
                        cache.view(u).expect("refreshed at start"),
                        &PlayerView::build(&state, u, k),
                        "clean player {} holds a stale view", u
                    );
                }
            }
            // Refreshing the dirty players exercises the in-place
            // rebuild path; results must equal scratch builds too.
            for u in 0..n as NodeId {
                if !cache.is_clean(u) {
                    prop_assert_eq!(
                        cache.refresh(&state, u),
                        &PlayerView::build(&state, u, k),
                        "rebuilt view of {} diverges", u
                    );
                }
            }
        }
    }

    /// Property 2 (acceptance criterion): dynamics outcomes are
    /// bit-identical with the cache on and off, real solver, both
    /// workload classes the paper sweeps.
    #[test]
    fn dynamics_parity_cache_on_vs_off(
        n in 6..=18usize,
        seed in any::<u64>(),
        alpha_i in 0..3usize,
        k in 2..=3u32,
        er in any::<bool>(),
    ) {
        let alpha = [0.3, 1.0, 2.5][alpha_i];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = if er {
            ncg_graph::generators::gnp_connected(n, 0.3, 200, &mut rng)
                .unwrap_or_else(|_| ncg_graph::generators::random_tree(n, &mut rng))
        } else {
            ncg_graph::generators::random_tree(n, &mut rng)
        };
        let initial = GameState::from_graph_random_ownership(&graph, &mut rng);
        let cached_cfg = DynamicsConfig::new(GameSpec::max(alpha, k)).with_trace();
        let rebuild_cfg = cached_cfg.without_view_cache();
        let a = run(initial.clone(), &cached_cfg);
        let b = run(initial, &rebuild_cfg);
        prop_assert_eq!(a.outcome, b.outcome);
        prop_assert_eq!(a.total_moves, b.total_moves);
        prop_assert_eq!(a.state, b.state);
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        prop_assert_eq!(ta.events.len(), tb.events.len());
        for (ea, eb) in ta.events.iter().zip(&tb.events) {
            prop_assert_eq!(ea.round, eb.round);
            prop_assert_eq!(ea.player, eb.player);
            prop_assert_eq!(&ea.new_strategy, &eb.new_strategy);
        }
        prop_assert!(a.solver_calls <= b.solver_calls);
    }
}

/// A responder that forces player 0 to toggle her purchase between
/// global nodes 1 and 2 forever; everyone else stands pat. On a long
/// path with `k = 2`, only players within the invalidation radius of
/// `{0, 1, 2}` may ever be re-solved.
struct TogglingZero;

impl ncg_core::equilibrium::BestResponder for TogglingZero {
    fn best_response(
        &mut self,
        spec: &GameSpec,
        view: &PlayerView,
    ) -> ncg_core::equilibrium::Deviation {
        if view.center_global != 0 {
            return ncg_core::equilibrium::Deviation {
                strategy_local: view.purchases.clone(),
                total_cost: ncg_core::deviation::current_total(spec, view),
            };
        }
        let currently_buys_1 = view.purchases.iter().any(|&l| view.sub.to_global(l) == 1);
        let target: NodeId = if currently_buys_1 { 2 } else { 1 };
        let local = view.sub.to_local(target).expect("targets 1 and 2 stay visible at k=2");
        ncg_core::equilibrium::Deviation {
            strategy_local: vec![local],
            total_cost: f64::NEG_INFINITY,
        }
    }
}

/// The skip proof (move-count instrumentation): players outside every
/// touched ball are solved exactly once, in round 1, and never again.
#[test]
fn untouched_players_are_provably_skipped() {
    // Path 0-1-…-11; only player 0 ever moves, toggling between
    // targets 1 and 2. Touched endpoints per round: {0, 1, 2}.
    let n = 12;
    let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (i, sigma) in strategies.iter_mut().enumerate().take(n - 1) {
        sigma.push((i + 1) as NodeId);
    }
    let state = GameState::from_strategies(n, strategies);
    let k = 2;
    let mut calls = vec![0usize; n];
    let mut counting = |spec: &GameSpec, view: &PlayerView| {
        calls[view.center_global as usize] += 1;
        TogglingZero.best_response(spec, view)
    };
    let config = DynamicsConfig::new(GameSpec::max(1.0, k));
    let result = run_with(state, &config, &mut counting);
    // The toggle has period 2: the end-of-round-2 profile equals the
    // initial one and the (fingerprint) detector must say so.
    assert_eq!(result.outcome, Outcome::Cycled { first_seen: 0, repeated_at: 2 });
    assert_eq!(result.total_moves, 2, "player 0 moves once per executed round");
    // Round 1 solves everyone. The move touches endpoints {0, 1, 2},
    // so round 2 re-solves exactly the players within distance k = 2
    // of those (in the graph before or after the toggle): 0..=4.
    // Everyone further out is solved exactly once, then skipped.
    for (u, &count) in calls.iter().enumerate() {
        if u <= 4 {
            assert_eq!(count, 2, "player {u} is inside the dirty ball");
        } else {
            assert_eq!(count, 1, "player {u} must be solved once and then skipped");
        }
    }
    let solved: usize = calls.iter().sum();
    let stats = result.cache_stats.expect("cache on by default");
    assert_eq!(stats.rebuilds as usize, solved);
    assert_eq!(stats.skips as usize, n * 2 - solved);
}

/// Belt-and-braces determinism: the cached run equals itself across
/// repetitions (guards against accidental nondeterminism in the
/// dirty-ball bookkeeping).
#[test]
fn cached_runs_are_reproducible() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let tree = ncg_graph::generators::random_tree(40, &mut rng);
    let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
    let config = DynamicsConfig::new(GameSpec::max(0.8, 2));
    let a = run(initial.clone(), &config);
    let b = run(initial, &config);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.state, b.state);
    assert_eq!(a.solver_calls, b.solver_calls);
    assert_eq!(a.cache_stats, b.cache_stats);
}
