//! Property tests for the scale tier: the CSR-native greedy responder
//! prices exactly (bit-for-bit against the exact tier's view
//! evaluator), never worsens a player, never beats the exact best
//! response, and the simultaneous round loop agrees with the
//! sequential reference whenever rounds are conflict-free — plus
//! bit-identical artifacts across worker-pool sizes.

use ncg_core::deviation::{current_total, evaluate_total, EvalScratch};
use ncg_core::{GameSpec, GameState, PlayerView, ViewScratch};
use ncg_dynamics::scale::{
    collect_ball, respond, run_scale, RoundMode, ScaleArena, ScaleConfig, ScaleResponderConfig,
    ScaleScratch, ScaleState,
};
use ncg_graph::bfs::DistanceBuffer;
use ncg_graph::{generators, NodeId};
use ncg_solver::front::best_response_with;
use ncg_solver::{Mode, SolverScratch};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A small random connected-ish instance: a random tree (seeded) with
/// coin-toss ownership — the same family the paper sweeps.
fn tree_state(n: usize, seed: u64) -> GameState {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tree = generators::random_tree(n, &mut rng);
    GameState::from_graph_random_ownership(&tree, &mut rng)
}

/// A responder configuration wide enough that truncation never hides
/// candidates on these test sizes.
fn exhaustive_cfg() -> ScaleResponderConfig {
    ScaleResponderConfig { max_add_candidates: 64, exhaustive_ball: 1024, max_steps: 64 }
}

/// Runs the scale responder for every player of `gs` and cross-checks
/// each claimed cost bit-for-bit against the exact tier's view
/// evaluator; returns `(player, achieved cost, exact best cost)` per
/// player.
fn check_all_players(gs: &GameState, spec: &GameSpec) -> Vec<(NodeId, f64, f64)> {
    let ss = ScaleState::from_game_state(gs);
    let mut scratch = ScaleScratch::new();
    let mut buf = DistanceBuffer::new();
    let mut ball = Vec::new();
    let mut solver = SolverScratch::new();
    let mut out = Vec::new();
    for u in 0..gs.n() as NodeId {
        collect_ball(ss.graph(), u, spec.k, &mut buf, &mut ball);
        let mv = respond(&ss, spec, &exhaustive_cfg(), u, &ball, &mut scratch);
        let view = PlayerView::build_with(gs, u, spec.k, &mut ViewScratch::new());
        let current = current_total(spec, &view);
        let achieved = match &mv {
            Some(mv) => {
                assert_eq!(
                    mv.old_cost.to_bits(),
                    current.to_bits(),
                    "player {u}: responder's baseline disagrees with the view evaluator"
                );
                let local: Vec<NodeId> = mv
                    .strategy
                    .iter()
                    .map(|&g| view.sub.to_local(g).expect("move target must lie in the ball"))
                    .collect();
                let exact_price = evaluate_total(spec, &view, &local, &mut EvalScratch::new());
                assert_eq!(
                    mv.new_cost.to_bits(),
                    exact_price.to_bits(),
                    "player {u}: claimed cost disagrees with the view evaluator"
                );
                assert!(
                    GameSpec::strictly_better(mv.new_cost, mv.old_cost),
                    "player {u}: returned move must be strictly improving"
                );
                mv.new_cost
            }
            None => current,
        };
        let exact = best_response_with(spec, &view, Mode::Exact, &mut solver);
        assert!(
            !GameSpec::strictly_better(achieved, exact.total_cost),
            "player {u}: greedy ({achieved}) cannot beat the exact optimum ({})",
            exact.total_cost
        );
        // When nothing improves on the current strategy, the greedy
        // responder must stand pat — it only ever returns exactly
        // priced strictly improving moves.
        if !GameSpec::strictly_better(exact.total_cost, current) {
            assert!(mv.is_none(), "player {u}: no improvement exists, yet the responder moved");
        }
        out.push((u, achieved, exact.total_cost));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) + (b) + (c): exact pricing, no worsening, agreement with
    /// `best_response_with` whenever the greedy move is exact-optimal
    /// (and mandatory stand-pat when no improvement exists).
    #[test]
    fn responder_is_exactly_priced_and_bounded_by_the_exact_solver(
        seed in 0u64..1_000_000,
        n in 4usize..18,
        ai in 0usize..4,
        k in 2u32..4,
        sum in any::<bool>(),
    ) {
        let alpha = [0.3, 0.8, 1.5, 5.0][ai];
        let gs = tree_state(n, seed);
        let spec = if sum { GameSpec::sum(alpha, k) } else { GameSpec::max(alpha, k) };
        check_all_players(&gs, &spec);
    }

    /// (d) Sequential-vs-simultaneous parity on conflict-free rounds:
    /// when every simultaneous round carries at most one proposal,
    /// the two disciplines provably apply the same move sequence, so
    /// outcome, move count, and final state must be bit-identical.
    #[test]
    fn single_proposal_rounds_make_the_modes_agree(
        seed in 0u64..1_000_000,
        n in 4usize..16,
        ai in 0usize..3,
        k in 2u32..4,
    ) {
        let alpha = [0.4, 1.2, 4.0][ai];
        let gs = tree_state(n, seed);
        let spec = GameSpec::max(alpha, k);
        let initial = ScaleState::from_game_state(&gs);
        let mut config = ScaleConfig::new(spec);
        config.max_rounds = 64;
        let mut sim_state = initial.clone();
        let sim = run_scale(&mut sim_state, &config, &mut ScaleArena::new());
        if sim.rounds.iter().all(|r| r.proposals <= 1) {
            config.mode = RoundMode::Sequential;
            let mut seq_state = initial;
            let seq = run_scale(&mut seq_state, &config, &mut ScaleArena::new());
            prop_assert_eq!(sim_state, seq_state, "final states diverge");
            prop_assert_eq!(sim.total_moves, seq.total_moves);
            // Round partitions legitimately differ (a sequential round
            // applies every improving move in one pass), so only the
            // convergence verdict must agree, not the round count.
            prop_assert_eq!(
                std::mem::discriminant(&sim.outcome),
                std::mem::discriminant(&seq.outcome)
            );
        }
    }
}

/// The parity property above is conditional; this fixed seed scan
/// keeps it honest: at `n = 9, α = 2.5, k = 3` roughly a third of
/// random trees produce a run with at least one move and never more
/// than one proposal per round, so the conflict-free branch is
/// exercised on every `cargo test`, not just when the fuzzer gets
/// lucky.
#[test]
fn parity_condition_is_reachable_on_a_known_instance() {
    let mut hit = false;
    for seed in 0..64u64 {
        let gs = tree_state(9, seed);
        let spec = GameSpec::max(2.5, 3);
        let initial = ScaleState::from_game_state(&gs);
        let mut config = ScaleConfig::new(spec);
        config.max_rounds = 64;
        let mut sim_state = initial.clone();
        let sim = run_scale(&mut sim_state, &config, &mut ScaleArena::new());
        if sim.rounds.iter().all(|r| r.proposals <= 1) && sim.total_moves > 0 {
            hit = true;
            config.mode = RoundMode::Sequential;
            let mut seq_state = initial;
            let seq = run_scale(&mut seq_state, &config, &mut ScaleArena::new());
            assert_eq!(sim_state, seq_state, "seed {seed}: final states diverge");
            assert_eq!(sim.total_moves, seq.total_moves, "seed {seed}");
            assert_eq!(
                std::mem::discriminant(&sim.outcome),
                std::mem::discriminant(&seq.outcome),
                "seed {seed}: convergence verdicts diverge"
            );
        }
    }
    assert!(hit, "no seed produced a non-trivial conflict-free run; the parity property is dead");
}

/// Artifacts must be byte-identical for any worker-pool size — the
/// in-process version of the CI scale lane's `NCG_THREADS=1` vs `4`
/// diff. Fixed proposal chunks plus the order-preserving vendored map
/// make this exact, not approximate.
#[test]
fn runs_are_bit_identical_across_thread_counts() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let mut edges = Vec::new();
    generators::gnp_edges(3_000, 8.0 / 2_999.0, &mut rng, &mut edges).unwrap();
    let owned: Vec<(NodeId, NodeId)> = edges
        .into_iter()
        .enumerate()
        .map(|(i, (u, v))| if i % 2 == 0 { (u, v) } else { (v, u) })
        .collect();
    let initial = ScaleState::from_owned_edges(3_000, &owned);
    let mut config = ScaleConfig::new(GameSpec::max(1.0, 2));
    config.max_rounds = 4;
    let run_with_threads = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        pool.install(|| {
            let mut state = initial.clone();
            let result = run_scale(&mut state, &config, &mut ScaleArena::new());
            (state, result.outcome, result.total_moves, result.rounds, result.view_sample)
        })
    };
    let single = run_with_threads(1);
    let four = run_with_threads(4);
    assert_eq!(single.0, four.0, "final states must be bit-identical across thread counts");
    assert_eq!(single.1, four.1);
    assert_eq!(single.2, four.2);
    assert_eq!(single.3, four.3);
    assert_eq!(single.4, four.4);
}
