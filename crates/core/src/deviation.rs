//! Worst-case deviation evaluation (Propositions 2.1 and 2.2).
//!
//! Player `u` contemplates switching from `σ_u` to `σ'_u ⊆ β(u,k)`.
//! The paper shows that the supremum in Eq. (3) over all realizable
//! networks is attained when the network *is* the view `H`, so the
//! deviation is judged on the modified view
//! `H' = H − (u × σ_u) + (u × σ'_u)`:
//!
//! * **MaxNCG** ([`evaluate_max`]): new usage = `ecc_{H'}(u)`; if `H'`
//!   disconnects any visible node the usage is `+∞`.
//! * **SumNCG** ([`evaluate_sum`]): a strategy that pushes a frontier
//!   vertex (distance exactly `k` in `H`) to distance `> k` in `H'` is
//!   *never* improving — an adversary may hang arbitrarily many
//!   invisible nodes behind it; otherwise new usage =
//!   `Σ_{v∈H} d_{H'}(u,v)`.
//!
//! The implementation never materialises `H'`: since every path from
//! `u` starts with one of her incident edges, `d_{H'}(u,v) = 1 +
//! min_{s ∈ σ'_u ∪ incoming(u)} d_{H∖u}(s,v)`, one multi-source BFS on
//! the precomputed [`PlayerView::graph_minus_center`].

use ncg_graph::bfs::{bfs_multi, DistanceBuffer};
use ncg_graph::{NodeId, INFINITY};

use crate::{GameSpec, PlayerView};

/// Outcome of evaluating a candidate strategy in the worst case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviationEval {
    /// Finite usage cost in the worst-case network `H'`.
    Usage(u64),
    /// Some visible node becomes unreachable: usage `+∞`.
    Disconnecting,
    /// SumNCG only: a frontier vertex is pushed beyond distance `k`,
    /// so the worst-case cost difference of Eq. (3) is unbounded
    /// (Proposition 2.2) and the move is never improving.
    ForbiddenFrontier,
}

impl DeviationEval {
    /// The usage as an `Option` (`None` = effectively infinite).
    #[inline]
    pub fn usage(self) -> Option<u64> {
        match self {
            DeviationEval::Usage(u) => Some(u),
            _ => None,
        }
    }
}

/// Scratch space for deviation evaluation; reuse across calls (the
/// solver crate embeds one in its `SolverScratch` bundle so dynamics
/// rounds share it across every candidate evaluation).
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    buf: DistanceBuffer,
    sources: Vec<NodeId>,
}

impl EvalScratch {
    /// Fresh scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

fn multi_source_distances<'a>(
    view: &PlayerView,
    strategy_local: &[NodeId],
    scratch: &'a mut EvalScratch,
) -> &'a [u32] {
    debug_assert!(
        strategy_local.iter().all(|&v| v != view.center && (v as usize) < view.len()),
        "candidate strategy must name visible nodes other than the center"
    );
    scratch.sources.clear();
    scratch.sources.extend_from_slice(strategy_local);
    scratch.sources.extend_from_slice(&view.incoming);
    bfs_multi(&view.graph_minus_center, &scratch.sources, &mut scratch.buf);
    scratch.buf.distances()
}

/// MaxNCG worst-case usage of playing `strategy_local` (local ids,
/// center excluded) from this view: `ecc_{H'}(center)`.
pub fn evaluate_max(
    view: &PlayerView,
    strategy_local: &[NodeId],
    scratch: &mut EvalScratch,
) -> DeviationEval {
    if view.len() == 1 {
        return DeviationEval::Usage(0);
    }
    let dist = multi_source_distances(view, strategy_local, scratch);
    let mut ecc = 0u64;
    for v in 0..view.len() as NodeId {
        if v == view.center {
            continue;
        }
        let d = dist[v as usize];
        if d == INFINITY {
            return DeviationEval::Disconnecting;
        }
        ecc = ecc.max(1 + d as u64);
    }
    DeviationEval::Usage(ecc)
}

/// Proposition 2.2 as a per-vertex constraint on *source* distances:
/// the largest `min_{s ∈ σ' ∪ incoming} d_{H∖u}(s, v)` a legal SumNCG
/// strategy may leave vertex `v` at.
///
/// Frontier vertices (distance exactly `k` in `H`) must stay within
/// distance `k` of the center, i.e. within `k − 1` of a source; every
/// other vertex merely has to stay reachable (`INFINITY − 1` accepts
/// any finite distance). A strategy is SumNCG-legal iff every
/// `v ≠ center` meets its limit — [`evaluate_sum`] applies the rule
/// per evaluation, and the `ncg-solver` sum engine prunes whole
/// subtrees with the *same* limits, so the two cannot drift.
#[inline]
pub fn sum_source_limit(view: &PlayerView, v: NodeId) -> u32 {
    if view.dist[v as usize] == view.k {
        view.k - 1
    } else {
        INFINITY - 1
    }
}

/// SumNCG worst-case usage of playing `strategy_local` from this view:
/// `Σ_{v∈H} d_{H'}(center, v)`, with the Proposition 2.2 frontier rule.
pub fn evaluate_sum(
    view: &PlayerView,
    strategy_local: &[NodeId],
    scratch: &mut EvalScratch,
) -> DeviationEval {
    if view.len() == 1 {
        return DeviationEval::Usage(0);
    }
    let dist = multi_source_distances(view, strategy_local, scratch);
    // Frontier rule first: it dominates plain disconnection because it
    // identifies moves whose Eq. (3) value is unbounded even when H'
    // stays connected.
    for v in 0..view.len() as NodeId {
        if v != view.center
            && view.dist[v as usize] == view.k
            && dist[v as usize] > sum_source_limit(view, v)
        {
            return DeviationEval::ForbiddenFrontier;
        }
    }
    let mut sum = 0u64;
    for v in 0..view.len() as NodeId {
        if v == view.center {
            continue;
        }
        let d = dist[v as usize];
        if d == INFINITY {
            return DeviationEval::Disconnecting;
        }
        sum += 1 + d as u64;
    }
    DeviationEval::Usage(sum)
}

/// Evaluates a candidate strategy under the spec's objective and
/// returns the player's **total** worst-case cost — the edge-cost
/// model's price of `σ'` plus the usage (`+∞` for disconnecting /
/// forbidden moves). Dispatches through the spec's
/// [`UsageCost`](crate::scenario::UsageCost) instance; on the default
/// (uniform, Max/Sum) scenarios this is bit-identical to the pre-trait
/// `α·|σ'| + usage`.
pub fn evaluate_total(
    spec: &GameSpec,
    view: &PlayerView,
    strategy_local: &[NodeId],
    scratch: &mut EvalScratch,
) -> f64 {
    let eval = spec.objective.usage_cost().evaluate(view, strategy_local, scratch);
    spec.priced_total(view, strategy_local, eval.usage())
}

/// The player's *current* total cost as she perceives it (usage
/// measured inside the view). This is the baseline a deviation must
/// strictly beat.
pub fn current_total(spec: &GameSpec, view: &PlayerView) -> f64 {
    let usage = spec.objective.usage_cost().current_usage(view);
    spec.priced_total(view, &view.purchases, Some(usage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GameState;

    fn path_state(n: usize) -> GameState {
        let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, sigma) in strategies.iter_mut().enumerate().take(n - 1) {
            sigma.push((i + 1) as NodeId);
        }
        GameState::from_strategies(n, strategies)
    }

    #[test]
    fn replaying_current_strategy_reproduces_view_cost() {
        let s = GameState::cycle_successor(8);
        for u in 0..8 {
            for k in 1..=4 {
                let v = PlayerView::build(&s, u, k);
                let mut scratch = EvalScratch::new();
                let max = evaluate_max(&v, &v.purchases.clone(), &mut scratch);
                assert_eq!(max, DeviationEval::Usage(v.ecc_in_view() as u64), "u={u}, k={k}");
                let sum = evaluate_sum(&v, &v.purchases.clone(), &mut scratch);
                assert_eq!(sum, DeviationEval::Usage(v.status_in_view()), "u={u}, k={k}");
            }
        }
    }

    #[test]
    fn dropping_only_edge_disconnects() {
        // Path 0-1-2; player 0 owns (0,1). Dropping it disconnects her.
        let s = path_state(3);
        let v = PlayerView::build(&s, 0, 2);
        let mut scratch = EvalScratch::new();
        assert_eq!(evaluate_max(&v, &[], &mut scratch), DeviationEval::Disconnecting);
    }

    #[test]
    fn dropping_edge_owned_by_other_is_harmless() {
        // Path 0-1-2; player 1 owns (1,2) and *receives* (0,1).
        let s = path_state(3);
        let v = PlayerView::build(&s, 1, 2);
        let mut scratch = EvalScratch::new();
        // Playing the empty strategy still leaves the incoming edge
        // (0,1); node 2 becomes unreachable though.
        assert_eq!(evaluate_max(&v, &[], &mut scratch), DeviationEval::Disconnecting);
        // Buying only the far endpoint keeps everything reachable.
        let l2 = v.sub.to_local(2).unwrap();
        assert_eq!(evaluate_max(&v, &[l2], &mut scratch), DeviationEval::Usage(1));
    }

    #[test]
    fn buying_shortcut_reduces_eccentricity() {
        // Path of 7; center player 0 with k large sees everything.
        let s = path_state(7);
        let v = PlayerView::build(&s, 0, 100);
        let mut scratch = EvalScratch::new();
        // Current: buys edge to 1, ecc 6.
        assert_eq!(current_total(&GameSpec::max(1.0, 100), &v), 1.0 + 6.0);
        // Buy edges to 1 and 4: distances to 2,3 via 1 (2,3); to 4,5,6
        // via 4 (1,2,3) → ecc 3.
        let strat: Vec<NodeId> = vec![v.sub.to_local(1).unwrap(), v.sub.to_local(4).unwrap()];
        assert_eq!(evaluate_max(&v, &strat, &mut scratch), DeviationEval::Usage(3));
    }

    #[test]
    fn sum_frontier_rule_forbids_pushing_frontier_out() {
        // Path 0-1-2-3-4, player 2 at the middle, k = 2: frontier {0, 4}.
        let s = path_state(5);
        let v = PlayerView::build(&s, 2, 2);
        let mut scratch = EvalScratch::new();
        // Player 2 owns (2,3). Swapping it for an edge to 4 keeps 4 at
        // distance 1 and 3 at distance 2, but node 0's distance stays 2
        // (via the incoming edge from 1)… frontier fine → allowed.
        let l4 = v.sub.to_local(4).unwrap();
        let eval = evaluate_sum(&v, &[l4], &mut scratch);
        // New distances from 2: 1→1 (incoming), 0→2, 4→1, 3→2. Sum = 6.
        assert_eq!(eval, DeviationEval::Usage(6));

        // Player 0 at the end, k = 2: frontier {2}. Her only edge is
        // (0,1); replacing it with an edge to 2 keeps 2 at distance 1:
        // allowed. But dropping everything pushes the frontier to ∞.
        let v0 = PlayerView::build(&s, 0, 2);
        assert_eq!(evaluate_sum(&v0, &[], &mut scratch), DeviationEval::ForbiddenFrontier);
    }

    #[test]
    fn sum_frontier_rule_distinguishes_forbidden_from_disconnecting() {
        // Star with center 0 plus a pendant path 1-5 hanging off node 1:
        // 0 buys 1,2,3,4; 1 buys 5. Player 0 with k = 1 sees {0,1,2,3,4}
        // (5 is at distance 2). All of 1..4 are frontier (distance 1 = k).
        let s = GameState::from_strategies(
            6,
            vec![vec![1, 2, 3, 4], vec![5], vec![], vec![], vec![], vec![]],
        );
        let v = PlayerView::build(&s, 0, 1);
        assert_eq!(v.len(), 5);
        let mut scratch = EvalScratch::new();
        // Dropping node 4 from the purchases pushes frontier vertex 4
        // beyond k = 1 (it becomes unreachable in H'): forbidden.
        let strat: Vec<NodeId> = [1, 2, 3].iter().map(|&g| v.sub.to_local(g).unwrap()).collect();
        assert_eq!(evaluate_sum(&v, &strat, &mut scratch), DeviationEval::ForbiddenFrontier);
    }

    #[test]
    fn max_has_no_frontier_rule() {
        // Same star: dropping a frontier vertex under Max is merely
        // Disconnecting (infinite), not specially forbidden.
        let s =
            GameState::from_strategies(5, vec![vec![1, 2, 3, 4], vec![], vec![], vec![], vec![]]);
        let v = PlayerView::build(&s, 0, 1);
        let mut scratch = EvalScratch::new();
        let strat: Vec<NodeId> = [1, 2, 3].iter().map(|&g| v.sub.to_local(g).unwrap()).collect();
        assert_eq!(evaluate_max(&v, &strat, &mut scratch), DeviationEval::Disconnecting);
    }

    #[test]
    fn evaluate_total_dispatches_and_prices() {
        let s = GameState::cycle_successor(6);
        let v = PlayerView::build(&s, 0, 3);
        let mut scratch = EvalScratch::new();
        let spec_max = GameSpec::max(2.0, 3);
        let spec_sum = GameSpec::sum(2.0, 3);
        let cur = v.purchases.clone();
        let t_max = evaluate_total(&spec_max, &v, &cur, &mut scratch);
        let t_sum = evaluate_total(&spec_sum, &v, &cur, &mut scratch);
        assert!((t_max - (2.0 + 3.0)).abs() < 1e-9);
        // 6-cycle distances from 0: 1,2,3,2,1 → status 9.
        assert!((t_sum - (2.0 + 9.0)).abs() < 1e-9);
        assert_eq!(current_total(&spec_max, &v), t_max);
        assert_eq!(current_total(&spec_sum, &v), t_sum);
    }

    #[test]
    fn isolated_player_has_zero_usage() {
        let s = GameState::new(2);
        let v = PlayerView::build(&s, 0, 3);
        let mut scratch = EvalScratch::new();
        assert_eq!(evaluate_max(&v, &[], &mut scratch), DeviationEval::Usage(0));
        assert_eq!(evaluate_sum(&v, &[], &mut scratch), DeviationEval::Usage(0));
    }

    #[test]
    fn deviation_eval_usage_accessor() {
        assert_eq!(DeviationEval::Usage(5).usage(), Some(5));
        assert_eq!(DeviationEval::Disconnecting.usage(), None);
        assert_eq!(DeviationEval::ForbiddenFrontier.usage(), None);
    }
}
