//! # ncg-core — the locality-based network creation game
//!
//! This crate implements the primary contribution of
//!
//! > Bilò, Gualà, Leucci, Proietti. *Locality-based Network Creation
//! > Games.* SPAA 2014 / ACM TOPC 3(1), 2016.
//!
//! `n` players sit on the nodes of an undirected graph. Player `u`'s
//! strategy `σ_u` is the set of nodes she buys edges to; the played
//! graph `G(σ)` has an edge `(u,v)` iff `v ∈ σ_u` or `u ∈ σ_v`. Her
//! cost is
//!
//! * **MaxNCG**: `α·|σ_u| + ecc_{G(σ)}(u)` (Eq. (2) of the paper), or
//! * **SumNCG**: `α·|σ_u| + Σ_v d_{G(σ)}(u, v)` (Eq. (1)).
//!
//! In the *locality-based* model each player only knows her radius-`k`
//! **view** — the subgraph induced by her distance-`≤ k` ball — does
//! not know `n`, and evaluates deviations against the worst realizable
//! network consistent with that view (Eq. (3)). Propositions 2.1 and
//! 2.2 of the paper reduce this to computations *inside the view*:
//!
//! * MaxNCG: the worst case network is the view itself, so a deviation
//!   is judged by its cost in the modified view `H'`
//!   ([`deviation::evaluate_max`]).
//! * SumNCG: ditto, except that any deviation pushing a *frontier*
//!   vertex (distance exactly `k`) beyond distance `k` is never
//!   improving ([`deviation::evaluate_sum`]).
//!
//! A profile where no player has an improving deviation is a **Local
//! Knowledge Equilibrium** ([`equilibrium`]); with `k ≥ diam(G)` this
//! coincides with Nash equilibrium.
//!
//! ## Example
//!
//! ```
//! use ncg_core::{GameSpec, GameState};
//! use ncg_core::equilibrium::is_lke_exhaustive;
//!
//! // A 6-cycle where each player buys the edge to her successor
//! // (Lemma 3.1 of the paper: an LKE whenever α ≥ k − 1).
//! let state = GameState::cycle_successor(6);
//! let spec = GameSpec::max(2.0, 1);
//! assert!(is_lke_exhaustive(&state, &spec).unwrap());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod deviation;
pub mod dot;
pub mod equilibrium;
pub mod scenario;
pub mod social;
mod spec;
mod state;
pub mod view;

pub use scenario::{EdgeCost, EdgeCostModel, MoveRule, MoveRulePolicy, Scenario, UsageCost};
pub use spec::{GameSpec, Objective, EPS};
pub use state::{EdgeDiff, GameState};
pub use view::{PlayerView, ViewScratch};

/// Re-exported graph substrate, so downstream crates can name graph
/// types without an explicit `ncg-graph` dependency.
pub use ncg_graph as graph;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::deviation::{self, DeviationEval};
    pub use crate::equilibrium::{self, BestResponder, Deviation};
    pub use crate::social;
    pub use crate::view::{PlayerView, ViewScratch};
    pub use crate::{
        EdgeCost, EdgeCostModel, EdgeDiff, GameSpec, GameState, MoveRule, MoveRulePolicy,
        Objective, Scenario, EPS,
    };
    pub use ncg_graph::prelude::*;
}
