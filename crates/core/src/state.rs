use ncg_graph::{Graph, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What one [`GameState::set_strategy`] call actually changed, in
/// terms the incremental machinery downstream cares about: which graph
/// edges appeared or disappeared, and which targets kept their edge
/// but saw its *ownership* flip (double-bought transitions, which
/// change `incoming(target)` without touching the graph).
///
/// The dynamics view cache seeds its dirty-ball BFS from
/// [`EdgeDiff::touched`] — the mover plus every endpoint listed here.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeDiff {
    /// The player whose strategy changed.
    pub player: NodeId,
    /// Targets `w` for which the graph edge `(player, w)` was created.
    pub added: Vec<NodeId>,
    /// Targets `w` for which the graph edge `(player, w)` was deleted.
    pub removed: Vec<NodeId>,
    /// Targets whose edge survived but whose incoming-ownership set
    /// changed (the other endpoint also owns the edge).
    pub ownership: Vec<NodeId>,
    /// Whether the purchase list itself changed at all (`false` means
    /// the new strategy normalised to the old one — a no-op move).
    pub changed: bool,
}

impl EdgeDiff {
    /// Every endpoint whose local picture may have changed: the mover
    /// and all targets in the strategy's symmetric difference.
    pub fn touched(&self) -> impl Iterator<Item = NodeId> + '_ {
        std::iter::once(self.player)
            .chain(self.added.iter().copied())
            .chain(self.removed.iter().copied())
            .chain(self.ownership.iter().copied())
    }

    /// Whether the move was a strategic no-op.
    pub fn is_noop(&self) -> bool {
        !self.changed
    }
}

/// A strategy profile together with the graph it induces.
///
/// `strategies[u]` is the sorted list of nodes player `u` buys edges
/// to (`σ_u`). The induced graph `G(σ)` contains the edge `(u, v)` iff
/// `v ∈ σ_u` **or** `u ∈ σ_v`; both players buying the same edge is
/// legal (each pays `α`) but yields a single graph edge. The two
/// representations are kept in sync by every mutator and checked by
/// [`GameState::validate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GameState {
    strategies: Vec<Vec<NodeId>>,
    graph: Graph,
}

impl GameState {
    /// The edgeless profile on `n` players.
    pub fn new(n: usize) -> Self {
        GameState { strategies: vec![Vec::new(); n], graph: Graph::new(n) }
    }

    /// Builds a state from explicit strategies.
    ///
    /// Strategy lists are sorted and deduplicated; self-purchases
    /// (`u ∈ σ_u`) are rejected.
    ///
    /// # Panics
    /// Panics if any strategy mentions an out-of-range node or the
    /// player herself.
    pub fn from_strategies(n: usize, strategies: Vec<Vec<NodeId>>) -> Self {
        assert_eq!(strategies.len(), n, "one strategy per player required");
        let mut graph = Graph::new(n);
        let mut cleaned = Vec::with_capacity(n);
        for (u, mut sigma) in strategies.into_iter().enumerate() {
            sigma.sort_unstable();
            sigma.dedup();
            for &v in &sigma {
                assert!((v as usize) < n, "strategy of {u} mentions out-of-range node {v}");
                assert_ne!(v as usize, u, "player {u} cannot buy an edge to herself");
                graph.add_edge(u as NodeId, v);
            }
            cleaned.push(sigma);
        }
        GameState { strategies: cleaned, graph }
    }

    /// Builds a state from a plain graph by assigning each edge to one
    /// of its endpoints with a fair coin toss — exactly how the paper
    /// seeds its experiments ("the owner of each edge was chosen
    /// uniformly at random between its endpoints").
    pub fn from_graph_random_ownership<R: Rng + ?Sized>(graph: &Graph, rng: &mut R) -> Self {
        let n = graph.node_count();
        let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (u, v) in graph.edges() {
            if rng.random::<bool>() {
                strategies[u as usize].push(v);
            } else {
                strategies[v as usize].push(u);
            }
        }
        for sigma in &mut strategies {
            sigma.sort_unstable();
        }
        GameState { strategies, graph: graph.clone() }
    }

    /// Builds a state from a graph and an explicit owner for each
    /// edge: `owner(u, v)` must return the endpoint (`u` or `v`) that
    /// buys the edge. Used by the lower-bound constructions, which
    /// prescribe exact ownership.
    ///
    /// # Panics
    /// Panics if `owner` returns a node that is not an endpoint.
    pub fn from_graph_with_owners(
        graph: &Graph,
        mut owner: impl FnMut(NodeId, NodeId) -> NodeId,
    ) -> Self {
        let n = graph.node_count();
        let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (u, v) in graph.edges() {
            let w = owner(u, v);
            assert!(w == u || w == v, "owner({u},{v}) = {w} is not an endpoint");
            let other = if w == u { v } else { u };
            strategies[w as usize].push(other);
        }
        for sigma in &mut strategies {
            sigma.sort_unstable();
        }
        GameState { strategies, graph: graph.clone() }
    }

    /// The cycle profile of Lemma 3.1: players `0..n` on a cycle, each
    /// buying the edge to her successor `(u+1) mod n`.
    pub fn cycle_successor(n: usize) -> Self {
        let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        if n >= 3 {
            for (u, sigma) in strategies.iter_mut().enumerate() {
                sigma.push(((u + 1) % n) as NodeId);
            }
        } else if n == 2 {
            strategies[0].push(1);
        }
        Self::from_strategies(n, strategies)
    }

    /// The star profile: the center `0` buys all edges (a social
    /// optimum for `α > 1`).
    pub fn star_center_owned(n: usize) -> Self {
        let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        if n > 0 {
            strategies[0] = (1..n as NodeId).collect();
        }
        Self::from_strategies(n, strategies)
    }

    /// Number of players.
    #[inline]
    pub fn n(&self) -> usize {
        self.strategies.len()
    }

    /// The induced graph `G(σ)`.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Player `u`'s purchase list `σ_u` (sorted).
    #[inline]
    pub fn strategy(&self, u: NodeId) -> &[NodeId] {
        &self.strategies[u as usize]
    }

    /// Number of edges `u` buys, `|σ_u|`.
    #[inline]
    pub fn bought(&self, u: NodeId) -> usize {
        self.strategies[u as usize].len()
    }

    /// Whether `u` owns (bought) the edge towards `v`.
    #[inline]
    pub fn owns(&self, u: NodeId, v: NodeId) -> bool {
        self.strategies[u as usize].binary_search(&v).is_ok()
    }

    /// The players that bought an edge *towards* `u` (her in-neighbours
    /// in the ownership digraph). These edges survive any move by `u`.
    pub fn incoming(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.incoming_into(u, &mut out);
        out
    }

    /// [`GameState::incoming`] written into caller scratch (sorted,
    /// cleared first) — the allocation-free flavour the view rebuild
    /// path uses.
    pub fn incoming_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.graph.neighbors(u).iter().copied().filter(|&v| self.owns(v, u)));
    }

    /// Maximum `|σ_u|` over all players (the paper's "max bought
    /// edges" statistic).
    pub fn max_bought(&self) -> usize {
        self.strategies.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of purchases `Σ_u |σ_u|`. At least `edge_count`
    /// (strictly more if any edge is double-bought).
    pub fn total_bought(&self) -> usize {
        self.strategies.iter().map(Vec::len).sum()
    }

    /// Replaces `σ_u` with `new_strategy`, updating the graph, and
    /// returns an [`EdgeDiff`] describing exactly which endpoints were
    /// touched (consumed by the dynamics view cache to bound its
    /// invalidation BFS).
    ///
    /// Removed purchases only delete a graph edge if the other
    /// endpoint does not also own it; added purchases only create an
    /// edge if not already present. Either case of graph no-op is an
    /// *ownership* change in the diff.
    ///
    /// # Panics
    /// Panics if the strategy mentions out-of-range nodes or `u`
    /// herself.
    pub fn set_strategy(&mut self, u: NodeId, mut new_strategy: Vec<NodeId>) -> EdgeDiff {
        new_strategy.sort_unstable();
        new_strategy.dedup();
        for &v in &new_strategy {
            assert!((v as usize) < self.n(), "strategy of {u} mentions out-of-range node {v}");
            assert_ne!(v, u, "player {u} cannot buy an edge to herself");
        }
        let old = std::mem::take(&mut self.strategies[u as usize]);
        let mut diff = EdgeDiff { player: u, ..EdgeDiff::default() };
        // Edges dropped by u stay iff the other endpoint owns them too
        // (then only v's incoming-ownership of the edge changes).
        for &v in &old {
            if new_strategy.binary_search(&v).is_err() {
                if self.owns(v, u) {
                    diff.ownership.push(v);
                } else {
                    self.graph.remove_edge(u, v);
                    diff.removed.push(v);
                }
            }
        }
        for &v in &new_strategy {
            if old.binary_search(&v).is_err() {
                if self.graph.add_edge(u, v) {
                    diff.added.push(v);
                } else {
                    // Edge already present: v owns it too, so only the
                    // incoming set of v gains u.
                    diff.ownership.push(v);
                }
            }
        }
        diff.changed = old != new_strategy;
        self.strategies[u as usize] = new_strategy;
        debug_assert!(self.validate().is_ok());
        diff
    }

    /// Exhaustive consistency check between strategies and graph.
    pub fn validate(&self) -> Result<(), String> {
        self.graph.validate()?;
        if self.graph.node_count() != self.strategies.len() {
            return Err("player count disagrees with graph".into());
        }
        let n = self.n();
        for (u, sigma) in self.strategies.iter().enumerate() {
            if !sigma.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("strategy of {u} not strictly sorted"));
            }
            for &v in sigma {
                if v as usize >= n {
                    return Err(format!("strategy of {u} mentions out-of-range {v}"));
                }
                if v as usize == u {
                    return Err(format!("player {u} buys an edge to herself"));
                }
                if !self.graph.has_edge(u as NodeId, v) {
                    return Err(format!("purchase ({u},{v}) missing from graph"));
                }
            }
        }
        for (u, v) in self.graph.edges() {
            if !self.owns(u, v) && !self.owns(v, u) {
                return Err(format!("edge ({u},{v}) has no owner"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn from_strategies_builds_union_graph() {
        let s = GameState::from_strategies(4, vec![vec![1], vec![0, 2], vec![], vec![2]]);
        // (0,1) double-bought → one edge; (1,2); (3,2).
        assert_eq!(s.graph().edge_count(), 3);
        assert_eq!(s.total_bought(), 4);
        assert!(s.owns(0, 1) && s.owns(1, 0));
        assert!(s.validate().is_ok());
    }

    #[test]
    fn incoming_lists_other_players_purchases() {
        let s = GameState::from_strategies(4, vec![vec![1], vec![0, 2], vec![], vec![2]]);
        assert_eq!(s.incoming(2), vec![1, 3]);
        assert_eq!(s.incoming(0), vec![1]);
        assert_eq!(s.incoming(3), Vec::<NodeId>::new());
    }

    #[test]
    fn set_strategy_keeps_double_bought_edges() {
        let mut s = GameState::from_strategies(3, vec![vec![1], vec![0], vec![]]);
        // 0 drops her purchase of (0,1); 1 still owns it → edge stays.
        s.set_strategy(0, vec![]);
        assert!(s.graph().has_edge(0, 1));
        assert_eq!(s.bought(0), 0);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn set_strategy_removes_solely_owned_edges() {
        let mut s = GameState::from_strategies(3, vec![vec![1, 2], vec![], vec![]]);
        s.set_strategy(0, vec![2]);
        assert!(!s.graph().has_edge(0, 1));
        assert!(s.graph().has_edge(0, 2));
        assert!(s.validate().is_ok());
    }

    #[test]
    fn set_strategy_adds_new_edges() {
        let mut s = GameState::new(4);
        s.set_strategy(0, vec![3, 1]);
        assert_eq!(s.strategy(0), &[1, 3]);
        assert_eq!(s.graph().edge_count(), 2);
    }

    #[test]
    fn edge_diff_reports_added_removed_and_ownership() {
        // 0 and 1 both own (0,1); 0 also owns (0,2).
        let mut s = GameState::from_strategies(4, vec![vec![1, 2], vec![0], vec![], vec![]]);
        // 0 drops both purchases and buys 3: (0,2) is a real removal,
        // (0,1) survives via 1's ownership (ownership change), (0,3)
        // is a real addition.
        let diff = s.set_strategy(0, vec![3]);
        assert_eq!(diff.player, 0);
        assert_eq!(diff.added, vec![3]);
        assert_eq!(diff.removed, vec![2]);
        assert_eq!(diff.ownership, vec![1]);
        assert!(diff.changed);
        let touched: Vec<NodeId> = diff.touched().collect();
        assert_eq!(touched, vec![0, 3, 2, 1]);
        // Re-buying an edge the other endpoint owns is ownership-only.
        let diff = s.set_strategy(0, vec![1, 3]);
        assert!(diff.added.is_empty() && diff.removed.is_empty());
        assert_eq!(diff.ownership, vec![1]);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn edge_diff_noop_move_is_flagged() {
        let mut s = GameState::from_strategies(3, vec![vec![1], vec![2], vec![]]);
        let diff = s.set_strategy(0, vec![1, 1]); // normalises to current
        assert!(diff.is_noop());
        assert!(diff.added.is_empty() && diff.removed.is_empty() && diff.ownership.is_empty());
        let diff = s.set_strategy(0, vec![2]);
        assert!(!diff.is_noop());
        assert_eq!(diff.added, vec![2]);
        assert_eq!(diff.removed, vec![1]);
    }

    #[test]
    fn incoming_into_matches_incoming() {
        let s = GameState::from_strategies(4, vec![vec![1], vec![0, 2], vec![], vec![2]]);
        let mut buf = vec![99];
        for u in 0..4 {
            s.incoming_into(u, &mut buf);
            assert_eq!(buf, s.incoming(u));
        }
    }

    #[test]
    fn set_strategy_dedups() {
        let mut s = GameState::new(3);
        s.set_strategy(0, vec![1, 1, 2, 1]);
        assert_eq!(s.strategy(0), &[1, 2]);
        assert_eq!(s.graph().edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot buy an edge to herself")]
    fn self_purchase_panics() {
        GameState::from_strategies(2, vec![vec![0], vec![]]);
    }

    #[test]
    fn cycle_successor_profile() {
        let s = GameState::cycle_successor(5);
        assert_eq!(s.graph().edge_count(), 5);
        for u in 0..5u32 {
            assert_eq!(s.bought(u), 1);
            assert!(s.owns(u, (u + 1) % 5));
        }
        assert!(s.validate().is_ok());
    }

    #[test]
    fn cycle_successor_tiny() {
        assert_eq!(GameState::cycle_successor(2).graph().edge_count(), 1);
        assert_eq!(GameState::cycle_successor(1).graph().edge_count(), 0);
    }

    #[test]
    fn star_profile() {
        let s = GameState::star_center_owned(6);
        assert_eq!(s.bought(0), 5);
        assert_eq!(s.max_bought(), 5);
        assert_eq!(s.graph().max_degree(), 5);
    }

    #[test]
    fn random_ownership_covers_every_edge_once() {
        let g = ncg_graph::generators::gnp(40, 0.2, &mut ChaCha8Rng::seed_from_u64(3)).unwrap();
        let s = GameState::from_graph_random_ownership(&g, &mut ChaCha8Rng::seed_from_u64(4));
        assert_eq!(s.total_bought(), g.edge_count());
        assert_eq!(s.graph(), &g);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn explicit_ownership() {
        let g = ncg_graph::generators::path(4);
        // Always the larger endpoint buys.
        let s = GameState::from_graph_with_owners(&g, |u, v| u.max(v));
        assert_eq!(s.strategy(1), &[0]);
        assert_eq!(s.strategy(2), &[1]);
        assert_eq!(s.strategy(3), &[2]);
        assert_eq!(s.bought(0), 0);
    }

    #[test]
    fn serde_round_trip() {
        let s = GameState::cycle_successor(7);
        let json = serde_json::to_string(&s).unwrap();
        let back: GameState = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn validate_rejects_tampered_state() {
        let s = GameState::cycle_successor(4);
        let mut json: serde_json::Value = serde_json::to_value(&s).unwrap();
        // Corrupt: player 0 claims to buy an edge the graph lacks.
        json["strategies"][0] = serde_json::json!([2]);
        let bad: GameState = serde_json::from_value(json).unwrap();
        assert!(bad.validate().is_err());
    }
}
