//! The model-zoo scenario layer: pluggable usage costs, edge-cost
//! models, and move rules.
//!
//! The paper's two games differ in exactly one place — the usage cost
//! (eccentricity vs. status) — and the related work varies two more
//! axes the original `Objective` match sites could not express:
//!
//! * **Edge cost** ([`EdgeCost`] / [`EdgeCostModel`]): uniform `α` per
//!   edge (the paper) vs. non-uniform per-target pricing (Chauhan et
//!   al., PAPERS.md), where buying an edge towards `v` costs
//!   `α·w(v)` for a deterministic per-node multiplier `w(v)`.
//! * **Move rule** ([`MoveRule`] / [`MoveRulePolicy`]): buy any subset
//!   of the view (the paper) vs. *edge swaps* (Yamauchi & Yoshimura,
//!   PAPERS.md), where one move removes exactly one owned edge and
//!   adds one new one, keeping the purchase count invariant.
//!
//! A [`Scenario`] bundles one choice per axis;
//! [`Objective::usage_cost`] exposes the paper's two objectives as
//! canonical [`UsageCost`] instances ([`Eccentricity`], [`Status`]).
//! The default scenario (`Uniform` + `AnySubset`) reproduces the
//! paper's games bit for bit — every dispatch below keeps the exact
//! floating-point expressions of the pre-trait code (property-tested
//! across crates), and serialized [`GameSpec`]s only
//! mention the new axes when they are non-default, so old journals
//! keep round-tripping.

use ncg_graph::{metrics, Graph, NodeId};
use serde::{Deserialize, Serialize};

use crate::deviation::{evaluate_max, evaluate_sum, DeviationEval, EvalScratch};
use crate::{GameSpec, Objective, PlayerView};

/// SplitMix64 finalizer: the deterministic hash behind per-target
/// price multipliers (same mixer as the sweep fingerprints).
#[inline]
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The usage-cost side of an objective: how a player's distances are
/// aggregated into the non-edge part of her cost.
///
/// [`Eccentricity`] (MaxNCG) and [`Status`] (SumNCG) are the canonical
/// instances, reachable from [`Objective::usage_cost`]. Every method
/// that replaces a pre-trait `match spec.objective` site keeps that
/// site's expression verbatim, so Max/Sum behavior is bit-identical
/// through the dispatch.
pub trait UsageCost: std::fmt::Debug + Sync {
    /// Worst-case usage of playing `strategy_local` from this view
    /// (Propositions 2.1/2.2 — the per-objective deviation semantics,
    /// including SumNCG's frontier rule).
    fn evaluate(
        &self,
        view: &PlayerView,
        strategy_local: &[NodeId],
        scratch: &mut EvalScratch,
    ) -> DeviationEval;

    /// The player's current usage as she perceives it inside her view.
    fn current_usage(&self, view: &PlayerView) -> u64;

    /// Usage from one full per-vertex distance array (the metrics
    /// path): `None` when the player does not reach everyone.
    fn distance_usage(&self, reaches_all: bool, ecc: u32, distances: &[u32]) -> Option<u64>;

    /// Usage from the batched BFS kernel's per-lane aggregates
    /// (`ncg_graph::batch`): `ecc` is the largest finite distance and
    /// `status` the sum of finite distances of the lane. Must agree
    /// with [`UsageCost::distance_usage`] on consistent inputs — the
    /// bit-parity contract of the batched metrics path.
    fn aggregate_usage(&self, reaches_all: bool, ecc: u32, status: u64) -> Option<u64>;

    /// Per-vertex usages on the true (full-knowledge) graph.
    fn graph_usages(&self, g: &Graph) -> Vec<Option<u64>>;

    /// One vertex's usage on the true graph.
    fn vertex_usage(&self, g: &Graph, u: NodeId) -> Option<u64>;

    /// Closed-form social cost of the uniform-α spanning star on
    /// `n ≥ 3` nodes (the `n ≤ 2` degenerate cases are shared).
    fn star_cost_uniform(&self, n: f64, alpha: f64) -> f64;

    /// Closed-form social cost of the uniform-α clique on `n ≥ 2`.
    fn clique_cost_uniform(&self, n: f64, alpha: f64) -> f64;

    /// The usage part of the spanning-star social cost (`n ≥ 3`), for
    /// edge-cost models whose edge part must be computed per edge.
    fn star_usage(&self, n: f64) -> f64;

    /// The usage part of the clique social cost (`n ≥ 2`).
    fn clique_usage(&self, n: f64) -> f64;
}

/// MaxNCG's usage cost: the player's eccentricity (Eq. (2)).
#[derive(Debug, Clone, Copy, Default)]
pub struct Eccentricity;

impl UsageCost for Eccentricity {
    fn evaluate(
        &self,
        view: &PlayerView,
        strategy_local: &[NodeId],
        scratch: &mut EvalScratch,
    ) -> DeviationEval {
        evaluate_max(view, strategy_local, scratch)
    }

    fn current_usage(&self, view: &PlayerView) -> u64 {
        view.ecc_in_view() as u64
    }

    fn distance_usage(&self, reaches_all: bool, ecc: u32, _distances: &[u32]) -> Option<u64> {
        reaches_all.then_some(ecc as u64)
    }

    fn aggregate_usage(&self, reaches_all: bool, ecc: u32, _status: u64) -> Option<u64> {
        reaches_all.then_some(ecc as u64)
    }

    fn graph_usages(&self, g: &Graph) -> Vec<Option<u64>> {
        metrics::eccentricities(g)
            .into_iter()
            .map(|e| if e == ncg_graph::INFINITY { None } else { Some(e as u64) })
            .collect()
    }

    fn vertex_usage(&self, g: &Graph, u: NodeId) -> Option<u64> {
        metrics::eccentricity(g, u).map(|e| e as u64)
    }

    fn star_cost_uniform(&self, n: f64, alpha: f64) -> f64 {
        alpha * (n - 1.0) + 1.0 + 2.0 * (n - 1.0)
    }

    fn clique_cost_uniform(&self, n: f64, alpha: f64) -> f64 {
        alpha * n * (n - 1.0) / 2.0 + n
    }

    fn star_usage(&self, n: f64) -> f64 {
        1.0 + 2.0 * (n - 1.0)
    }

    fn clique_usage(&self, n: f64) -> f64 {
        n
    }
}

/// SumNCG's usage cost: the player's status, `Σ_v d(u, v)` (Eq. (1)).
#[derive(Debug, Clone, Copy, Default)]
pub struct Status;

impl UsageCost for Status {
    fn evaluate(
        &self,
        view: &PlayerView,
        strategy_local: &[NodeId],
        scratch: &mut EvalScratch,
    ) -> DeviationEval {
        evaluate_sum(view, strategy_local, scratch)
    }

    fn current_usage(&self, view: &PlayerView) -> u64 {
        view.status_in_view()
    }

    fn distance_usage(&self, reaches_all: bool, _ecc: u32, distances: &[u32]) -> Option<u64> {
        reaches_all.then(|| distances.iter().map(|&d| d as u64).sum())
    }

    fn aggregate_usage(&self, reaches_all: bool, _ecc: u32, status: u64) -> Option<u64> {
        reaches_all.then_some(status)
    }

    fn graph_usages(&self, g: &Graph) -> Vec<Option<u64>> {
        metrics::statuses(g)
    }

    fn vertex_usage(&self, g: &Graph, u: NodeId) -> Option<u64> {
        metrics::status(g, u)
    }

    fn star_cost_uniform(&self, n: f64, alpha: f64) -> f64 {
        alpha * (n - 1.0) + 2.0 * (n - 1.0) * (n - 1.0)
    }

    fn clique_cost_uniform(&self, n: f64, alpha: f64) -> f64 {
        alpha * n * (n - 1.0) / 2.0 + n * (n - 1.0)
    }

    fn star_usage(&self, n: f64) -> f64 {
        2.0 * (n - 1.0) * (n - 1.0)
    }

    fn clique_usage(&self, n: f64) -> f64 {
        n * (n - 1.0)
    }
}

impl Objective {
    /// The canonical [`UsageCost`] instance of this objective.
    pub fn usage_cost(self) -> &'static dyn UsageCost {
        match self {
            Objective::Max => &Eccentricity,
            Objective::Sum => &Status,
        }
    }
}

/// The edge-pricing side of the cost function: what buying one edge
/// costs, as a function of the target node.
pub trait EdgeCost: std::fmt::Debug {
    /// Price of buying an edge towards global node `target`.
    fn edge_price(&self, alpha: f64, target_global: NodeId) -> f64;

    /// Total price of a strategy in `view`-local coordinates.
    fn strategy_price(&self, alpha: f64, view: &PlayerView, strategy_local: &[NodeId]) -> f64;

    /// Total price of a set of global purchase targets.
    fn bought_price(&self, alpha: f64, targets_global: &[NodeId]) -> f64;

    /// Whether every edge costs exactly `α`. Only uniform pricing
    /// admits the count-based pruning of the exact engines
    /// (`max_br`'s `⌈slack/α⌉` cutoff, the sum engine's `α·t` bounds);
    /// non-uniform specs must route through enumeration or local
    /// search instead.
    fn is_uniform(&self) -> bool;
}

/// The concrete edge-cost models a [`GameSpec`] can carry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeCostModel {
    /// Every edge costs `α` (the paper's model).
    #[default]
    Uniform,
    /// Non-uniform, per-target pricing (Chauhan et al.): an edge
    /// towards `v` costs `α·w(v)` where `w(v)` is a deterministic
    /// quarter-step multiplier in `{1, 1.25, 1.5, 1.75}` derived by
    /// hashing `(seed, v)`. Quarter steps are exactly representable
    /// in an `f64` and keep the smallest nonzero cost difference on
    /// the paper's α grid at `α/4 ≥ 0.00625` — far above
    /// [`EPS`](crate::EPS), preserving the comparison contract
    /// documented in `spec.rs`.
    PerTarget {
        /// Seed of the multiplier hash: one seed = one pricing map.
        seed: u64,
    },
}

impl EdgeCostModel {
    /// The price multiplier of an edge towards global node `target`:
    /// `1` under uniform pricing, a quarter step in
    /// `{1, 1.25, 1.5, 1.75}` under per-target pricing.
    #[inline]
    pub fn multiplier(&self, target_global: NodeId) -> f64 {
        match self {
            EdgeCostModel::Uniform => 1.0,
            EdgeCostModel::PerTarget { seed } => {
                let h = splitmix64(seed ^ splitmix64(target_global as u64));
                let m = 1.0 + 0.25 * (h % 4) as f64;
                debug_assert!(
                    [1.0, 1.25, 1.5, 1.75].contains(&m),
                    "multipliers must stay exact quarter steps (EPS contract)"
                );
                m
            }
        }
    }

    /// Whether every edge costs exactly `α` (inherent mirror of
    /// [`EdgeCost::is_uniform`], so callers need no trait import).
    #[inline]
    pub fn is_uniform(&self) -> bool {
        matches!(self, EdgeCostModel::Uniform)
    }
}

impl EdgeCost for EdgeCostModel {
    #[inline]
    fn edge_price(&self, alpha: f64, target_global: NodeId) -> f64 {
        alpha * self.multiplier(target_global)
    }

    fn strategy_price(&self, alpha: f64, view: &PlayerView, strategy_local: &[NodeId]) -> f64 {
        match self {
            // Verbatim the pre-trait expression `α · |σ'|` — the
            // uniform path must stay bit-identical.
            EdgeCostModel::Uniform => alpha * strategy_local.len() as f64,
            EdgeCostModel::PerTarget { .. } => {
                strategy_local.iter().map(|&l| self.edge_price(alpha, view.sub.to_global(l))).sum()
            }
        }
    }

    fn bought_price(&self, alpha: f64, targets_global: &[NodeId]) -> f64 {
        match self {
            EdgeCostModel::Uniform => alpha * targets_global.len() as f64,
            EdgeCostModel::PerTarget { .. } => {
                targets_global.iter().map(|&g| self.edge_price(alpha, g)).sum()
            }
        }
    }

    #[inline]
    fn is_uniform(&self) -> bool {
        matches!(self, EdgeCostModel::Uniform)
    }
}

/// The move rule: which strategies a player may switch to in one move.
pub trait MoveRule: std::fmt::Debug {
    /// Whether `strategy_local` (sorted local ids) is reachable from
    /// the view's current strategy in a single move.
    fn is_legal(&self, view: &PlayerView, strategy_local: &[NodeId]) -> bool;

    /// Number of legal one-move strategies (staying put included), or
    /// `None` when the move set is too large to count in a `usize`
    /// (subset moves on wide views).
    fn move_count(&self, view: &PlayerView) -> Option<usize>;

    /// Visits every legal one-move strategy exactly once, as sorted
    /// local ids, staying put included. Deterministic order; for
    /// subset moves the order is the mask order of the pre-trait
    /// exhaustive search.
    fn for_each_move(&self, view: &PlayerView, f: &mut dyn FnMut(&[NodeId]));
}

/// The concrete move rules a [`GameSpec`] can carry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MoveRulePolicy {
    /// A move may rewrite the whole strategy: any subset of the view's
    /// candidates (the paper's model).
    #[default]
    AnySubset,
    /// Swap moves (Yamauchi & Yoshimura): remove exactly one owned
    /// edge and add exactly one new one, so `|σ_u|` is invariant.
    /// Staying put is always allowed; players without purchases have
    /// nothing to swap.
    Swap,
}

impl MoveRule for MoveRulePolicy {
    fn is_legal(&self, view: &PlayerView, strategy_local: &[NodeId]) -> bool {
        let in_view = strategy_local.iter().all(|&v| v != view.center && (v as usize) < view.len());
        match self {
            MoveRulePolicy::AnySubset => in_view,
            MoveRulePolicy::Swap => {
                if !in_view || strategy_local.len() != view.purchases.len() {
                    return false;
                }
                // Both sorted: count elements unique to each side.
                let removed = view
                    .purchases
                    .iter()
                    .filter(|p| strategy_local.binary_search(p).is_err())
                    .count();
                removed <= 1
            }
        }
    }

    fn move_count(&self, view: &PlayerView) -> Option<usize> {
        let candidates = view.candidate_count();
        match self {
            MoveRulePolicy::AnySubset => 1usize.checked_shl(candidates.try_into().ok()?),
            MoveRulePolicy::Swap => {
                let owned = view.purchases.len();
                Some(1 + owned * (candidates - owned))
            }
        }
    }

    fn for_each_move(&self, view: &PlayerView, f: &mut dyn FnMut(&[NodeId])) {
        let candidates = view.candidate_count();
        match self {
            MoveRulePolicy::AnySubset => {
                assert!(
                    candidates < usize::BITS as usize,
                    "subset enumeration over {candidates} candidates; gate on move_count()"
                );
                let mut strat: Vec<NodeId> = Vec::with_capacity(candidates);
                for mask in 0usize..(1usize << candidates) {
                    strat.clear();
                    for (i, c) in view.candidates_iter().enumerate() {
                        if mask & (1 << i) != 0 {
                            strat.push(c);
                        }
                    }
                    f(&strat);
                }
            }
            MoveRulePolicy::Swap => {
                f(&view.purchases);
                let mut strat = view.purchases.clone();
                for i in 0..view.purchases.len() {
                    for add in view.candidates_iter() {
                        if view.purchases.binary_search(&add).is_ok() {
                            continue;
                        }
                        strat.clear();
                        strat.extend_from_slice(&view.purchases);
                        strat.remove(i);
                        let pos = strat.binary_search(&add).unwrap_err();
                        strat.insert(pos, add);
                        f(&strat);
                    }
                }
            }
        }
    }
}

/// One cell of the model zoo: an objective, an edge-cost model, and a
/// move rule. `From<Objective>` yields the paper's default cell
/// (uniform pricing, subset moves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Usage-cost objective.
    pub objective: Objective,
    /// Edge pricing model.
    pub edge_cost: EdgeCostModel,
    /// Move rule.
    pub move_rule: MoveRulePolicy,
}

impl From<Objective> for Scenario {
    fn from(objective: Objective) -> Self {
        Scenario {
            objective,
            edge_cost: EdgeCostModel::Uniform,
            move_rule: MoveRulePolicy::AnySubset,
        }
    }
}

impl Scenario {
    /// The swap-NCG scenario: uniform pricing, swap moves.
    pub fn swap(objective: Objective) -> Self {
        Scenario { move_rule: MoveRulePolicy::Swap, ..Scenario::from(objective) }
    }

    /// The non-uniform-α scenario: per-target pricing, subset moves.
    pub fn non_uniform(objective: Objective, seed: u64) -> Self {
        Scenario { edge_cost: EdgeCostModel::PerTarget { seed }, ..Scenario::from(objective) }
    }

    /// A [`GameSpec`] of this scenario with the given `α` and `k`.
    pub fn spec(self, alpha: f64, k: u32) -> GameSpec {
        GameSpec {
            alpha,
            k,
            objective: self.objective,
            edge_cost: self.edge_cost,
            move_rule: self.move_rule,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GameState;

    #[test]
    fn objective_dispatches_to_canonical_instances() {
        let state = GameState::cycle_successor(6);
        let view = PlayerView::build(&state, 0, 3);
        assert_eq!(Objective::Max.usage_cost().current_usage(&view), view.ecc_in_view() as u64);
        assert_eq!(Objective::Sum.usage_cost().current_usage(&view), view.status_in_view());
        let mut scratch = EvalScratch::new();
        assert_eq!(
            Objective::Max.usage_cost().evaluate(&view, &view.purchases.clone(), &mut scratch),
            evaluate_max(&view, &view.purchases, &mut scratch.clone()),
        );
    }

    #[test]
    fn per_target_multipliers_are_quarter_steps_and_deterministic() {
        let m = EdgeCostModel::PerTarget { seed: 0xfeed };
        let mut seen = std::collections::HashSet::new();
        for v in 0..256u32 {
            let w = m.multiplier(v);
            assert!([1.0, 1.25, 1.5, 1.75].contains(&w), "w({v}) = {w}");
            assert_eq!(w.to_bits(), m.multiplier(v).to_bits());
            seen.insert(w.to_bits());
        }
        // The hash must actually spread over all four steps.
        assert_eq!(seen.len(), 4);
        // Different seeds give different maps.
        let other = EdgeCostModel::PerTarget { seed: 0xbeef };
        assert!((0..256u32).any(|v| other.multiplier(v) != m.multiplier(v)));
    }

    #[test]
    fn uniform_pricing_is_exactly_alpha_times_count() {
        let state = GameState::cycle_successor(8);
        let view = PlayerView::build(&state, 0, 3);
        let m = EdgeCostModel::Uniform;
        let strat = view.candidates();
        let alpha = 0.3;
        assert_eq!(
            m.strategy_price(alpha, &view, &strat).to_bits(),
            (alpha * strat.len() as f64).to_bits()
        );
        assert!(m.is_uniform());
        assert!(!EdgeCostModel::PerTarget { seed: 1 }.is_uniform());
    }

    #[test]
    fn per_target_strategy_price_sums_global_prices() {
        let state = GameState::cycle_successor(8);
        let view = PlayerView::build(&state, 2, 2);
        let m = EdgeCostModel::PerTarget { seed: 7 };
        let strat = view.candidates();
        let by_hand: f64 = strat.iter().map(|&l| 2.0 * m.multiplier(view.sub.to_global(l))).sum();
        assert_eq!(m.strategy_price(2.0, &view, &strat).to_bits(), by_hand.to_bits());
        // Pricing keys on *global* ids: two views of different players
        // agree on the price of the same global target.
        let other = PlayerView::build(&state, 5, 2);
        for g in 0..8u32 {
            assert_eq!(m.edge_price(1.0, g), 1.0 * m.multiplier(g));
            let _ = other; // both views price via the same global map
        }
    }

    #[test]
    fn swap_moves_on_a_star_center() {
        // Star center owns all leaves: the only swap-legal strategies
        // are staying put (no unowned candidate exists to add).
        let state = GameState::star_center_owned(6);
        let view = PlayerView::build(&state, 0, 2);
        let rule = MoveRulePolicy::Swap;
        assert_eq!(rule.move_count(&view), Some(1));
        let mut seen = Vec::new();
        rule.for_each_move(&view, &mut |s| seen.push(s.to_vec()));
        assert_eq!(seen, vec![view.purchases.clone()]);
        assert!(rule.is_legal(&view, &view.purchases));
    }

    #[test]
    fn swap_moves_on_a_star_leaf_and_cycle() {
        // A leaf owning nothing cannot move at all (beyond staying).
        let state = GameState::star_center_owned(6);
        let leaf = PlayerView::build(&state, 3, 2);
        assert!(leaf.purchases.is_empty());
        assert_eq!(MoveRulePolicy::Swap.move_count(&leaf), Some(1));

        // A cycle player owns one edge and sees 2k other nodes: she can
        // re-point her single purchase at any of the 2k − 1 others.
        let cyc = GameState::cycle_successor(8);
        let view = PlayerView::build(&cyc, 0, 2);
        let candidates = view.candidate_count();
        assert_eq!(MoveRulePolicy::Swap.move_count(&view), Some(1 + (candidates - 1)));
        let mut count = 0usize;
        MoveRulePolicy::Swap.for_each_move(&view, &mut |s| {
            assert_eq!(s.len(), 1, "swaps preserve the purchase count");
            assert!(MoveRulePolicy::Swap.is_legal(&view, s));
            count += 1;
        });
        assert_eq!(Some(count), MoveRulePolicy::Swap.move_count(&view));
    }

    #[test]
    fn swap_legality_rejects_resizes_and_double_swaps() {
        let cyc = GameState::cycle_successor(10);
        let view = PlayerView::build(&cyc, 0, 3);
        let rule = MoveRulePolicy::Swap;
        // Dropping the only edge changes the count: illegal.
        assert!(!rule.is_legal(&view, &[]));
        // Two purchases where there was one: illegal.
        let two: Vec<NodeId> = view.candidates_iter().take(2).collect();
        assert!(!rule.is_legal(&view, &two));
        // AnySubset accepts both.
        assert!(MoveRulePolicy::AnySubset.is_legal(&view, &[]));
        assert!(MoveRulePolicy::AnySubset.is_legal(&view, &two));
    }

    #[test]
    fn any_subset_enumeration_matches_mask_order() {
        let state = GameState::cycle_successor(5);
        let view = PlayerView::build(&state, 0, 1);
        let mut seen = Vec::new();
        MoveRulePolicy::AnySubset.for_each_move(&view, &mut |s| seen.push(s.to_vec()));
        assert_eq!(seen.len(), 1 << view.candidate_count());
        assert_eq!(seen[0], Vec::<NodeId>::new());
        // Every enumerated strategy is sorted and legal.
        for s in &seen {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(MoveRulePolicy::AnySubset.is_legal(&view, s));
        }
    }

    #[test]
    fn scenario_defaults_reproduce_the_paper() {
        let s = Scenario::from(Objective::Max);
        assert_eq!(s.edge_cost, EdgeCostModel::Uniform);
        assert_eq!(s.move_rule, MoveRulePolicy::AnySubset);
        let spec = s.spec(1.5, 3);
        assert_eq!(spec, GameSpec::max(1.5, 3));
        let swap = Scenario::swap(Objective::Max).spec(1.5, 3);
        assert_eq!(swap.move_rule, MoveRulePolicy::Swap);
        let nu = Scenario::non_uniform(Objective::Sum, 9).spec(0.5, 2);
        assert_eq!(nu.edge_cost, EdgeCostModel::PerTarget { seed: 9 });
    }
}
