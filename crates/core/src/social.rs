//! Social cost, social optimum, and equilibrium quality.
//!
//! The social cost of a profile is the sum of all player costs:
//! `SC(σ) = α·Σ_u|σ_u| + Σ_u usage_u`. The paper compares equilibria
//! against the optimum; for `α > 1` (resp. `α ≥ 2`) the spanning star
//! is optimal for MaxNCG (resp. SumNCG), and for small `α` the clique
//! takes over. We evaluate both closed forms and take the minimum,
//! which matches the benchmarks the paper plots ("quality of
//! equilibrium", Figures 6–7).

use crate::scenario::EdgeCost as _;
use crate::{GameSpec, GameState};

/// Per-player cost vector `C_u(σ)` under the *true* (full-knowledge)
/// graph — the costs that social welfare is measured on, regardless of
/// what players can see. `None` entries mean the graph is disconnected
/// (infinite cost).
pub fn player_costs(state: &GameState, spec: &GameSpec) -> Vec<Option<f64>> {
    let usages = spec.objective.usage_cost().graph_usages(state.graph());
    player_costs_with_usages(state, spec, &usages)
}

/// [`player_costs`] from *precomputed* per-player usages (eccentricity
/// for Max, status for Sum; `None` = does not reach everyone):
/// `C_u = α·|σ_u| + usage_u`, with no BFS of its own.
///
/// This is the no-traversal core the BFS entry points above feed.
/// Callers that already hold per-vertex distance arrays — the CSR
/// freeze in `ncg_dynamics::StateMetrics::measure` takes one full BFS
/// per vertex anyway for the diameter and view statistics — pass their
/// usages here instead of paying a second per-vertex sweep over the
/// mutable adjacency (parity-tested against the BFS path).
pub fn player_costs_with_usages(
    state: &GameState,
    spec: &GameSpec,
    usages: &[Option<u64>],
) -> Vec<Option<f64>> {
    debug_assert_eq!(usages.len(), state.n());
    usages
        .iter()
        .enumerate()
        .map(|(u, usage)| {
            // `bought_price` prices the player's global purchase
            // targets; its uniform arm is `α · |σ_u|`, bit-identical
            // to the pre-scenario expression.
            usage.map(|us| {
                spec.edge_cost.bought_price(spec.alpha, state.strategy(u as u32)) + us as f64
            })
        })
        .collect()
}

/// Social cost `Σ_u C_u(σ)`; `None` if the graph is disconnected.
pub fn social_cost(state: &GameState, spec: &GameSpec) -> Option<f64> {
    player_costs(state, spec).into_iter().try_fold(0.0, |acc, c| c.map(|c| acc + c))
}

/// [`social_cost`] from precomputed usages (see
/// [`player_costs_with_usages`]).
pub fn social_cost_with_usages(
    state: &GameState,
    spec: &GameSpec,
    usages: &[Option<u64>],
) -> Option<f64> {
    player_costs_with_usages(state, spec, usages)
        .into_iter()
        .try_fold(0.0, |acc, c| c.map(|c| acc + c))
}

/// One player's true (full-knowledge) cost `α·|σ_u| + usage_u`;
/// `None` when she does not reach the whole graph.
pub fn player_cost(state: &GameState, spec: &GameSpec, u: ncg_graph::NodeId) -> Option<f64> {
    let usage = spec.objective.usage_cost().vertex_usage(state.graph(), u)?;
    Some(spec.edge_cost.bought_price(spec.alpha, state.strategy(u)) + usage as f64)
}

/// Closed-form social cost of the spanning star on `n` nodes
/// (`n−1` edges bought once each).
///
/// * MaxNCG: `α(n−1) + 1 + 2(n−1)` (center ecc 1, each leaf ecc 2).
/// * SumNCG: `α(n−1) + 2(n−1)²` (center status `n−1`, leaf status `2n−3`).
///
/// Under per-target pricing the edge part is no longer `α(n−1)`: each
/// star edge `(c, v)` is bought by whichever endpoint gets it cheaper
/// (`α·min(w(c), w(v))`), minimized over the choice of center `c` on
/// the nodes `0..n` — the usage part is the objective's closed form
/// unchanged.
pub fn star_cost(n: usize, spec: &GameSpec) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let uc = spec.objective.usage_cost();
    if spec.edge_cost.is_uniform() {
        if n == 2 {
            // Single edge: both endpoints have usage 1 under either objective.
            return spec.alpha + 2.0;
        }
        return uc.star_cost_uniform(n as f64, spec.alpha);
    }
    let edge_part = (0..n as ncg_graph::NodeId)
        .map(|c| {
            let wc = spec.edge_cost.multiplier(c);
            (0..n as ncg_graph::NodeId)
                .filter(|&v| v != c)
                .map(|v| spec.alpha * spec.edge_cost.multiplier(v).min(wc))
                .sum::<f64>()
        })
        .fold(f64::INFINITY, f64::min);
    if n == 2 {
        return edge_part + 2.0;
    }
    edge_part + uc.star_usage(n as f64)
}

/// Closed-form social cost of the clique on `n` nodes.
///
/// * MaxNCG: `α·n(n−1)/2 + n` (every eccentricity 1).
/// * SumNCG: `α·n(n−1)/2 + n(n−1)`.
///
/// Under per-target pricing each clique edge is bought by its cheaper
/// endpoint: `Σ_{u<v} α·min(w(u), w(v))` plus the objective's usage
/// part.
pub fn clique_cost(n: usize, spec: &GameSpec) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let uc = spec.objective.usage_cost();
    if spec.edge_cost.is_uniform() {
        return uc.clique_cost_uniform(n as f64, spec.alpha);
    }
    let mut edge_part = 0.0;
    for u in 0..n as ncg_graph::NodeId {
        let wu = spec.edge_cost.multiplier(u);
        for v in (u + 1)..n as ncg_graph::NodeId {
            edge_part += spec.alpha * spec.edge_cost.multiplier(v).min(wu);
        }
    }
    edge_part + uc.clique_usage(n as f64)
}

/// The social optimum benchmark: `min(star, clique)`.
///
/// For MaxNCG and `α > 1` the star is optimal (paper, Section 3); for
/// SumNCG the optimum is the star for `α ≥ 2` and the clique for
/// `α ≤ 2` (Fabrikant et al.). The min of the two closed forms covers
/// the whole `α` range exactly on those regimes.
pub fn optimum_cost(n: usize, spec: &GameSpec) -> f64 {
    star_cost(n, spec).min(clique_cost(n, spec))
}

/// Quality of the profile: `SC(σ) / OPT` — the empirical counterpart
/// of the price of anarchy plotted in Figures 6–7. `None` if the
/// profile's graph is disconnected or the optimum is zero.
pub fn quality(state: &GameState, spec: &GameSpec) -> Option<f64> {
    quality_of(state.n(), spec, social_cost(state, spec))
}

/// [`quality`] from precomputed usages (see
/// [`player_costs_with_usages`]).
pub fn quality_with_usages(
    state: &GameState,
    spec: &GameSpec,
    usages: &[Option<u64>],
) -> Option<f64> {
    quality_of(state.n(), spec, social_cost_with_usages(state, spec, usages))
}

fn quality_of(n: usize, spec: &GameSpec, sc: Option<f64>) -> Option<f64> {
    let sc = sc?;
    let opt = optimum_cost(n, spec);
    if opt <= 0.0 {
        None
    } else {
        Some(sc / opt)
    }
}

/// Unfairness ratio: costliest player / cheapest player (Figure 9).
/// `None` on disconnected graphs or when the cheapest cost is 0.
pub fn unfairness(state: &GameState, spec: &GameSpec) -> Option<f64> {
    unfairness_of(player_costs(state, spec))
}

/// [`unfairness`] from precomputed usages (see
/// [`player_costs_with_usages`]).
pub fn unfairness_with_usages(
    state: &GameState,
    spec: &GameSpec,
    usages: &[Option<u64>],
) -> Option<f64> {
    unfairness_of(player_costs_with_usages(state, spec, usages))
}

fn unfairness_of(costs: Vec<Option<f64>>) -> Option<f64> {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for c in costs {
        let c = c?;
        min = min.min(c);
        max = max.max(c);
    }
    if !min.is_finite() || min <= 0.0 {
        None
    } else {
        Some(max / min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GameState;

    #[test]
    fn star_cost_matches_direct_computation() {
        for n in [2usize, 3, 5, 9] {
            for alpha in [0.5, 1.0, 3.0] {
                let state = GameState::star_center_owned(n);
                for spec in [GameSpec::max(alpha, 3), GameSpec::sum(alpha, 3)] {
                    let direct = social_cost(&state, &spec).unwrap();
                    let formula = star_cost(n, &spec);
                    assert!(
                        (direct - formula).abs() < 1e-9,
                        "n={n} α={alpha} {:?}: {direct} vs {formula}",
                        spec.objective
                    );
                }
            }
        }
    }

    #[test]
    fn clique_cost_matches_direct_computation() {
        for n in [2usize, 4, 6] {
            let g = ncg_graph::generators::complete(n);
            let state = GameState::from_graph_with_owners(&g, |u, _| u);
            for spec in [GameSpec::max(0.7, 2), GameSpec::sum(0.7, 2)] {
                let direct = social_cost(&state, &spec).unwrap();
                let formula = clique_cost(n, &spec);
                assert!((direct - formula).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn optimum_switches_from_clique_to_star() {
        // SumNCG: clique optimal below α = 2, star above.
        let n = 10;
        assert_eq!(optimum_cost(n, &GameSpec::sum(1.0, 2)), clique_cost(n, &GameSpec::sum(1.0, 2)));
        assert_eq!(optimum_cost(n, &GameSpec::sum(5.0, 2)), star_cost(n, &GameSpec::sum(5.0, 2)));
        // MaxNCG with α > 2/(n−2)-ish: star wins.
        assert_eq!(optimum_cost(n, &GameSpec::max(1.0, 2)), star_cost(n, &GameSpec::max(1.0, 2)));
    }

    #[test]
    fn disconnected_profiles_have_no_social_cost() {
        let state = GameState::from_strategies(4, vec![vec![1], vec![], vec![3], vec![]]);
        let spec = GameSpec::max(1.0, 2);
        assert_eq!(social_cost(&state, &spec), None);
        assert_eq!(quality(&state, &spec), None);
        assert_eq!(unfairness(&state, &spec), None);
    }

    #[test]
    fn quality_of_the_optimum_is_one() {
        let state = GameState::star_center_owned(12);
        let spec = GameSpec::max(3.0, 5);
        let q = quality(&state, &spec).unwrap();
        assert!((q - 1.0).abs() < 1e-9, "star should be optimal at α=3, got q={q}");
    }

    #[test]
    fn cycle_quality_grows_with_alpha_and_n() {
        // The stable cycle has SC = αn + n·(n/2); the star ≈ αn + 2n.
        let spec = GameSpec::max(2.0, 2);
        let q10 = quality(&GameState::cycle_successor(10), &spec).unwrap();
        let q30 = quality(&GameState::cycle_successor(30), &spec).unwrap();
        assert!(q30 > q10, "bigger cycles are relatively worse: {q30} vs {q10}");
        assert!(q10 > 1.0);
    }

    #[test]
    fn unfairness_of_star_matches_hand_computation() {
        let n = 6;
        let state = GameState::star_center_owned(n);
        let spec = GameSpec::max(1.0, 3);
        // Center: 5α + 1 = 6; leaf: 2. Max/min = 3.
        assert!((unfairness(&state, &spec).unwrap() - 3.0).abs() < 1e-9);
        // Symmetric cycle: unfairness exactly 1.
        let cyc = GameState::cycle_successor(8);
        assert!((unfairness(&cyc, &spec).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn player_costs_align_with_bought_and_usage() {
        let state = GameState::cycle_successor(6);
        let spec = GameSpec::sum(2.0, 3);
        let costs = player_costs(&state, &spec);
        // Every cycle player: 1 bought edge, status 1+2+3+2+1 = 9.
        for c in costs {
            assert!((c.unwrap() - (2.0 + 9.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn player_cost_matches_player_costs_vector() {
        let state = GameState::star_center_owned(7);
        for spec in [GameSpec::max(1.5, 3), GameSpec::sum(1.5, 3)] {
            let vector = player_costs(&state, &spec);
            for u in 0..7u32 {
                assert_eq!(player_cost(&state, &spec, u), vector[u as usize]);
            }
        }
        let disc = GameState::from_strategies(3, vec![vec![1], vec![], vec![]]);
        assert_eq!(player_cost(&disc, &GameSpec::max(1.0, 2), 0), None);
    }

    #[test]
    fn with_usages_matches_bfs_path() {
        // The precomputed-usage entry points must agree with the
        // BFS-driven ones on connected and disconnected profiles.
        let usages_of = |state: &GameState, spec: &GameSpec| -> Vec<Option<u64>> {
            match spec.objective {
                crate::Objective::Max => ncg_graph::metrics::eccentricities(state.graph())
                    .into_iter()
                    .map(|e| (e != ncg_graph::INFINITY).then_some(e as u64))
                    .collect(),
                crate::Objective::Sum => ncg_graph::metrics::statuses(state.graph()),
            }
        };
        let connected = GameState::cycle_successor(9);
        let disconnected = GameState::from_strategies(4, vec![vec![1], vec![], vec![3], vec![]]);
        for state in [&connected, &disconnected] {
            for spec in [GameSpec::max(1.7, 3), GameSpec::sum(0.4, 2)] {
                let usages = usages_of(state, &spec);
                assert_eq!(
                    player_costs_with_usages(state, &spec, &usages),
                    player_costs(state, &spec)
                );
                assert_eq!(
                    social_cost_with_usages(state, &spec, &usages),
                    social_cost(state, &spec)
                );
                assert_eq!(quality_with_usages(state, &spec, &usages), quality(state, &spec));
                assert_eq!(unfairness_with_usages(state, &spec, &usages), unfairness(state, &spec));
            }
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(star_cost(0, &GameSpec::max(1.0, 1)), 0.0);
        assert_eq!(star_cost(1, &GameSpec::max(1.0, 1)), 0.0);
        assert_eq!(clique_cost(1, &GameSpec::sum(1.0, 1)), 0.0);
        assert_eq!(optimum_cost(1, &GameSpec::sum(1.0, 1)), 0.0);
    }
}
