//! Equilibrium concepts: Local Knowledge Equilibrium (LKE) and Nash
//! Equilibrium (NE).
//!
//! A profile `σ̄` is an **LKE** iff no player has a deviation with
//! `Δ(σ̄_u, σ'_u) < 0` (Eq. (3)), which by Propositions 2.1/2.2 means:
//! no strategy inside the view strictly beats the current cost under
//! [`crate::deviation`]'s worst-case semantics. With `k` at least the
//! diameter the view is the whole graph and LKE coincides with NE.
//!
//! Two checkers are provided:
//!
//! * [`is_lke_exhaustive`] — enumerates *all* `2^{|view|−1}` candidate
//!   strategies per player. Exact but exponential: intended for unit
//!   tests and gadget certification on small views (candidate cap 20).
//! * [`is_lke_with`] — delegates to a [`BestResponder`] (the efficient
//!   solver lives in `ncg-solver`), making the check `n` best-response
//!   calls.

use ncg_graph::NodeId;

use crate::deviation::{current_total, evaluate_total, EvalScratch};
use crate::scenario::{MoveRule as _, MoveRulePolicy};
use crate::{GameSpec, GameState, PlayerView};

/// A concrete deviation: a strategy (in *local* view coordinates) and
/// its evaluated worst-case total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Deviation {
    /// The strategy, as sorted local ids of the view it was computed in.
    pub strategy_local: Vec<NodeId>,
    /// Evaluated total cost `α·|σ'| + usage` (may be `+∞`).
    pub total_cost: f64,
}

/// Strategy search engines (exact or heuristic best response).
///
/// Contract: the returned deviation's `total_cost` must equal
/// [`evaluate_total`] of its strategy on `view`, and implementations
/// must never return a strategy *worse* than the player's current one
/// (returning the current strategy is always legal).
pub trait BestResponder {
    /// Computes (an approximation of) the player's best response for
    /// the given view.
    fn best_response(&mut self, spec: &GameSpec, view: &PlayerView) -> Deviation;
}

impl<F> BestResponder for F
where
    F: FnMut(&GameSpec, &PlayerView) -> Deviation,
{
    fn best_response(&mut self, spec: &GameSpec, view: &PlayerView) -> Deviation {
        self(spec, view)
    }
}

/// Exhaustive-search failure: the view is too large to enumerate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooLarge {
    /// Number of candidate purchase targets in the view.
    pub candidates: usize,
    /// The enumeration cap.
    pub cap: usize,
}

impl std::fmt::Display for TooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exhaustive search over {} candidates exceeds the cap of {}",
            self.candidates, self.cap
        )
    }
}

impl std::error::Error for TooLarge {}

/// Candidate cap for exhaustive enumeration (`2^20` evaluations).
pub const EXHAUSTIVE_CAP: usize = 20;

/// Exact best response by enumerating every legal move of the spec's
/// move rule: all `2^{candidates}` subsets under
/// [`MoveRulePolicy::AnySubset`] (exponential; see [`EXHAUSTIVE_CAP`]),
/// the polynomial swap neighbourhood under [`MoveRulePolicy::Swap`]
/// (never [`TooLarge`]).
///
/// Ties are broken toward fewer purchased edges, then lexicographically
/// smaller strategies, so the result is deterministic.
pub fn best_response_exhaustive(spec: &GameSpec, view: &PlayerView) -> Result<Deviation, TooLarge> {
    best_response_exhaustive_with(spec, view, &mut EvalScratch::new())
}

/// [`best_response_exhaustive`] with caller-provided evaluation
/// scratch, for hot loops (the SumNCG solver threads its per-run
/// scratch through here).
pub fn best_response_exhaustive_with(
    spec: &GameSpec,
    view: &PlayerView,
    scratch: &mut EvalScratch,
) -> Result<Deviation, TooLarge> {
    let candidates = view.candidate_count();
    if spec.move_rule == MoveRulePolicy::AnySubset && candidates > EXHAUSTIVE_CAP {
        return Err(TooLarge { candidates, cap: EXHAUSTIVE_CAP });
    }
    let mut best =
        Deviation { strategy_local: view.purchases.clone(), total_cost: current_total(spec, view) };
    spec.move_rule.for_each_move(view, &mut |strat| {
        let cost = evaluate_total(spec, view, strat, scratch);
        let better = GameSpec::strictly_better(cost, best.total_cost)
            || ((cost - best.total_cost).abs() <= crate::EPS
                && (strat.len() < best.strategy_local.len()
                    || (strat.len() == best.strategy_local.len()
                        && strat[..] < best.strategy_local[..])));
        if better {
            best = Deviation { strategy_local: strat.to_vec(), total_cost: cost };
        }
    });
    Ok(best)
}

/// Whether any player has a strictly improving deviation, by
/// exhaustive search. `Ok(None)` means the profile is an LKE.
pub fn improving_player_exhaustive(
    state: &GameState,
    spec: &GameSpec,
) -> Result<Option<(NodeId, Deviation)>, TooLarge> {
    for u in 0..state.n() as NodeId {
        let view = PlayerView::build(state, u, spec.k);
        let current = current_total(spec, &view);
        let best = best_response_exhaustive(spec, &view)?;
        if GameSpec::strictly_better(best.total_cost, current) {
            return Ok(Some((u, best)));
        }
    }
    Ok(None)
}

/// Exhaustive LKE check (small views only; see [`EXHAUSTIVE_CAP`]).
pub fn is_lke_exhaustive(state: &GameState, spec: &GameSpec) -> Result<bool, TooLarge> {
    Ok(improving_player_exhaustive(state, spec)?.is_none())
}

/// Exhaustive NE check: the LKE check with an effectively unbounded
/// radius (`k = u32::MAX`, so every view is the whole component and
/// the frontier rule never fires).
pub fn is_ne_exhaustive(state: &GameState, spec: &GameSpec) -> Result<bool, TooLarge> {
    let full = GameSpec { k: u32::MAX, ..*spec };
    is_lke_exhaustive(state, &full)
}

/// LKE check via a (typically exact) best responder: `n` view builds
/// and best-response calls.
pub fn is_lke_with<B: BestResponder>(
    state: &GameState,
    spec: &GameSpec,
    responder: &mut B,
) -> bool {
    improving_player_with(state, spec, responder).is_none()
}

/// First player with an improving deviation according to `responder`,
/// or `None` if the profile is stable for it.
pub fn improving_player_with<B: BestResponder>(
    state: &GameState,
    spec: &GameSpec,
    responder: &mut B,
) -> Option<(NodeId, Deviation)> {
    for u in 0..state.n() as NodeId {
        let view = PlayerView::build(state, u, spec.k);
        let current = current_total(spec, &view);
        let best = responder.best_response(spec, &view);
        if GameSpec::strictly_better(best.total_cost, current) {
            return Some((u, best));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objective;

    #[test]
    fn cycle_is_lke_for_alpha_at_least_k_minus_1() {
        // Lemma 3.1: the successor-owned cycle on n ≥ 2k+2 vertices is
        // an LKE whenever α ≥ k − 1.
        for (n, k, alpha) in [(8, 1, 1.0), (10, 2, 1.5), (12, 3, 2.0), (12, 2, 5.0)] {
            let state = GameState::cycle_successor(n);
            let spec = GameSpec::max(alpha, k);
            assert!(
                is_lke_exhaustive(&state, &spec).unwrap(),
                "cycle n={n} must be a MaxNCG LKE at α={alpha}, k={k}"
            );
        }
    }

    #[test]
    fn cycle_destabilises_when_alpha_small_and_k_large() {
        // With a large view and cheap edges a cycle player shortcuts.
        let state = GameState::cycle_successor(12);
        let spec = GameSpec::max(0.1, 6);
        let improving = improving_player_exhaustive(&state, &spec).unwrap();
        assert!(improving.is_some(), "cheap edges must destabilise the big cycle");
    }

    #[test]
    fn star_is_nash_for_alpha_above_one() {
        let state = GameState::star_center_owned(8);
        for alpha in [1.5, 2.0, 10.0] {
            let spec = GameSpec::max(alpha, 4);
            assert!(is_ne_exhaustive(&state, &spec).unwrap(), "star at α={alpha}");
            let spec = GameSpec::sum(alpha, 4);
            assert!(is_ne_exhaustive(&state, &spec).unwrap(), "sum star at α={alpha}");
        }
    }

    #[test]
    fn star_leaves_buy_edges_when_alpha_tiny_in_sum() {
        // For SumNCG with α < 1 a leaf profits from buying an edge to
        // another leaf (saves 1 distance per bought edge).
        let state = GameState::star_center_owned(8);
        let spec = GameSpec::sum(0.5, 4);
        let improving = improving_player_exhaustive(&state, &spec).unwrap();
        assert!(improving.is_some());
    }

    #[test]
    fn exhaustive_cap_is_enforced() {
        let state = GameState::star_center_owned(EXHAUSTIVE_CAP + 3);
        let spec = GameSpec::max(1.0, 2);
        let err =
            best_response_exhaustive(&spec, &PlayerView::build(&state, 0, spec.k)).unwrap_err();
        assert_eq!(err.candidates, EXHAUSTIVE_CAP + 2);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn best_response_never_worse_than_current() {
        let state = GameState::cycle_successor(9);
        for obj in [Objective::Max, Objective::Sum] {
            for k in 1..=4 {
                for alpha in [0.1, 1.0, 3.0] {
                    let spec = GameSpec::new(alpha, k, obj);
                    for u in 0..9 {
                        let view = PlayerView::build(&state, u, k);
                        let best = best_response_exhaustive(&spec, &view).unwrap();
                        assert!(
                            best.total_cost <= current_total(&spec, &view) + crate::EPS,
                            "{obj:?} α={alpha} k={k} u={u}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tie_breaking_prefers_fewer_edges() {
        // On a triangle where dropping one of player 0's two edges
        // leaves the cost unchanged, buying less is preferred.
        let state = GameState::from_strategies(3, vec![vec![1, 2], vec![2], vec![]]);
        let spec = GameSpec::max(1.0, 2);
        let view = PlayerView::build(&state, 0, 2);
        let best = best_response_exhaustive(&spec, &view).unwrap();
        // Current cost: 2α + 1 = 3. Dropping one edge: α + 2 = 3 (tie,
        // fewer edges preferred). Dropping both: disconnects.
        assert_eq!(best.strategy_local.len(), 1);
    }

    #[test]
    fn closure_implements_best_responder() {
        let state = GameState::cycle_successor(6);
        let spec = GameSpec::max(2.0, 2);
        let mut responder =
            |spec: &GameSpec, view: &PlayerView| best_response_exhaustive(spec, view).unwrap();
        assert!(is_lke_with(&state, &spec, &mut responder));
    }

    #[test]
    fn lke_equals_ne_when_k_covers_diameter() {
        // 6-cycle diameter 3; k = 3 sees everything, so the LKE and NE
        // predicates must agree on any profile we test.
        let spec_local = GameSpec::max(1.0, 3);
        let state = GameState::cycle_successor(6);
        assert_eq!(
            is_lke_exhaustive(&state, &spec_local).unwrap(),
            is_ne_exhaustive(&state, &spec_local).unwrap()
        );
    }
}
