//! Player views: the radius-`k` ball a player actually knows.
//!
//! A [`PlayerView`] snapshots everything Propositions 2.1/2.2 need to
//! evaluate deviations: the induced ball subgraph `H`, the center's
//! current purchases and incoming edges (both mapped to local ids),
//! the center-to-node distances, and — precomputed because every
//! candidate evaluation needs it — the graph `H ∖ {center}`.

use ncg_graph::bfs::DistanceBuffer;
use ncg_graph::view::{view_subgraph_into, Subgraph};
use ncg_graph::{Graph, NodeId, INFINITY};

use crate::GameState;

/// Reusable workspace for building [`PlayerView`]s: the BFS buffer and
/// the ball scratch of the subgraph extraction.
///
/// One per thread (the dynamics view cache owns one); threading it
/// through [`PlayerView::build_with`] / [`PlayerView::rebuild`] makes
/// view (re)construction allocation-free after warm-up.
#[derive(Debug, Clone, Default)]
pub struct ViewScratch {
    buf: DistanceBuffer,
    ball: Vec<NodeId>,
    globals: Vec<NodeId>,
}

impl ViewScratch {
    /// Fresh scratch; it sizes itself on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Everything player `u` knows at radius `k`, in local coordinates.
///
/// Local ids are dense `0..len()`; [`PlayerView::sub`] holds the
/// local↔global mapping. All strategy-like fields (`purchases`,
/// `incoming`) are sorted local ids.
///
/// Equality is field-for-field — two views compare equal iff they are
/// observationally identical, which is what the incremental view cache
/// relies on (a clean player's cached view *is* the view a fresh
/// [`PlayerView::build`] would produce).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlayerView {
    /// The induced ball subgraph `H` with its id mapping.
    pub sub: Subgraph,
    /// The player, in local coordinates.
    pub center: NodeId,
    /// The player, in global coordinates.
    pub center_global: NodeId,
    /// The knowledge radius the view was built with.
    pub k: u32,
    /// Local ids of the nodes `u` currently buys edges to.
    pub purchases: Vec<NodeId>,
    /// Local ids of players owning an edge towards `u`; these edges
    /// survive any move by `u` and cost her nothing.
    pub incoming: Vec<NodeId>,
    /// `dist[v]` = distance from the center to local node `v` in `H`
    /// (equal to the distance in the full graph, since shortest paths
    /// to nodes at distance `≤ k` stay inside the ball).
    pub dist: Vec<u32>,
    /// `H ∖ {center}`: the view with the center detached, the graph on
    /// which candidate strategies are evaluated via multi-source BFS.
    pub graph_minus_center: ncg_graph::Graph,
}

impl PlayerView {
    /// Builds the view of player `u` at radius `k` from the current
    /// state.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn build(state: &GameState, u: NodeId, k: u32) -> Self {
        Self::build_with(state, u, k, &mut ViewScratch::new())
    }

    /// [`PlayerView::build`] with caller-provided scratch, for hot
    /// loops that build many views.
    pub fn build_with(state: &GameState, u: NodeId, k: u32, scratch: &mut ViewScratch) -> Self {
        let mut view = Self::empty(u, k);
        view.rebuild(state, u, k, scratch);
        view
    }

    /// [`PlayerView::build_with`] from a precomputed radius-`k` ball
    /// (see [`PlayerView::rebuild_from_ball`]).
    pub fn build_from_ball(
        state: &GameState,
        u: NodeId,
        k: u32,
        ball: &[NodeId],
        scratch: &mut ViewScratch,
    ) -> Self {
        let mut view = Self::empty(u, k);
        view.rebuild_from_ball(state, u, k, ball, scratch);
        view
    }

    /// The allocation-free skeleton every build entry point fills in.
    fn empty(u: NodeId, k: u32) -> Self {
        PlayerView {
            sub: Subgraph { graph: Graph::new(0), local_to_global: Vec::new() },
            center: 0,
            center_global: u,
            k,
            purchases: Vec::new(),
            incoming: Vec::new(),
            dist: Vec::new(),
            graph_minus_center: Graph::new(0),
        }
    }

    /// Overwrites this view with the view of player `u` at radius `k`
    /// in the current state, reusing every allocation the old contents
    /// held (subgraph, adjacency lists, distance and strategy
    /// buffers). The result is field-for-field identical to a fresh
    /// [`PlayerView::build`] — the incremental dynamics engine's
    /// refresh path, property-tested in `ncg-dynamics`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn rebuild(&mut self, state: &GameState, u: NodeId, k: u32, scratch: &mut ViewScratch) {
        view_subgraph_into(state.graph(), u, k, &mut scratch.buf, &mut scratch.ball, &mut self.sub);
        self.rebuild_tail(state, u, k, scratch);
    }

    /// [`PlayerView::rebuild`] with the radius-`k` ball of `u` already
    /// computed (ascending global ids — what the batched BFS kernel's
    /// `lane_ball_into` emits, and what `ncg_graph::view::ball`
    /// produces). Field-for-field identical to a fresh
    /// [`PlayerView::build`]; the ball just skips the per-player BFS,
    /// which the batched prefetch paths have already answered 64
    /// players at a time.
    ///
    /// # Panics
    /// Panics (in debug) if `ball` is not the radius-`k` ball of `u`.
    pub fn rebuild_from_ball(
        &mut self,
        state: &GameState,
        u: NodeId,
        k: u32,
        ball: &[NodeId],
        scratch: &mut ViewScratch,
    ) {
        debug_assert!(ball.binary_search(&u).is_ok(), "ball must contain its center");
        debug_assert_eq!(
            ball,
            ncg_graph::view::ball(state.graph(), u, k),
            "precomputed ball disagrees with a scalar ball for player {u}"
        );
        ncg_graph::view::induced_subgraph_into(state.graph(), ball, &mut self.sub);
        self.rebuild_tail(state, u, k, scratch);
    }

    /// The representation-independent rest of a (re)build: everything
    /// after `self.sub` holds the induced ball subgraph.
    fn rebuild_tail(&mut self, state: &GameState, u: NodeId, k: u32, scratch: &mut ViewScratch) {
        let sub = &self.sub;
        let center = sub.to_local(u).expect("center is always inside her own ball");
        let to_local = |globals: &[NodeId], out: &mut Vec<NodeId>| {
            out.clear();
            out.extend(globals.iter().map(|&g| {
                sub.to_local(g).expect("distance-1 neighbours are always inside the ball")
            }));
            out.sort_unstable();
        };
        to_local(state.strategy(u), &mut self.purchases);
        state.incoming_into(u, &mut scratch.globals);
        to_local(&scratch.globals, &mut self.incoming);
        ncg_graph::bfs::bfs(&sub.graph, center, &mut scratch.buf);
        self.dist.clear();
        self.dist.extend_from_slice(scratch.buf.distances());
        debug_assert!(
            self.dist.iter().all(|&d| d != INFINITY),
            "every node of the ball must be reachable from its center"
        );
        self.graph_minus_center.copy_from(&sub.graph);
        self.graph_minus_center.detach_node(center);
        self.center = center;
        self.center_global = u;
        self.k = k;
    }

    /// Number of nodes the player sees (including herself) — the
    /// paper's "view size" statistic of Figure 5.
    #[inline]
    pub fn len(&self) -> usize {
        self.sub.len()
    }

    /// Whether the view contains only the player herself.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sub.len() <= 1
    }

    /// The frontier `F`: local ids at distance exactly `k` — the
    /// vertices whose distance a SumNCG player must never increase
    /// beyond `k` (Proposition 2.2). Allocates; single-pass consumers
    /// should prefer [`PlayerView::frontier_iter`].
    pub fn frontier(&self) -> Vec<NodeId> {
        self.frontier_iter().collect()
    }

    /// Allocation-free iterator over the frontier (local ids at
    /// distance exactly `k`, ascending).
    pub fn frontier_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as NodeId).filter(|&v| self.dist[v as usize] == self.k)
    }

    /// All legal purchase targets: every visible node except the
    /// player herself (the strategy space of the local game).
    /// Allocates; single-pass consumers should prefer
    /// [`PlayerView::candidates_iter`].
    pub fn candidates(&self) -> Vec<NodeId> {
        self.candidates_iter().collect()
    }

    /// Allocation-free iterator over the purchase candidates (every
    /// visible node except the center, ascending).
    pub fn candidates_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        let center = self.center;
        (0..self.len() as NodeId).filter(move |&v| v != center)
    }

    /// Number of purchase candidates, `len() − 1` (0 for the isolated
    /// player), without materialising them.
    #[inline]
    pub fn candidate_count(&self) -> usize {
        self.len().saturating_sub(1)
    }

    /// The player's current eccentricity *within the view*, i.e. the
    /// usage cost she can actually observe (equals `min(ecc_G(u), k)`
    /// on connected graphs).
    pub fn ecc_in_view(&self) -> u32 {
        self.dist.iter().copied().max().unwrap_or(0)
    }

    /// The player's current status (sum of distances) within the view.
    pub fn status_in_view(&self) -> u64 {
        self.dist.iter().map(|&d| d as u64).sum()
    }

    /// Maps a local strategy back to global node ids (sorted).
    pub fn strategy_to_global(&self, local: &[NodeId]) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = local.iter().map(|&l| self.sub.to_global(l)).collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GameState;

    fn path_state(n: usize) -> GameState {
        // Path 0-1-…-(n-1); player i buys the edge to i+1.
        let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, sigma) in strategies.iter_mut().enumerate().take(n - 1) {
            sigma.push((i + 1) as NodeId);
        }
        GameState::from_strategies(n, strategies)
    }

    #[test]
    #[allow(clippy::identity_op)] // 0 + 1 + 1 + 2 + 2 spells out the per-node distances
    fn view_of_path_center() {
        let s = path_state(9);
        let v = PlayerView::build(&s, 4, 2);
        assert_eq!(v.len(), 5); // nodes 2..=6
        assert_eq!(v.sub.local_to_global, vec![2, 3, 4, 5, 6]);
        assert_eq!(v.center_global, 4);
        assert_eq!(v.ecc_in_view(), 2);
        assert_eq!(v.status_in_view(), 0 + 1 + 1 + 2 + 2);
    }

    #[test]
    fn purchases_and_incoming_are_local_and_correct() {
        let s = path_state(9);
        let v = PlayerView::build(&s, 4, 2);
        // Player 4 buys the edge to 5; player 3 bought the edge to 4.
        let l5 = v.sub.to_local(5).unwrap();
        let l3 = v.sub.to_local(3).unwrap();
        assert_eq!(v.purchases, vec![l5]);
        assert_eq!(v.incoming, vec![l3]);
    }

    #[test]
    fn frontier_is_distance_exactly_k() {
        let s = path_state(9);
        let v = PlayerView::build(&s, 4, 2);
        let mut frontier_global: Vec<NodeId> =
            v.frontier().iter().map(|&l| v.sub.to_global(l)).collect();
        frontier_global.sort_unstable();
        assert_eq!(frontier_global, vec![2, 6]);
    }

    #[test]
    fn full_knowledge_view_sees_everything() {
        let s = GameState::cycle_successor(8);
        let v = PlayerView::build(&s, 3, 1000);
        assert_eq!(v.len(), 8);
        assert!(v.frontier().is_empty());
        assert_eq!(v.ecc_in_view(), 4);
    }

    #[test]
    fn graph_minus_center_detaches_center_only() {
        let s = GameState::cycle_successor(6);
        let v = PlayerView::build(&s, 0, 2);
        assert_eq!(v.graph_minus_center.degree(v.center), 0);
        // Remaining nodes keep their mutual edges: the ball of radius 2
        // on a 6-cycle is a path of 5 nodes; minus the center, 4 edges
        // minus the 2 incident to the center = 2.
        assert_eq!(v.graph_minus_center.edge_count(), 2);
    }

    #[test]
    fn candidates_exclude_center() {
        let s = GameState::cycle_successor(5);
        let v = PlayerView::build(&s, 2, 1);
        assert_eq!(v.len(), 3);
        let cands = v.candidates();
        assert_eq!(cands.len(), 2);
        assert!(!cands.contains(&v.center));
    }

    #[test]
    fn strategy_to_global_round_trip() {
        let s = GameState::cycle_successor(7);
        let v = PlayerView::build(&s, 3, 2);
        let locals = v.candidates();
        let globals = v.strategy_to_global(&locals);
        assert_eq!(globals.len(), locals.len());
        for g in &globals {
            assert!(v.sub.to_local(*g).is_some());
        }
    }

    #[test]
    fn rebuild_matches_fresh_build_field_for_field() {
        let mut s = GameState::cycle_successor(10);
        let mut scratch = ViewScratch::new();
        // Start from one player's view, then retarget the same
        // allocation across players, radii, and a state mutation.
        let mut v = PlayerView::build_with(&s, 0, 2, &mut scratch);
        for k in [1u32, 3, 100] {
            for u in 0..10 {
                v.rebuild(&s, u, k, &mut scratch);
                assert_eq!(v, PlayerView::build(&s, u, k), "u={u} k={k}");
            }
        }
        s.set_strategy(3, vec![7]);
        for u in 0..10 {
            v.rebuild(&s, u, 2, &mut scratch);
            assert_eq!(v, PlayerView::build(&s, u, 2), "post-move u={u}");
        }
    }

    #[test]
    fn build_from_ball_matches_plain_build() {
        let s = GameState::cycle_successor(10);
        let mut scratch = ViewScratch::new();
        for k in [1u32, 2, 100] {
            for u in 0..10 {
                let ball = ncg_graph::view::ball(s.graph(), u, k);
                let from_ball = PlayerView::build_from_ball(&s, u, k, &ball, &mut scratch);
                assert_eq!(from_ball, PlayerView::build(&s, u, k), "u={u} k={k}");
                // And the rebuild-in-place flavour.
                let mut v = PlayerView::build(&s, (u + 1) % 10, 1);
                v.rebuild_from_ball(&s, u, k, &ball, &mut scratch);
                assert_eq!(v, PlayerView::build(&s, u, k), "rebuild u={u} k={k}");
            }
        }
    }

    #[test]
    fn iterator_accessors_match_vec_accessors() {
        let s = path_state(9);
        let v = PlayerView::build(&s, 4, 2);
        assert_eq!(v.frontier_iter().collect::<Vec<_>>(), v.frontier());
        assert_eq!(v.candidates_iter().collect::<Vec<_>>(), v.candidates());
        assert_eq!(v.candidate_count(), v.candidates().len());
        let isolated = PlayerView::build(&GameState::new(3), 1, 5);
        assert_eq!(isolated.candidate_count(), 0);
        assert_eq!(isolated.candidates_iter().count(), 0);
    }

    #[test]
    fn view_size_one_for_isolated_player() {
        let s = GameState::new(3);
        let v = PlayerView::build(&s, 1, 5);
        assert!(v.is_empty());
        assert_eq!(v.len(), 1);
        assert_eq!(v.ecc_in_view(), 0);
        assert!(v.candidates().is_empty());
    }
}
