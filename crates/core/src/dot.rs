//! Ownership-aware DOT export: renders a [`GameState`] as a Graphviz
//! digraph in which an arc `u -> v` means "player `u` bought the edge
//! towards `v`" (double-bought edges appear as two opposing arcs).
//!
//! Useful for debugging equilibria and for illustrating the
//! lower-bound constructions, whose ownership pattern (interior path
//! vertices buying backwards) is the crux of their stability.

use std::fmt::Write as _;

use ncg_graph::NodeId;

use crate::GameState;

/// Options for [`to_ownership_dot`].
#[derive(Debug, Clone, Default)]
pub struct OwnershipDotOptions {
    /// Digraph name (default `g`).
    pub name: String,
    /// Nodes to highlight (filled), e.g. a player's view.
    pub highlight: Vec<NodeId>,
}

/// Renders the state as a DOT digraph of purchases.
pub fn to_ownership_dot(state: &GameState, opts: &OwnershipDotOptions) -> String {
    let name = if opts.name.is_empty() { "g" } else { &opts.name };
    let mut highlight = opts.highlight.clone();
    highlight.sort_unstable();
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  node [shape=circle];");
    for u in 0..state.n() as NodeId {
        if highlight.binary_search(&u).is_ok() {
            let _ = writeln!(out, "  {u} [style=filled, fillcolor=lightgray];");
        } else {
            let _ = writeln!(out, "  {u};");
        }
    }
    for u in 0..state.n() as NodeId {
        for &v in state.strategy(u) {
            let _ = writeln!(out, "  {u} -> {v};");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arcs_follow_ownership() {
        let state = GameState::from_strategies(3, vec![vec![1], vec![0, 2], vec![]]);
        let dot = to_ownership_dot(&state, &OwnershipDotOptions::default());
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.contains("1 -> 0;"), "double-bought edge renders both arcs");
        assert!(dot.contains("1 -> 2;"));
        assert!(!dot.contains("2 -> 1;"));
    }

    #[test]
    fn highlight_marks_nodes() {
        let state = GameState::cycle_successor(4);
        let opts = OwnershipDotOptions { name: "cyc".into(), highlight: vec![2] };
        let dot = to_ownership_dot(&state, &opts);
        assert!(dot.starts_with("digraph cyc {"));
        assert!(dot.contains("2 [style=filled"));
        assert!(!dot.contains("1 [style=filled"));
    }

    #[test]
    fn empty_state_renders() {
        let dot = to_ownership_dot(&GameState::new(0), &OwnershipDotOptions::default());
        assert!(dot.contains("digraph g {"));
    }
}
