use serde::{Deserialize, Serialize};

use crate::scenario::{EdgeCost, EdgeCostModel, MoveRulePolicy, Scenario};
use crate::PlayerView;

/// Comparison slack for floating-point costs.
///
/// Player costs are sums of terms `α·w·(integer) + (integer)`, where
/// the per-edge weight `w` is `1` under uniform pricing and a quarter
/// step in `{1, 1.25, 1.5, 1.75}` under
/// [`EdgeCostModel::PerTarget`](crate::scenario::EdgeCostModel)
/// pricing (the multipliers are asserted to stay exact quarter steps,
/// which are exactly representable in an `f64`). On the paper's `α`
/// grid (multiples of 0.025) the smallest nonzero cost difference is
/// therefore `0.025` uniformly and `0.025/4 = 0.00625` with per-target
/// pricing — either way more than six orders of magnitude above `EPS`,
/// so `1e-9` cleanly separates "strictly better" from accumulated
/// rounding noise in every scenario the workspace ships.
pub const EPS: f64 = 1e-9;

/// Which usage cost the players pay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// MaxNCG: usage cost is the player's eccentricity (Eq. (2)).
    Max,
    /// SumNCG: usage cost is the sum of distances, her *status* (Eq. (1)).
    Sum,
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Objective::Max => write!(f, "MaxNCG"),
            Objective::Sum => write!(f, "SumNCG"),
        }
    }
}

/// The parameters of one game instance: edge price `α`, knowledge
/// radius `k`, the objective (Max or Sum), and the scenario axes of
/// the model zoo (edge-cost model and move rule, both defaulting to
/// the paper's uniform-α / buy-any-subset game).
///
/// `k` is a radius in hops; the paper's "full knowledge" runs use
/// `k = 1000`, far above any diameter reached — [`GameSpec::full_knowledge`]
/// reproduces that convention.
///
/// Serialization is hand-written for forward compatibility: the two
/// scenario fields are emitted only when non-default, so default specs
/// serialize byte-identically to the pre-scenario format and old
/// journals (`{"alpha":…,"k":…,"objective":"Max"}`) keep
/// deserializing. Unknown objective / scenario tags fail loudly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GameSpec {
    /// Edge activation cost `α > 0`.
    pub alpha: f64,
    /// Knowledge radius `k ≥ 1`.
    pub k: u32,
    /// Usage-cost objective.
    pub objective: Objective,
    /// Edge pricing model (default: every edge costs `α`).
    pub edge_cost: EdgeCostModel,
    /// Move rule (default: a move may rewrite the whole strategy).
    pub move_rule: MoveRulePolicy,
}

impl Serialize for GameSpec {
    fn to_value(&self) -> serde::Value {
        let mut fields: Vec<(String, serde::Value)> = vec![
            ("alpha".to_string(), Serialize::to_value(&self.alpha)),
            ("k".to_string(), Serialize::to_value(&self.k)),
            ("objective".to_string(), Serialize::to_value(&self.objective)),
        ];
        if self.edge_cost != EdgeCostModel::Uniform {
            fields.push(("edge_cost".to_string(), Serialize::to_value(&self.edge_cost)));
        }
        if self.move_rule != MoveRulePolicy::AnySubset {
            fields.push(("move_rule".to_string(), Serialize::to_value(&self.move_rule)));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for GameSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if v.as_object().is_none() {
            return Err(serde::DeError::invalid_type("object", v));
        }
        let edge_cost = match v.get_field("edge_cost") {
            Some(ec) => Deserialize::from_value(ec)?,
            None => EdgeCostModel::Uniform,
        };
        let move_rule = match v.get_field("move_rule") {
            Some(mr) => Deserialize::from_value(mr)?,
            None => MoveRulePolicy::AnySubset,
        };
        Ok(GameSpec {
            alpha: Deserialize::from_value(serde::require(v, "GameSpec", "alpha")?)?,
            k: Deserialize::from_value(serde::require(v, "GameSpec", "k")?)?,
            objective: Deserialize::from_value(serde::require(v, "GameSpec", "objective")?)?,
            edge_cost,
            move_rule,
        })
    }
}

impl GameSpec {
    /// A spec of the paper's default scenario (uniform pricing, subset
    /// moves) with the given objective.
    pub fn new(alpha: f64, k: u32, objective: Objective) -> Self {
        Scenario::from(objective).spec(alpha, k)
    }

    /// MaxNCG with the given `α` and `k`.
    pub fn max(alpha: f64, k: u32) -> Self {
        Self::new(alpha, k, Objective::Max)
    }

    /// SumNCG with the given `α` and `k`.
    pub fn sum(alpha: f64, k: u32) -> Self {
        Self::new(alpha, k, Objective::Sum)
    }

    /// The paper's full-knowledge convention: `k = 1000`.
    pub fn full_knowledge(alpha: f64, objective: Objective) -> Self {
        Self::new(alpha, 1000, objective)
    }

    /// The scenario axes of this spec, as one [`Scenario`] value.
    pub fn scenario(&self) -> Scenario {
        Scenario { objective: self.objective, edge_cost: self.edge_cost, move_rule: self.move_rule }
    }

    /// Total cost of a player buying `bought` *uniformly priced* edges
    /// with the given usage cost; `None` usage (disconnection) is `+∞`.
    ///
    /// This is the count-based form the exact engines price with — it
    /// ignores [`GameSpec::edge_cost`], so it is only meaningful on
    /// uniform specs (the solver front routes non-uniform specs away
    /// from the count-based engines). Scenario-aware callers use
    /// [`GameSpec::priced_total`].
    #[inline]
    pub fn total_cost(&self, bought: usize, usage: Option<u64>) -> f64 {
        match usage {
            Some(u) => self.alpha * bought as f64 + u as f64,
            None => f64::INFINITY,
        }
    }

    /// Total cost of playing `strategy_local` from `view` with the
    /// given usage: the spec's edge-cost model prices the strategy and
    /// the usage is added on top. On uniform specs this is exactly
    /// [`GameSpec::total_cost`] of the strategy length, bit for bit.
    #[inline]
    pub fn priced_total(
        &self,
        view: &PlayerView,
        strategy_local: &[ncg_graph::NodeId],
        usage: Option<u64>,
    ) -> f64 {
        match usage {
            Some(u) => self.edge_cost.strategy_price(self.alpha, view, strategy_local) + u as f64,
            None => f64::INFINITY,
        }
    }

    /// Whether cost `a` is strictly better (smaller) than `b`, with
    /// [`EPS`] slack.
    #[inline]
    pub fn strictly_better(a: f64, b: f64) -> bool {
        a < b - EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GameState;

    #[test]
    fn total_cost_combines_alpha_and_usage() {
        let spec = GameSpec::max(2.5, 3);
        assert!((spec.total_cost(2, Some(4)) - 9.0).abs() < 1e-12);
        assert_eq!(spec.total_cost(0, Some(0)), 0.0);
    }

    #[test]
    fn disconnection_is_infinitely_costly() {
        let spec = GameSpec::sum(0.1, 2);
        assert!(spec.total_cost(5, None).is_infinite());
    }

    #[test]
    fn strictly_better_uses_eps_slack() {
        assert!(GameSpec::strictly_better(1.0, 1.1));
        assert!(!GameSpec::strictly_better(1.0, 1.0));
        assert!(!GameSpec::strictly_better(1.0, 1.0 + EPS / 2.0));
        assert!(!GameSpec::strictly_better(1.1, 1.0));
    }

    #[test]
    fn constructors_set_fields() {
        let m = GameSpec::max(1.0, 4);
        assert_eq!(m.objective, Objective::Max);
        assert_eq!(m.k, 4);
        assert_eq!(m.edge_cost, EdgeCostModel::Uniform);
        assert_eq!(m.move_rule, MoveRulePolicy::AnySubset);
        let s = GameSpec::sum(1.0, 4);
        assert_eq!(s.objective, Objective::Sum);
        let f = GameSpec::full_knowledge(2.0, Objective::Max);
        assert_eq!(f.k, 1000);
    }

    #[test]
    fn objective_display() {
        assert_eq!(Objective::Max.to_string(), "MaxNCG");
        assert_eq!(Objective::Sum.to_string(), "SumNCG");
    }

    #[test]
    fn serde_round_trip() {
        let spec = GameSpec::max(0.025, 7);
        let json = serde_json::to_string(&spec).unwrap();
        let back: GameSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn default_specs_serialize_in_the_pre_scenario_format() {
        // Forward-compat contract: default scenario axes are omitted,
        // so the bytes match what the derived pre-scenario impl wrote.
        let json = serde_json::to_string(&GameSpec::max(0.5, 3)).unwrap();
        assert!(!json.contains("edge_cost"), "{json}");
        assert!(!json.contains("move_rule"), "{json}");
        assert!(json.contains("\"objective\":\"Max\""), "{json}");
    }

    #[test]
    fn pre_scenario_json_round_trips_with_defaults() {
        // A journal line written before the scenario axes existed.
        let old = r#"{"alpha":0.5,"k":3,"objective":"Sum"}"#;
        let spec: GameSpec = serde_json::from_str(old).unwrap();
        assert_eq!(spec, GameSpec::sum(0.5, 3));
        assert_eq!(spec.edge_cost, EdgeCostModel::Uniform);
        assert_eq!(spec.move_rule, MoveRulePolicy::AnySubset);
    }

    #[test]
    fn non_default_scenarios_round_trip() {
        let swap = Scenario::swap(Objective::Max).spec(1.0, 2);
        let json = serde_json::to_string(&swap).unwrap();
        assert!(json.contains("\"move_rule\":\"Swap\""), "{json}");
        assert_eq!(serde_json::from_str::<GameSpec>(&json).unwrap(), swap);

        let nu = Scenario::non_uniform(Objective::Sum, 42).spec(0.7, 4);
        let json = serde_json::to_string(&nu).unwrap();
        assert!(json.contains("edge_cost"), "{json}");
        assert_eq!(serde_json::from_str::<GameSpec>(&json).unwrap(), nu);
    }

    #[test]
    fn unknown_scenario_tags_fail_loudly() {
        let bad_obj = r#"{"alpha":0.5,"k":3,"objective":"Median"}"#;
        assert!(serde_json::from_str::<GameSpec>(bad_obj).is_err());
        let bad_rule = r#"{"alpha":0.5,"k":3,"objective":"Max","move_rule":"Teleport"}"#;
        assert!(serde_json::from_str::<GameSpec>(bad_rule).is_err());
        let bad_cost = r#"{"alpha":0.5,"k":3,"objective":"Max","edge_cost":"Quadratic"}"#;
        assert!(serde_json::from_str::<GameSpec>(bad_cost).is_err());
    }

    #[test]
    fn priced_total_matches_total_cost_on_uniform_specs() {
        let state = GameState::cycle_successor(8);
        let view = crate::PlayerView::build(&state, 0, 3);
        let spec = GameSpec::max(0.7, 3);
        let strat = view.candidates();
        assert_eq!(
            spec.priced_total(&view, &strat, Some(5)).to_bits(),
            spec.total_cost(strat.len(), Some(5)).to_bits()
        );
        assert!(spec.priced_total(&view, &strat, None).is_infinite());
    }

    #[test]
    fn priced_total_uses_per_target_multipliers() {
        let state = GameState::cycle_successor(8);
        let view = crate::PlayerView::build(&state, 0, 3);
        let spec = Scenario::non_uniform(Objective::Max, 3).spec(1.0, 3);
        let strat = view.candidates();
        let by_hand: f64 =
            strat.iter().map(|&l| spec.edge_cost.multiplier(view.sub.to_global(l))).sum::<f64>()
                + 5.0;
        assert!((spec.priced_total(&view, &strat, Some(5)) - by_hand).abs() < 1e-12);
    }
}
