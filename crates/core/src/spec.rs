use serde::{Deserialize, Serialize};

/// Comparison slack for floating-point costs.
///
/// Player costs are `α·(integer) + (integer)`; with the `α` grid used
/// by the paper (multiples of 0.025) the smallest nonzero cost
/// difference is `0.025`, so `1e-9` cleanly separates "strictly
/// better" from rounding noise.
pub const EPS: f64 = 1e-9;

/// Which usage cost the players pay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// MaxNCG: usage cost is the player's eccentricity (Eq. (2)).
    Max,
    /// SumNCG: usage cost is the sum of distances, her *status* (Eq. (1)).
    Sum,
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Objective::Max => write!(f, "MaxNCG"),
            Objective::Sum => write!(f, "SumNCG"),
        }
    }
}

/// The parameters of one game instance: edge price `α`, knowledge
/// radius `k`, and the objective (Max or Sum).
///
/// `k` is a radius in hops; the paper's "full knowledge" runs use
/// `k = 1000`, far above any diameter reached — [`GameSpec::full_knowledge`]
/// reproduces that convention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GameSpec {
    /// Edge activation cost `α > 0`.
    pub alpha: f64,
    /// Knowledge radius `k ≥ 1`.
    pub k: u32,
    /// Usage-cost objective.
    pub objective: Objective,
}

impl GameSpec {
    /// MaxNCG with the given `α` and `k`.
    pub fn max(alpha: f64, k: u32) -> Self {
        GameSpec { alpha, k, objective: Objective::Max }
    }

    /// SumNCG with the given `α` and `k`.
    pub fn sum(alpha: f64, k: u32) -> Self {
        GameSpec { alpha, k, objective: Objective::Sum }
    }

    /// The paper's full-knowledge convention: `k = 1000`.
    pub fn full_knowledge(alpha: f64, objective: Objective) -> Self {
        GameSpec { alpha, k: 1000, objective }
    }

    /// Total cost of a player buying `bought` edges with the given
    /// usage cost; `None` usage (disconnection) is `+∞`.
    #[inline]
    pub fn total_cost(&self, bought: usize, usage: Option<u64>) -> f64 {
        match usage {
            Some(u) => self.alpha * bought as f64 + u as f64,
            None => f64::INFINITY,
        }
    }

    /// Whether cost `a` is strictly better (smaller) than `b`, with
    /// [`EPS`] slack.
    #[inline]
    pub fn strictly_better(a: f64, b: f64) -> bool {
        a < b - EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cost_combines_alpha_and_usage() {
        let spec = GameSpec::max(2.5, 3);
        assert!((spec.total_cost(2, Some(4)) - 9.0).abs() < 1e-12);
        assert_eq!(spec.total_cost(0, Some(0)), 0.0);
    }

    #[test]
    fn disconnection_is_infinitely_costly() {
        let spec = GameSpec::sum(0.1, 2);
        assert!(spec.total_cost(5, None).is_infinite());
    }

    #[test]
    fn strictly_better_uses_eps_slack() {
        assert!(GameSpec::strictly_better(1.0, 1.1));
        assert!(!GameSpec::strictly_better(1.0, 1.0));
        assert!(!GameSpec::strictly_better(1.0, 1.0 + EPS / 2.0));
        assert!(!GameSpec::strictly_better(1.1, 1.0));
    }

    #[test]
    fn constructors_set_fields() {
        let m = GameSpec::max(1.0, 4);
        assert_eq!(m.objective, Objective::Max);
        assert_eq!(m.k, 4);
        let s = GameSpec::sum(1.0, 4);
        assert_eq!(s.objective, Objective::Sum);
        let f = GameSpec::full_knowledge(2.0, Objective::Max);
        assert_eq!(f.k, 1000);
    }

    #[test]
    fn objective_display() {
        assert_eq!(Objective::Max.to_string(), "MaxNCG");
        assert_eq!(Objective::Sum.to_string(), "SumNCG");
    }

    #[test]
    fn serde_round_trip() {
        let spec = GameSpec::max(0.025, 7);
        let json = serde_json::to_string(&spec).unwrap();
        let back: GameSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
