//! End-to-end fault-injection test of the work-queue orchestration:
//! a real coordinator process, one worker that is killed by an
//! injected fault mid-sweep (`NCG_FAULT=kill_after_cells:1` aborts it
//! after solving its first cell, before the result is reported), and
//! one clean worker that finishes the sweep. The artifacts must be
//! byte-identical to a single-process `--cold` run — crashes, lease
//! re-issue, and retries must leave no trace. The CI `chaos` job runs
//! the same scenario against the release binary with both workers
//! live; this in-tree test keeps it reproducible under `cargo test`.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ncg_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn binary() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ncg-experiments"));
    // Keep the tiny smoke grids single-threaded: three concurrent
    // processes on a CI box should not oversubscribe it.
    cmd.env("NCG_THREADS", "1");
    cmd
}

const PROFILE_ARGS: &[&str] = &["--smoke", "--seed", "7", "--reps", "2"];

/// Waits for a child with a deadline; kills and panics on timeout.
fn wait_with_deadline(
    child: &mut Child,
    name: &str,
    deadline: Duration,
) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        if start.elapsed() > deadline {
            let _ = child.kill();
            panic!("{name} did not finish within {deadline:?}");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Files that legitimately differ between a distributed and a local
/// run: the lease ledger and the port file are orchestration
/// artifacts, not results.
fn is_orchestration_artifact(name: &str) -> bool {
    name.ends_with("_leases.log") || name == "port"
}

#[test]
fn killed_worker_mid_sweep_still_yields_byte_identical_artifacts() {
    // Reference: single-process run, cold (warm starts are
    // bit-identical, so this also cross-checks the workers' warm
    // arenas against cold solves).
    let ref_dir = temp_dir("reference");
    let output = binary()
        .args(["figure5"])
        .args(PROFILE_ARGS)
        .args(["--cold", "--out"])
        .arg(&ref_dir)
        .output()
        .expect("spawning the reference run");
    assert!(
        output.status.success(),
        "reference run failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    // Distributed run: coordinator + a doomed worker + a clean one.
    let dist_dir = temp_dir("distributed");
    let port_file = dist_dir.join("port");
    let mut serve = binary()
        .args(["serve", "figure5"])
        .args(PROFILE_ARGS)
        .args(["--listen", "127.0.0.1:0", "--lease-timeout", "2", "--port-file"])
        .arg(&port_file)
        .arg("--out")
        .arg(&dist_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning the coordinator");

    // The doomed worker goes first, alone, so it deterministically
    // leases a cell: the fault aborts the process after its first
    // solve, *before* the result is reported — the crash the lease
    // queue exists to survive.
    let mut doomed = binary()
        .args(["work", "figure5"])
        .args(PROFILE_ARGS)
        .args(["--worker-id", "chaos-doomed", "--port-file"])
        .arg(&port_file)
        .env("NCG_FAULT", "kill_after_cells:1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning the doomed worker");
    let doomed_status = wait_with_deadline(&mut doomed, "doomed worker", Duration::from_secs(120));
    assert!(!doomed_status.success(), "the injected fault must abort the worker");

    let mut clean = binary()
        .args(["work", "figure5"])
        .args(PROFILE_ARGS)
        .args(["--worker-id", "chaos-clean", "--port-file"])
        .arg(&port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning the clean worker");

    let clean_status = wait_with_deadline(&mut clean, "clean worker", Duration::from_secs(300));
    assert!(clean_status.success(), "the clean worker must finish the sweep");
    let serve_status = wait_with_deadline(&mut serve, "coordinator", Duration::from_secs(300));
    let mut serve_stderr = String::new();
    if let Some(mut err) = serve.stderr.take() {
        use std::io::Read as _;
        let _ = err.read_to_string(&mut serve_stderr);
    }
    assert!(serve_status.success(), "coordinator failed; stderr:\n{serve_stderr}");
    // The crash must have been noticed and the cell re-issued, not
    // silently absorbed by a lucky schedule.
    assert!(
        std::fs::read_to_string(dist_dir.join("figure5_leases.log"))
            .expect("lease ledger exists")
            .contains("release"),
        "the doomed worker's death should release its lease"
    );

    // Byte-diff every artifact the two runs produced.
    let names = |dir: &Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| !is_orchestration_artifact(n))
            .collect();
        names.sort();
        names
    };
    let ref_names = names(&ref_dir);
    assert!(
        ref_names.iter().any(|n| n.ends_with(".csv")),
        "reference run produced no tables: {ref_names:?}"
    );
    assert_eq!(ref_names, names(&dist_dir), "artifact sets differ");
    for name in &ref_names {
        let a = std::fs::read(ref_dir.join(name)).unwrap();
        let b = std::fs::read(dist_dir.join(name)).unwrap();
        assert_eq!(a, b, "artifact {name} differs between local and distributed runs");
    }

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dist_dir);
}
