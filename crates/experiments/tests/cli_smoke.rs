//! End-to-end smoke test for the `ncg-experiments` CLI: run one real
//! dynamics figure (Figure 5, quick profile trimmed to one repetition)
//! with a fixed seed into a temp `--out` directory, then assert that
//! the artifacts exist and parse as well-formed CSV.

use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_out_dir() -> PathBuf {
    std::env::temp_dir().join(format!("ncg_cli_smoke_{}", std::process::id()))
}

/// Checks a table CSV: at least a header plus one data row, every row
/// with the same column count, and at least one parsable number in
/// each data row.
fn assert_parses_as_csv(path: &Path) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let rows: Vec<Vec<&str>> = text.lines().map(|line| line.split(',').collect()).collect();
    assert!(rows.len() >= 2, "{}: expected header + data rows", path.display());
    let columns = rows[0].len();
    assert!(columns >= 2, "{}: expected at least two columns", path.display());
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), columns, "{}: ragged row {i}", path.display());
    }
    for (i, row) in rows.iter().enumerate().skip(1) {
        let numeric = row.iter().any(|cell| {
            cell.split_whitespace().next().is_some_and(|tok| tok.parse::<f64>().is_ok())
        });
        assert!(numeric, "{}: no numeric cell in data row {i}: {row:?}", path.display());
    }
}

#[test]
fn figure5_quick_profile_writes_parsable_artifacts() {
    let out_dir = temp_out_dir();
    let _ = std::fs::remove_dir_all(&out_dir);

    let output = Command::new(env!("CARGO_BIN_EXE_ncg-experiments"))
        .args(["figure5", "--reps", "1", "--seed", "12345", "--out"])
        .arg(&out_dir)
        .output()
        .expect("spawning the ncg-experiments binary");
    assert!(
        output.status.success(),
        "CLI exited with {:?}; stderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );

    // The two Figure 5 panels plus the notes file.
    let avg = out_dir.join("figure5_avg_view_size.csv");
    let min = out_dir.join("figure5_min_view_size.csv");
    let notes = out_dir.join("figure5_notes.txt");
    for path in [&avg, &min, &notes] {
        assert!(path.is_file(), "missing artifact {}", path.display());
    }
    assert_parses_as_csv(&avg);
    assert_parses_as_csv(&min);
    let notes_text = std::fs::read_to_string(&notes).expect("notes readable");
    assert!(!notes_text.trim().is_empty(), "notes file is empty");

    let _ = std::fs::remove_dir_all(&out_dir);
}

#[test]
fn rejects_unknown_experiment_with_usage() {
    let output = Command::new(env!("CARGO_BIN_EXE_ncg-experiments"))
        .arg("no-such-figure")
        .output()
        .expect("spawning the ncg-experiments binary");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage:"), "expected usage text, got:\n{stderr}");
}
