//! End-to-end smoke test for the `ncg-experiments` CLI: run one real
//! dynamics figure (Figure 5, quick profile trimmed to one repetition)
//! with a fixed seed into a temp `--out` directory, then assert that
//! the artifacts exist and parse as well-formed CSV.

use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_out_dir() -> PathBuf {
    std::env::temp_dir().join(format!("ncg_cli_smoke_{}", std::process::id()))
}

/// Checks a table CSV: at least a header plus one data row, every row
/// with the same column count, and at least one parsable number in
/// each data row.
fn assert_parses_as_csv(path: &Path) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let rows: Vec<Vec<&str>> = text.lines().map(|line| line.split(',').collect()).collect();
    assert!(rows.len() >= 2, "{}: expected header + data rows", path.display());
    let columns = rows[0].len();
    assert!(columns >= 2, "{}: expected at least two columns", path.display());
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), columns, "{}: ragged row {i}", path.display());
    }
    for (i, row) in rows.iter().enumerate().skip(1) {
        let numeric = row.iter().any(|cell| {
            cell.split_whitespace().next().is_some_and(|tok| tok.parse::<f64>().is_ok())
        });
        assert!(numeric, "{}: no numeric cell in data row {i}: {row:?}", path.display());
    }
}

#[test]
fn figure5_quick_profile_writes_parsable_artifacts() {
    let out_dir = temp_out_dir();
    let _ = std::fs::remove_dir_all(&out_dir);

    let output = Command::new(env!("CARGO_BIN_EXE_ncg-experiments"))
        .args(["figure5", "--reps", "1", "--seed", "12345", "--out"])
        .arg(&out_dir)
        .output()
        .expect("spawning the ncg-experiments binary");
    assert!(
        output.status.success(),
        "CLI exited with {:?}; stderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );

    // The two Figure 5 panels plus the notes file.
    let avg = out_dir.join("figure5_avg_view_size.csv");
    let min = out_dir.join("figure5_min_view_size.csv");
    let notes = out_dir.join("figure5_notes.txt");
    for path in [&avg, &min, &notes] {
        assert!(path.is_file(), "missing artifact {}", path.display());
    }
    assert_parses_as_csv(&avg);
    assert_parses_as_csv(&min);
    let notes_text = std::fs::read_to_string(&notes).expect("notes readable");
    assert!(!notes_text.trim().is_empty(), "notes file is empty");

    let _ = std::fs::remove_dir_all(&out_dir);
}

/// Satellite of the sweep-engine rearchitecture: a two-shard
/// `figure5` run plus `merge` must reproduce the single-process
/// artifacts byte for byte — tables, notes, and the canonical JSONL
/// run journal (quick profile, 2 reps so each shard owns one).
#[test]
fn figure5_two_shard_merge_round_trips_byte_identically() {
    let single_dir = temp_out_dir().with_extension("single");
    let shard_dir = temp_out_dir().with_extension("sharded");
    let _ = std::fs::remove_dir_all(&single_dir);
    let _ = std::fs::remove_dir_all(&shard_dir);
    let base_args = ["figure5", "--reps", "2", "--seed", "4242"];
    let run = |extra: &[&str], out: &Path| {
        let output = Command::new(env!("CARGO_BIN_EXE_ncg-experiments"))
            .args(base_args)
            .args(extra)
            .arg("--out")
            .arg(out)
            .output()
            .expect("spawning the ncg-experiments binary");
        assert!(
            output.status.success(),
            "CLI {extra:?} exited with {:?}; stderr:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stderr)
        );
    };
    run(&[], &single_dir);
    run(&["--shards", "2", "--shard", "0"], &shard_dir);
    run(&["--shards", "2", "--shard", "1"], &shard_dir);
    // `merge` is spelled as a leading subcommand.
    let output = Command::new(env!("CARGO_BIN_EXE_ncg-experiments"))
        .args(["merge", "figure5", "--reps", "2", "--seed", "4242", "--shards", "2", "--out"])
        .arg(&shard_dir)
        .output()
        .expect("spawning the ncg-experiments binary");
    assert!(
        output.status.success(),
        "merge exited with {:?}; stderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );

    for artifact in [
        "figure5_avg_view_size.csv",
        "figure5_min_view_size.csv",
        "figure5_notes.txt",
        "figure5_runs.jsonl",
    ] {
        let a = std::fs::read(single_dir.join(artifact))
            .unwrap_or_else(|e| panic!("single-run artifact {artifact}: {e}"));
        let b = std::fs::read(shard_dir.join(artifact))
            .unwrap_or_else(|e| panic!("merged artifact {artifact}: {e}"));
        assert!(!a.is_empty(), "{artifact} is empty");
        assert_eq!(a, b, "sharded+merged {artifact} differs from the single-process run");
    }
    // The shard journals themselves partition the grid: together they
    // hold exactly the lines of the canonical journal.
    let canonical = std::fs::read_to_string(single_dir.join("figure5_runs.jsonl")).unwrap();
    let mut shard_lines: Vec<String> = (0..2)
        .flat_map(|i| {
            std::fs::read_to_string(shard_dir.join(format!("figure5_runs.shard{i}of2.jsonl")))
                .unwrap()
                .lines()
                .map(str::to_string)
                .collect::<Vec<_>>()
        })
        .collect();
    let mut canonical_lines: Vec<String> = canonical.lines().map(str::to_string).collect();
    shard_lines.sort();
    canonical_lines.sort();
    assert_eq!(shard_lines, canonical_lines);

    let _ = std::fs::remove_dir_all(&single_dir);
    let _ = std::fs::remove_dir_all(&shard_dir);
}

#[test]
fn rejects_unknown_experiment_with_usage() {
    let output = Command::new(env!("CARGO_BIN_EXE_ncg-experiments"))
        .arg("no-such-figure")
        .output()
        .expect("spawning the ncg-experiments binary");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage:"), "expected usage text, got:\n{stderr}");
}
