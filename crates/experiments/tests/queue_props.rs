//! Lease-protocol edge-case tests for the work-queue coordinator,
//! driven entirely through [`Coordinator::handle`] — no sockets, no
//! sleeps: time is an explicit `Instant` so every race is scripted.
//!
//! The recurring assertion is the orchestration contract: whatever
//! sequence of crashes, duplicate completions, expiries, and
//! coordinator restarts occurs, the finished run journal is
//! byte-identical to a single-process run's.

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ncg_core::Objective;
use ncg_dynamics::CacheArena;
use ncg_experiments::engine::{self, SweepContext, SweepMode};
use ncg_experiments::journal::{self, JournalLine};
use ncg_experiments::protocol::{Reply, Request};
use ncg_experiments::queue::{Coordinator, CoordinatorOptions};
use ncg_experiments::sweep::{solve_cell_guarded, RunRecord, SweepSpec};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ncg_queue_props_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small 2×1×2 = 4-cell plan.
fn plan() -> Vec<SweepSpec> {
    vec![SweepSpec::tree("main", 10, 2, 7, vec![0.5, 2.0], vec![2], Objective::Max)]
}

/// The single-process reference journal bytes for a plan.
fn reference_bytes(specs: &[SweepSpec], experiment: &str) -> Vec<u8> {
    let dir = temp_dir(&format!("ref_{experiment}"));
    let ctx =
        SweepContext { mode: SweepMode::Local, journal_dir: Some(dir.clone()), warm_start: true };
    let mut sink = |_: usize, _: ncg_experiments::sweep::CellId, _: &RunRecord| {};
    engine::execute(&ctx, experiment, specs, &mut sink);
    let bytes = fs::read(journal::journal_path(&dir, experiment)).unwrap();
    let _ = fs::remove_dir_all(&dir);
    bytes
}

/// Solves one cell the way a worker would (cold arena — warm starts
/// are bit-identical anyway) and renders its record JSON.
fn solve_json(specs: &[SweepSpec], si: usize, cell: usize) -> String {
    let spec = &specs[si];
    let id = spec.cell(cell);
    let states = spec.states();
    let mut arena = CacheArena::new();
    let result = solve_cell_guarded(
        &states[id.rep],
        spec.scenario(),
        spec.alphas[id.ai],
        spec.ks[id.ki],
        false,
        &mut arena,
        false,
    )
    .expect("clean solve");
    let record =
        RunRecord::new(spec.class(), spec.n, spec.alphas[id.ai], spec.ks[id.ki], id.rep, &result);
    serde_json::to_string(&record).unwrap()
}

fn hello(specs: &[SweepSpec], worker: &str, experiment: &str) -> Request {
    Request::Hello {
        worker: worker.to_string(),
        experiment: experiment.to_string(),
        fingerprints: specs.iter().map(|s| s.fingerprint()).collect(),
    }
}

fn opts(lease: Duration) -> CoordinatorOptions {
    CoordinatorOptions { lease, max_retries: 3 }
}

/// Leases one cell for `worker` (asserting a grant) and returns it.
fn lease(c: &Coordinator, worker: &str, now: Instant) -> (usize, usize) {
    match c.handle(worker, Request::Lease, now) {
        Some(Reply::Cell { si, cell }) => (si, cell),
        other => panic!("expected a cell grant for {worker}, got {other:?}"),
    }
}

/// Reports a solved cell and returns the ACK's duplicate flag.
fn report(
    c: &Coordinator,
    specs: &[SweepSpec],
    worker: &str,
    key: (usize, usize),
    now: Instant,
) -> bool {
    let (si, cell) = key;
    let record = solve_json(specs, si, cell);
    match c.handle(worker, Request::Result { si, cell, record }, now) {
        Some(Reply::Ack { duplicate }) => duplicate,
        other => panic!("expected an ACK, got {other:?}"),
    }
}

#[test]
fn two_workers_out_of_order_match_local_bytes() {
    let specs = plan();
    let reference = reference_bytes(&specs, "q_order");
    let dir = temp_dir("order");
    let c = Coordinator::open(&dir, "q_order", plan(), opts(Duration::from_secs(60))).unwrap();
    let t0 = Instant::now();
    for w in ["a", "b"] {
        assert!(
            matches!(c.handle(w, hello(&specs, w, "q_order"), t0), Some(Reply::Welcome { .. })),
            "handshake must be accepted"
        );
    }
    // Lease all four cells across two workers, then report them in
    // reverse order: completion order must not leak into the journal.
    let grants: Vec<_> =
        (0..4).map(|i| lease(&c, if i % 2 == 0 { "a" } else { "b" }, t0)).collect();
    assert!(matches!(c.handle("a", Request::Lease, t0), Some(Reply::Wait { .. })));
    for (i, &key) in grants.iter().enumerate().rev() {
        assert!(!report(&c, &specs, if i % 2 == 0 { "a" } else { "b" }, key, t0));
    }
    assert!(matches!(c.handle("a", Request::Lease, t0), Some(Reply::Done)));
    assert!(c.is_finished());
    c.handle("a", Request::Bye, t0);
    c.finish().unwrap();
    assert_eq!(
        fs::read(journal::journal_path(&dir, "q_order")).unwrap(),
        reference,
        "out-of-order distributed completion diverged from the local journal"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_completions_are_idempotent() {
    let specs = plan();
    let reference = reference_bytes(&specs, "q_dup");
    let dir = temp_dir("dup");
    let c = Coordinator::open(&dir, "q_dup", plan(), opts(Duration::from_secs(60))).unwrap();
    let t0 = Instant::now();
    for _ in 0..4 {
        let key = lease(&c, "a", t0);
        assert!(!report(&c, &specs, "a", key, t0), "first completion is fresh");
        // A retransmitted RESULT (worker never saw the ACK) must be
        // acknowledged as a duplicate and journaled zero extra times.
        assert!(report(&c, &specs, "a", key, t0), "second completion is a duplicate");
    }
    c.finish().unwrap();
    assert_eq!(fs::read(journal::journal_path(&dir, "q_dup")).unwrap(), reference);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn lease_expiry_racing_a_late_completion_keeps_bytes_identical() {
    let specs = plan();
    let reference = reference_bytes(&specs, "q_race");
    let dir = temp_dir("race");
    let lease_for = Duration::from_millis(100);
    let c = Coordinator::open(&dir, "q_race", plan(), opts(lease_for)).unwrap();
    let t0 = Instant::now();
    // Worker a leases cell 0, then goes silent (no heartbeats).
    let key_a = lease(&c, "a", t0);
    // Past the lease timeout, b asks: the cell is re-issued.
    let t_late = t0 + lease_for * 2;
    let key_b = lease(&c, "b", t_late);
    assert_eq!(key_a, key_b, "the expired lease's cell is re-issued first");
    // a was only slow, not dead: its genuine result lands first…
    assert!(!report(&c, &specs, "a", key_a, t_late), "late result is still the first");
    // …and b's duplicate of the same (deterministic) cell is folded away.
    assert!(report(&c, &specs, "b", key_b, t_late), "re-issued copy completes as a duplicate");
    // Drain the rest normally.
    loop {
        match c.handle("b", Request::Lease, t_late) {
            Some(Reply::Cell { si, cell }) => {
                report(&c, &specs, "b", (si, cell), t_late);
            }
            Some(Reply::Done) => break,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    c.finish().unwrap();
    assert_eq!(
        fs::read(journal::journal_path(&dir, "q_race")).unwrap(),
        reference,
        "the expiry/late-completion race changed the journal bytes"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn coordinator_crash_mid_lease_resumes_and_finishes_identically() {
    let specs = plan();
    let reference = reference_bytes(&specs, "q_crash");
    let dir = temp_dir("crash");
    let t0 = Instant::now();
    // First coordinator: two cells leased, one completed — then the
    // process "dies" (drop without finish; the ledger keeps the grant
    // events, the journal keeps the one completion).
    {
        let c = Coordinator::open(&dir, "q_crash", plan(), opts(Duration::from_secs(60))).unwrap();
        let key = lease(&c, "a", t0);
        let _orphan = lease(&c, "b", t0);
        assert!(!report(&c, &specs, "a", key, t0));
        assert_eq!(c.progress(), (1, 4));
    }
    // Restarted coordinator: the completed cell resumes from the
    // journal, the orphaned lease is simply pending again.
    let c = Coordinator::open(&dir, "q_crash", plan(), opts(Duration::from_secs(60))).unwrap();
    assert_eq!(c.progress(), (1, 4), "exactly the journaled completion survives the crash");
    let mut granted = Vec::new();
    loop {
        match c.handle("c", Request::Lease, t0) {
            Some(Reply::Cell { si, cell }) => {
                granted.push((si, cell));
                report(&c, &specs, "c", (si, cell), t0);
            }
            Some(Reply::Done) => break,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(granted.len(), 3, "only the three unjournaled cells are re-issued");
    c.finish().unwrap();
    assert_eq!(
        fs::read(journal::journal_path(&dir, "q_crash")).unwrap(),
        reference,
        "crash + resume changed the journal bytes"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn disconnect_requeues_leases_immediately() {
    let dir = temp_dir("disc");
    let c = Coordinator::open(&dir, "q_disc", plan(), opts(Duration::from_secs(60))).unwrap();
    let t0 = Instant::now();
    let key = lease(&c, "a", t0);
    // a's connection drops without a BYE: no waiting out the lease.
    c.disconnect("a");
    assert_eq!(lease(&c, "b", t0), key, "the dead worker's cell re-issues at once");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_handshakes_are_rejected() {
    let specs = plan();
    let dir = temp_dir("hello");
    let c = Coordinator::open(&dir, "q_hello", plan(), opts(Duration::from_secs(60))).unwrap();
    let t0 = Instant::now();
    // Wrong experiment name.
    match c.handle("a", hello(&specs, "a", "other_exp"), t0) {
        Some(Reply::Reject { reason }) => assert!(reason.contains("q_hello"), "{reason}"),
        other => panic!("expected a rejection, got {other:?}"),
    }
    // Right experiment, different profile (seed changed → different
    // fingerprints): the worker would solve different instances.
    let mut other = plan();
    other[0].seed = 8;
    match c.handle("a", hello(&other, "a", "q_hello"), t0) {
        Some(Reply::Reject { reason }) => assert!(reason.contains("fingerprint"), "{reason}"),
        other => panic!("expected a rejection, got {other:?}"),
    }
    // And a result whose record does not name the claimed cell.
    let key = lease(&c, "a", t0);
    let wrong = solve_json(&specs, key.0, (key.1 + 1) % specs[0].cell_count());
    match c.handle("a", Request::Result { si: key.0, cell: key.1, record: wrong }, t0) {
        Some(Reply::Reject { reason }) => assert!(reason.contains("do not name"), "{reason}"),
        other => panic!("expected a rejection, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn repeated_panics_abandon_the_cell_and_finish_reports_it() {
    let specs = plan();
    let dir = temp_dir("abandon");
    let c = Coordinator::open(
        &dir,
        "q_fail",
        plan(),
        CoordinatorOptions { lease: Duration::from_secs(60), max_retries: 1 },
    )
    .unwrap();
    let t0 = Instant::now();
    let key = lease(&c, "a", t0);
    let failed = |attempt: usize| Request::Failed {
        si: key.0,
        cell: key.1,
        message: format!("injected panic, attempt {attempt}"),
    };
    assert!(matches!(c.handle("a", failed(1), t0), Some(Reply::Ack { duplicate: false })));
    assert_eq!(lease(&c, "a", t0), key, "first failure re-queues the cell");
    assert!(matches!(c.handle("a", failed(2), t0), Some(Reply::Ack { duplicate: false })));
    // The abandoned cell no longer blocks the rest of the sweep.
    loop {
        match c.handle("a", Request::Lease, t0) {
            Some(Reply::Cell { si, cell }) => {
                assert_ne!((si, cell), key, "an abandoned cell must not be re-issued");
                report(&c, &specs, "a", (si, cell), t0);
            }
            Some(Reply::Done) => break,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    let err = c.finish().expect_err("finish must refuse to bless a sweep with holes");
    assert!(err.contains("abandoned"), "{err}");
    // The failure is journaled as a structured marker (kept by
    // compaction because no completed retry supersedes it)…
    let lines = journal::read_lines(&journal::journal_path(&dir, "q_fail")).unwrap();
    let failures: Vec<_> = lines
        .iter()
        .filter_map(|l| match l {
            JournalLine::Failed(f) => Some(f),
            JournalLine::Ok(_) => None,
        })
        .collect();
    assert_eq!(failures.len(), 1);
    assert!(failures[0].failed.contains("attempt 2"));
    // …and the three completed cells still parse for a future resume.
    assert_eq!(lines.len() - failures.len(), 3);
    let _ = fs::remove_dir_all(&dir);
}
