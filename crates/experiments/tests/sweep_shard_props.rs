//! Property and scenario tests for the streaming sharded sweep
//! engine: the acceptance criteria of the sweep-engine rearchitecture.
//!
//! * **Shard/merge parity** (property-tested over grid shapes): a
//!   `--shards M` run of every shard followed by `merge` folds the
//!   exact same canonical record stream and writes byte-identical
//!   journals to a single-process run.
//! * **Warm-start parity** (same property runs): records produced
//!   with per-rep `CacheArena` warm starts are bit-identical to cold
//!   runs.
//! * **Kill/resume**: truncating a journal mid-grid (including a
//!   torn trailing line) and re-running recomputes only the missing
//!   cells and ends with byte-identical artifacts.
//! * **Merge refuses incomplete inputs** instead of writing wrong
//!   tables.

use std::fs;
use std::path::PathBuf;

use ncg_core::Objective;
use ncg_experiments::engine::{self, SweepContext, SweepMode};
use ncg_experiments::journal;
use ncg_experiments::sweep::{RunRecord, SweepSpec};
use proptest::prelude::*;

/// A unique temp directory per test invocation.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ncg_shard_props_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Executes and captures the canonical fold stream.
fn capture(
    ctx: &SweepContext,
    experiment: &str,
    specs: &[SweepSpec],
) -> (Vec<(usize, usize, RunRecord)>, engine::ExecReport) {
    let mut folded: Vec<(usize, usize, RunRecord)> = Vec::new();
    let report = engine::execute(ctx, experiment, specs, &mut |si, cell, rec| {
        folded.push((si, cell.index, rec.clone()));
    });
    (folded, report)
}

/// Small two-sweep plans over varying grid shapes: a tree sweep and,
/// sometimes, a second tree sweep at a different size (exercising
/// multi-sweep journals like Figures 6/7/10 use).
type Shape = (usize, usize, Vec<f64>, Vec<u32>, usize, bool);

fn arb_shape() -> impl Strategy<Value = Shape> {
    ((8..=12usize, 1..=3usize), (0..=2usize, 0..=2usize), (2..=3usize, any::<bool>())).prop_map(
        |((n, reps), (ai, ki), (shards, second))| {
            let alpha_pool = [vec![0.5], vec![2.0], vec![0.5, 2.0]];
            let k_pool = [vec![2u32], vec![3u32], vec![2u32, 1000]];
            (n, reps, alpha_pool[ai].clone(), k_pool[ki].clone(), shards, second)
        },
    )
}

fn plan_of(shape: &Shape) -> Vec<SweepSpec> {
    let (n, reps, alphas, ks, _, second) = shape;
    let mut specs =
        vec![SweepSpec::tree("main", *n, *reps, 42, alphas.clone(), ks.clone(), Objective::Max)];
    if *second {
        specs.push(SweepSpec::tree(
            "aux",
            n - 2,
            *reps,
            43,
            alphas.clone(),
            ks.clone(),
            Objective::Max,
        ));
    }
    specs
}

proptest! {
    // Each case runs every cell of a small grid 3–4 times (local,
    // shards, cold); keep the count tame for tier-1.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline acceptance criterion: sharded + merged output is
    /// bit-identical to a single-process run — the fold stream, the
    /// canonical journal bytes, and warm vs cold execution.
    #[test]
    fn sharded_merge_is_byte_identical_to_local(shape in arb_shape()) {
        let specs = plan_of(&shape);
        let shards = shape.4;
        let dir_local = temp_dir("local");
        let dir_shard = temp_dir("shard");

        // Single-process reference run (journaled).
        let local_ctx = SweepContext {
            mode: SweepMode::Local,
            journal_dir: Some(dir_local.clone()),
            warm_start: true,
        };
        let (local_fold, local_report) = capture(&local_ctx, "prop", &specs);
        prop_assert!(local_report.folded);
        let total: usize = specs.iter().map(|s| s.cell_count()).sum();
        prop_assert_eq!(local_fold.len(), total);

        // Cold single-process run: warm starts must be unobservable.
        let cold_ctx = SweepContext { journal_dir: None, warm_start: false, ..local_ctx.clone() };
        let (cold_fold, _) = capture(&cold_ctx, "prop", &specs);
        prop_assert_eq!(&local_fold, &cold_fold, "warm-start changed an outcome");

        // Every shard, then merge.
        for index in 0..shards {
            let ctx = SweepContext {
                mode: SweepMode::Shard { count: shards, index },
                journal_dir: Some(dir_shard.clone()),
                warm_start: true,
            };
            let (folded, report) = capture(&ctx, "prop", &specs);
            prop_assert!(folded.is_empty(), "shard mode must not fold");
            prop_assert!(!report.folded);
            prop_assert!(report.shard_note("prop").is_some());
        }
        let merge_ctx = SweepContext {
            mode: SweepMode::Merge { count: shards },
            journal_dir: Some(dir_shard.clone()),
            warm_start: true,
        };
        let (merge_fold, merge_report) = capture(&merge_ctx, "prop", &specs);
        prop_assert!(merge_report.folded);
        prop_assert_eq!(&local_fold, &merge_fold, "merge fold diverged from local");

        // Byte identity of the canonical journals.
        let local_bytes = fs::read(journal::journal_path(&dir_local, "prop")).unwrap();
        let merged_bytes = fs::read(journal::journal_path(&dir_shard, "prop")).unwrap();
        prop_assert!(!local_bytes.is_empty());
        prop_assert_eq!(local_bytes, merged_bytes, "merged journal bytes diverged");

        let _ = fs::remove_dir_all(&dir_local);
        let _ = fs::remove_dir_all(&dir_shard);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Satellite of the work-queue PR: shard journals written under
    /// *different* `--reps` splits of the same grid merge cleanly, as
    /// long as their union covers the merge's repetition count. The
    /// grid fingerprint deliberately excludes `reps` (per-rep
    /// instance seeds derive from the base seed alone), and merge
    /// re-derives every record's canonical index under the merge
    /// plan, dropping excess repetitions with a warning.
    #[test]
    fn merge_accepts_heterogeneous_reps_splits(
        reps in 1..=3usize,
        extra_a in 0..=2usize,
        extra_b in 0..=2usize,
    ) {
        let spec_with = |r: usize| {
            vec![SweepSpec::tree("main", 9, r, 21, vec![0.5, 2.0], vec![2], Objective::Max)]
        };
        // Reference: a single-process run at the merge's reps.
        let dir_local = temp_dir("hetero_local");
        let local_ctx = SweepContext {
            mode: SweepMode::Local,
            journal_dir: Some(dir_local.clone()),
            warm_start: true,
        };
        let (local_fold, _) = capture(&local_ctx, "hr", &spec_with(reps));

        // Each shard ran under its own (larger or equal) reps count —
        // e.g. one machine pre-computed more repetitions than the
        // other — so the two shard journals disagree about the grid's
        // repetition axis.
        let dir = temp_dir("hetero_shards");
        for (index, shard_reps) in [(0usize, reps + extra_a), (1usize, reps + extra_b)] {
            let ctx = SweepContext {
                mode: SweepMode::Shard { count: 2, index },
                journal_dir: Some(dir.clone()),
                warm_start: true,
            };
            capture(&ctx, "hr", &spec_with(shard_reps));
        }
        let merge_ctx = SweepContext {
            mode: SweepMode::Merge { count: 2 },
            journal_dir: Some(dir.clone()),
            warm_start: true,
        };
        let (merge_fold, merge_report) = capture(&merge_ctx, "hr", &spec_with(reps));
        prop_assert!(merge_report.folded);
        prop_assert_eq!(&local_fold, &merge_fold, "heterogeneous-reps merge fold diverged");
        prop_assert_eq!(
            fs::read(journal::journal_path(&dir_local, "hr")).unwrap(),
            fs::read(journal::journal_path(&dir, "hr")).unwrap(),
            "heterogeneous-reps merged journal bytes diverged"
        );
        let _ = fs::remove_dir_all(&dir_local);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn killed_run_resumes_to_identical_artifacts() {
    // One ~12-cell grid; reference run in dirA, killed + resumed run
    // in dirB; artifacts must match byte for byte.
    let specs = vec![SweepSpec::tree("main", 10, 3, 7, vec![0.5, 2.0], vec![2, 3], Objective::Max)];
    let dir_a = temp_dir("resume_a");
    let dir_b = temp_dir("resume_b");
    let ctx = |dir: &PathBuf| SweepContext {
        mode: SweepMode::Local,
        journal_dir: Some(dir.clone()),
        warm_start: true,
    };
    let (fold_a, _) = capture(&ctx(&dir_a), "kill", &specs);
    let path_a = journal::journal_path(&dir_a, "kill");
    let bytes_a = fs::read_to_string(&path_a).unwrap();

    // "Kill" a fresh run mid-grid: keep the first 5 journal lines and
    // a torn partial line, as a SIGKILL mid-write would leave behind.
    let (_, first) = capture(&ctx(&dir_b), "kill", &specs);
    assert_eq!(first.cells_run, 12);
    let path_b = journal::journal_path(&dir_b, "kill");
    let full = fs::read_to_string(&path_b).unwrap();
    let mut truncated: String = full.lines().take(5).map(|l| format!("{l}\n")).collect();
    truncated.push_str(&full.lines().nth(5).unwrap()[..20]);
    fs::write(&path_b, &truncated).unwrap();

    // Resume: exactly the 7 missing cells run, artifacts match.
    let (fold_b, report) = capture(&ctx(&dir_b), "kill", &specs);
    assert_eq!(report.cells_resumed, 5);
    assert_eq!(report.cells_run, 7);
    assert_eq!(fold_a, fold_b, "resumed fold stream diverged");
    assert_eq!(bytes_a, fs::read_to_string(&path_b).unwrap(), "resumed journal diverged");

    // Idempotent re-run: everything resumes, nothing recomputes.
    let (fold_c, report) = capture(&ctx(&dir_b), "kill", &specs);
    assert_eq!(report.cells_run, 0);
    assert_eq!(report.cells_resumed, 12);
    assert_eq!(fold_a, fold_c);
    assert_eq!(bytes_a, fs::read_to_string(&path_b).unwrap());

    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

#[test]
fn killed_shard_resumes_and_merges_identically() {
    // Reference: two uninterrupted shards + merge in dirA. In dirB,
    // shard 0's journal is truncated mid-grid and re-run before the
    // merge. Both merged journals must be byte-identical.
    let specs = vec![SweepSpec::tree("main", 10, 4, 9, vec![0.5, 2.0], vec![2], Objective::Max)];
    let dir_a = temp_dir("shardkill_a");
    let dir_b = temp_dir("shardkill_b");
    let shard_ctx = |dir: &PathBuf, index: usize| SweepContext {
        mode: SweepMode::Shard { count: 2, index },
        journal_dir: Some(dir.clone()),
        warm_start: true,
    };
    let merge_ctx = |dir: &PathBuf| SweepContext {
        mode: SweepMode::Merge { count: 2 },
        journal_dir: Some(dir.clone()),
        warm_start: true,
    };
    for dir in [&dir_a, &dir_b] {
        capture(&shard_ctx(dir, 0), "sk", &specs);
        capture(&shard_ctx(dir, 1), "sk", &specs);
    }
    // Kill shard 0 of dirB retroactively: drop half its journal.
    let shard0 = journal::shard_journal_path(&dir_b, "sk", 0, 2);
    let full = fs::read_to_string(&shard0).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    assert_eq!(lines.len(), 4, "shard 0 owns reps 0 and 2 of a 2×1×4 grid");
    fs::write(&shard0, format!("{}\n{}\n", lines[0], lines[1])).unwrap();
    let (_, report) = capture(&shard_ctx(&dir_b, 0), "sk", &specs);
    assert_eq!(report.cells_resumed, 2);
    assert_eq!(report.cells_run, 2);

    let (fold_a, _) = capture(&merge_ctx(&dir_a), "sk", &specs);
    let (fold_b, _) = capture(&merge_ctx(&dir_b), "sk", &specs);
    assert_eq!(fold_a, fold_b);
    assert_eq!(
        fs::read(journal::journal_path(&dir_a, "sk")).unwrap(),
        fs::read(journal::journal_path(&dir_b, "sk")).unwrap()
    );
    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

#[test]
fn merge_refuses_missing_or_incomplete_shards() {
    let specs = vec![SweepSpec::tree("main", 8, 2, 3, vec![1.0], vec![2], Objective::Max)];
    let dir = temp_dir("incomplete");
    // Only shard 0 of 2 has run.
    capture(
        &SweepContext {
            mode: SweepMode::Shard { count: 2, index: 0 },
            journal_dir: Some(dir.clone()),
            warm_start: true,
        },
        "inc",
        &specs,
    );
    let merge = || {
        let specs = specs.clone();
        let dir = dir.clone();
        std::panic::catch_unwind(move || {
            let mut sink = |_: usize, _: ncg_experiments::sweep::CellId, _: &RunRecord| {};
            engine::execute(
                &SweepContext {
                    mode: SweepMode::Merge { count: 2 },
                    journal_dir: Some(dir),
                    warm_start: true,
                },
                "inc",
                &specs,
                &mut sink,
            )
        })
    };
    let err = merge().expect_err("merge must refuse a missing shard journal");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("missing shard journal"), "unexpected panic: {msg}");
    // An empty journal for shard 1 (ran, owned nothing it could own
    // here? it owns rep 1) is still incomplete: cells are missing.
    fs::write(journal::shard_journal_path(&dir, "inc", 1, 2), "").unwrap();
    let err = merge().expect_err("merge must refuse an incomplete grid");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("incomplete"), "unexpected panic: {msg}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_journal_from_another_profile_is_rejected() {
    let dir = temp_dir("stale");
    let specs_a = vec![SweepSpec::tree("main", 10, 2, 11, vec![1.0], vec![2], Objective::Max)];
    let ctx =
        SweepContext { mode: SweepMode::Local, journal_dir: Some(dir.clone()), warm_start: true };
    capture(&ctx, "stale", &specs_a);
    // Same experiment name, different α grid: the journaled records
    // no longer match their cells.
    let specs_b = vec![SweepSpec::tree("main", 10, 2, 11, vec![3.0], vec![2], Objective::Max)];
    let result = std::panic::catch_unwind(move || {
        let mut sink = |_: usize, _: ncg_experiments::sweep::CellId, _: &RunRecord| {};
        engine::execute(&ctx, "stale", &specs_b, &mut sink)
    });
    let err = result.expect_err("stale journals must not be silently merged");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("was written under a different profile"), "unexpected panic: {msg}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_journal_from_another_seed_is_rejected() {
    // The subtle case the grid fingerprint exists for: a record's own
    // (α, k, rep, n, class) fields cannot reveal a changed seed.
    let dir = temp_dir("stale_seed");
    let mut spec = SweepSpec::tree("main", 10, 2, 11, vec![1.0], vec![2], Objective::Max);
    let ctx =
        SweepContext { mode: SweepMode::Local, journal_dir: Some(dir.clone()), warm_start: true };
    capture(&ctx, "ss", std::slice::from_ref(&spec));
    spec.seed = 12;
    let result = std::panic::catch_unwind(move || {
        let mut sink = |_: usize, _: ncg_experiments::sweep::CellId, _: &RunRecord| {};
        engine::execute(&ctx, "ss", &[spec], &mut sink)
    });
    let err = result.expect_err("a changed --seed must not silently reuse the journal");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("was written under a different profile"), "unexpected panic: {msg}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn empty_shards_produce_journals_and_merge_cleanly() {
    // 1 rep across 2 shards: shard 1 owns nothing but must still
    // leave an (empty) journal so merge can proceed.
    let specs = vec![SweepSpec::tree("main", 9, 1, 5, vec![1.0], vec![2], Objective::Max)];
    let dir = temp_dir("empty_shard");
    for index in 0..2 {
        let (_, report) = capture(
            &SweepContext {
                mode: SweepMode::Shard { count: 2, index },
                journal_dir: Some(dir.clone()),
                warm_start: true,
            },
            "es",
            &specs,
        );
        assert_eq!(report.cells_run, if index == 0 { 1 } else { 0 });
    }
    let path1 = journal::shard_journal_path(&dir, "es", 1, 2);
    assert!(path1.is_file(), "empty shard must still write its journal");
    assert_eq!(fs::read_to_string(&path1).unwrap(), "");
    let (folded, report) = capture(
        &SweepContext {
            mode: SweepMode::Merge { count: 2 },
            journal_dir: Some(dir.clone()),
            warm_start: true,
        },
        "es",
        &specs,
    );
    assert!(report.folded);
    assert_eq!(folded.len(), 1);
    let _ = fs::remove_dir_all(&dir);
}
