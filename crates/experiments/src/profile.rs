//! Parameter profiles: the paper's exact grids and a quick default.

/// The parameter grid an experiment sweeps.
///
/// The paper's grids (Section 5.1–5.2):
///
/// * `α ∈ {0.025, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1, 1.5, 2, 3, 5, 7, 10}`
/// * `k ∈ {2, 3, 4, 5, 6, 7, 10, 15, 20, 25, 30, 1000}` (1000 ≈ full
///   knowledge)
/// * random trees with `n ∈ {20, 30, 50, 70, 100, 200}`
/// * `G(n,p)` with the six `(n, p)` rows of Table II
/// * 20 repetitions per cell.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Repetitions per parameter cell (paper: 20).
    pub reps: usize,
    /// Edge-price grid.
    pub alphas: Vec<f64>,
    /// Knowledge-radius grid.
    pub ks: Vec<u32>,
    /// Random-tree sizes.
    pub tree_ns: Vec<usize>,
    /// Erdős–Rényi `(n, p)` rows.
    pub er_configs: Vec<(usize, f64)>,
    /// Scale-tier player count (`scale-dynamics`; paper-scale is
    /// `10^6`, the CI smoke lane runs `10^5`).
    pub scale_n: usize,
    /// Scale-tier expected degree (`p = avg_deg / (n - 1)`).
    pub scale_avg_deg: f64,
    /// Scale-tier repetitions (kept separate from `reps`: one rep is
    /// a full million-node dynamics, not a 100-node one).
    pub scale_reps: usize,
    /// Scale-tier round cap (the approximate dynamics reports
    /// `capped` runs honestly instead of iterating to convergence).
    pub scale_rounds: usize,
    /// Scale-tier edge-price grid (much smaller than `alphas`).
    pub scale_alphas: Vec<f64>,
    /// Scale-tier knowledge-radius grid (small `k` only — a radius-7
    /// ball at average degree 10 is already the whole graph).
    pub scale_ks: Vec<u32>,
    /// Base seed; every workload seed derives from it.
    pub base_seed: u64,
    /// Human-readable name, recorded in outputs.
    pub name: &'static str,
}

impl Profile {
    /// The paper's exact grid (≈36 000 dynamics across all figures —
    /// hours of compute; use for full reproductions).
    pub fn paper() -> Self {
        Profile {
            reps: 20,
            alphas: vec![
                0.025, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0, 1.5, 2.0, 3.0, 5.0, 7.0, 10.0,
            ],
            ks: vec![2, 3, 4, 5, 6, 7, 10, 15, 20, 25, 30, 1000],
            tree_ns: vec![20, 30, 50, 70, 100, 200],
            er_configs: vec![
                (100, 0.060),
                (100, 0.100),
                (100, 0.200),
                (200, 0.035),
                (200, 0.050),
                (200, 0.100),
            ],
            scale_n: 1_000_000,
            scale_avg_deg: 10.0,
            scale_reps: 3,
            scale_rounds: 8,
            scale_alphas: vec![1.0, 5.0],
            scale_ks: vec![2],
            base_seed: 0x9e3779b97f4a7c15,
            name: "paper",
        }
    }

    /// Trimmed grid that preserves every qualitative trend but
    /// finishes in minutes: fewer repetitions, a coarser `α`/`k` grid,
    /// and the smaller workload sizes.
    pub fn quick() -> Self {
        Profile {
            reps: 5,
            alphas: vec![0.05, 0.1, 0.3, 0.5, 1.0, 2.0, 5.0, 10.0],
            ks: vec![2, 3, 4, 5, 7, 1000],
            tree_ns: vec![20, 30, 50, 70],
            er_configs: vec![(50, 0.10), (70, 0.07)],
            scale_n: 20_000,
            scale_avg_deg: 10.0,
            scale_reps: 2,
            scale_rounds: 8,
            scale_alphas: vec![1.0, 5.0],
            scale_ks: vec![2],
            base_seed: 0x9e3779b97f4a7c15,
            name: "quick",
        }
    }

    /// An even smaller profile for smoke tests and benches.
    pub fn smoke() -> Self {
        Profile {
            reps: 2,
            alphas: vec![0.5, 2.0],
            ks: vec![2, 1000],
            tree_ns: vec![16, 24],
            er_configs: vec![(24, 0.2)],
            // The CI scale lane runs `scale-dynamics --smoke`: 10^5
            // players, four rounds — seconds in release, and big
            // enough that an accidental O(n) per-player allocation
            // would blow the lane's wall-clock budget.
            scale_n: 100_000,
            scale_avg_deg: 10.0,
            scale_reps: 2,
            scale_rounds: 4,
            scale_alphas: vec![1.0, 5.0],
            scale_ks: vec![2],
            base_seed: 0x9e3779b97f4a7c15,
            name: "smoke",
        }
    }

    /// The tree size of the single-`n` figures (paper: `n = 100` for
    /// Figures 5 and 10-left). Picks 100 when the profile has it,
    /// otherwise the largest size present.
    pub fn headline_tree_n(&self) -> usize {
        if self.tree_ns.contains(&100) {
            100
        } else {
            self.tree_ns.iter().copied().max().unwrap_or(50)
        }
    }

    /// The tree size of the SumNCG extension sweep: the largest size
    /// in the profile that keeps *every* α cell tractable for the
    /// exact branch-and-bound. The binding cell is α ≈ 1, where the
    /// cost grid `α·t + usage` makes purchase-for-distance swaps
    /// exactly cost-neutral: optima proliferate into a tie plateau no
    /// admissible bound can prune (DESIGN.md §9), so exact solves
    /// scale far worse there than in the cheap-α or p-median-like
    /// regimes that `perf_smoke.rs` pins at n = 64. Sizes are chosen
    /// so the degenerate cells stay within each profile's time
    /// budget: seconds per solve for `paper`, tens of milliseconds
    /// for `quick`.
    pub fn sum_tree_n(&self) -> usize {
        let cap = if self.reps >= 20 { 50 } else { 30 };
        self.tree_ns.iter().copied().filter(|&n| n <= cap).max().unwrap_or(cap)
    }

    /// The ER row used by Figures 8–9 (paper: `n = 100, p = 0.1`);
    /// profiles without that exact row use their densest row.
    pub fn headline_er(&self) -> (usize, f64) {
        if self.er_configs.contains(&(100, 0.100)) {
            (100, 0.100)
        } else {
            self.er_configs
                .iter()
                .copied()
                .max_by(|a, b| (a.0 as f64 * a.1).total_cmp(&(b.0 as f64 * b.1)))
                .unwrap_or((50, 0.1))
        }
    }
}

impl Default for Profile {
    fn default() -> Self {
        Profile::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_section_5() {
        let p = Profile::paper();
        assert_eq!(p.reps, 20);
        assert_eq!(p.alphas.len(), 15);
        assert_eq!(p.ks.len(), 12);
        assert_eq!(p.tree_ns, vec![20, 30, 50, 70, 100, 200]);
        assert_eq!(p.er_configs.len(), 6);
        assert!(p.ks.contains(&1000));
        assert!(p.alphas.contains(&0.025) && p.alphas.contains(&10.0));
    }

    #[test]
    fn quick_profile_is_a_subset_in_spirit() {
        let q = Profile::quick();
        let p = Profile::paper();
        assert!(q.reps < p.reps);
        for a in &q.alphas {
            assert!(p.alphas.contains(a), "quick α={a} should come from the paper grid");
        }
        for k in &q.ks {
            assert!(p.ks.contains(k), "quick k={k} should come from the paper grid");
        }
    }

    #[test]
    fn scale_tier_grids_are_sized_to_their_profiles() {
        assert_eq!(Profile::paper().scale_n, 1_000_000);
        assert_eq!(Profile::smoke().scale_n, 100_000);
        assert!(Profile::quick().scale_n < Profile::smoke().scale_n);
        for p in [Profile::paper(), Profile::quick(), Profile::smoke()] {
            assert!(p.scale_avg_deg > 0.0);
            assert!(p.scale_reps >= 1 && p.scale_rounds >= 1);
            assert!(!p.scale_alphas.is_empty() && !p.scale_ks.is_empty());
            assert!(p.scale_ks.iter().all(|&k| k <= 3), "scale tier keeps balls small");
        }
    }

    #[test]
    fn headline_selectors_match_the_paper() {
        // Figures 5, 8, 9 and 10-left use n = 100 (and G(100, 0.1)).
        assert_eq!(Profile::paper().headline_tree_n(), 100);
        assert_eq!(Profile::paper().sum_tree_n(), 50);
        assert_eq!(Profile::quick().sum_tree_n(), 30);
        assert_eq!(Profile::smoke().sum_tree_n(), 24);
        assert_eq!(Profile::paper().headline_er(), (100, 0.1));
        assert_eq!(Profile::smoke().headline_tree_n(), 24);
        assert_eq!(Profile::smoke().headline_er(), (24, 0.2));
    }
}
