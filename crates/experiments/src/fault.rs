//! Deterministic fault injection for the sweep and queue layers.
//!
//! Chaos scenarios — a worker SIGKILLed mid-cell, a journal write torn
//! halfway through a line, duplicated completions, a stalled straggler
//! — are reproducible *test inputs* here, not flaky integration
//! scripts: a [`FaultPlan`] is parsed from the `NCG_FAULT` environment
//! variable (process level, used by the `ncg-experiments` binary and
//! the chaos CI job) or constructed directly by unit tests, and every
//! trigger point is a deterministic counter, never a timer or a random
//! draw.
//!
//! Supported plans (`NCG_FAULT=<kind>[:N]`):
//!
//! | plan | effect |
//! |---|---|
//! | `kill_after_cells:N` | abort the process when the `N+1`-th cell result would be reported/journaled — the lease on that cell stays outstanding, exactly like a SIGKILL mid-cell |
//! | `torn_write:N` | on the `N`-th journal append (1-based), write only half the line, flush, and abort — a torn line a crash-safe resume must truncate away |
//! | `dup_complete` | report every completed cell twice (idempotence probe) |
//! | `stall:N` | after `N` completed cells, lease one more cell and hang forever without heartbeating — the straggler the lease timeout exists for |
//! | `panic_cell:N` | panic inside the solve of canonical cell `N` of the first sweep — exercises the `catch_unwind` isolation in `run_cells` |
//!
//! The *decisions* (`should_…` methods) are pure counter logic and
//! unit-tested in-process; the *actions* that end the process
//! ([`FaultPlan::abort`]) only ever run in a spawned binary, so
//! `cargo test` drives real kills through real processes
//! (`tests/chaos.rs`) while keeping every trigger deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// What kind of fault the plan injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Abort before reporting the `n+1`-th completed cell.
    KillAfterCells(usize),
    /// Tear the `n`-th journal append (1-based) and abort.
    TornWrite(usize),
    /// Send every completion twice.
    DupComplete,
    /// After `n` completions, hold one more lease and hang forever.
    Stall(usize),
    /// Panic inside the solve of canonical cell `n` (first sweep).
    PanicCell(usize),
}

/// A parsed fault plan with its deterministic trigger counters.
#[derive(Debug)]
pub struct FaultPlan {
    kind: FaultKind,
    /// Cells whose results were reported so far (kill/stall counting).
    cells_reported: AtomicUsize,
    /// Journal appends so far (torn-write counting).
    appends: AtomicUsize,
}

impl FaultPlan {
    /// Builds a plan for `kind` with zeroed counters.
    pub fn new(kind: FaultKind) -> Self {
        FaultPlan { kind, cells_reported: AtomicUsize::new(0), appends: AtomicUsize::new(0) }
    }

    /// Parses `NCG_FAULT` syntax, e.g. `kill_after_cells:3`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (kind, arg) = match text.split_once(':') {
            Some((kind, arg)) => (kind, Some(arg)),
            None => (text, None),
        };
        let num = |what: &str| -> Result<usize, String> {
            arg.ok_or_else(|| format!("NCG_FAULT {kind} needs :{what}"))?
                .parse::<usize>()
                .map_err(|_| format!("NCG_FAULT {kind} needs a numeric :{what}, got {arg:?}"))
        };
        let kind = match kind {
            "kill_after_cells" => FaultKind::KillAfterCells(num("N")?),
            "torn_write" => FaultKind::TornWrite(num("N")?),
            "dup_complete" => FaultKind::DupComplete,
            "stall" => FaultKind::Stall(num("N")?),
            "panic_cell" => FaultKind::PanicCell(num("N")?),
            other => {
                return Err(format!(
                    "unknown NCG_FAULT kind {other:?} (expected kill_after_cells:N, \
                     torn_write:N, dup_complete, stall:N, or panic_cell:N)"
                ))
            }
        };
        Ok(FaultPlan::new(kind))
    }

    /// The plan's kind.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Whether the solve of canonical cell `index` must panic.
    pub fn panics_at_cell(&self, index: usize) -> bool {
        self.kind == FaultKind::PanicCell(index)
    }

    /// Whether every completion should be sent twice.
    pub fn duplicates_completions(&self) -> bool {
        self.kind == FaultKind::DupComplete
    }

    /// Counts one about-to-be-reported cell result; `true` when the
    /// process must die *before* reporting it (`kill_after_cells`).
    pub fn should_die_before_result(&self) -> bool {
        match self.kind {
            FaultKind::KillAfterCells(n) => {
                self.cells_reported.fetch_add(1, Ordering::Relaxed) >= n
            }
            _ => {
                self.cells_reported.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Whether the worker has reported enough cells to enter its
    /// stall (`stall:N`): lease one more cell, then hang forever.
    pub fn should_stall(&self) -> bool {
        matches!(self.kind, FaultKind::Stall(n) if self.cells_reported.load(Ordering::Relaxed) >= n)
    }

    /// Counts one journal append; `Some(())` when this append must be
    /// torn (write half the line, flush, abort).
    pub fn should_tear_append(&self) -> bool {
        match self.kind {
            FaultKind::TornWrite(n) => self.appends.fetch_add(1, Ordering::Relaxed) + 1 == n,
            _ => false,
        }
    }

    /// Kills the process the way a SIGKILL would: no unwinding, no
    /// destructors, no flushing beyond what already happened. Only
    /// ever called from the binary's worker/journal layers — tests
    /// reach it through spawned processes.
    pub fn abort(&self, context: &str) -> ! {
        eprintln!("[ncg-fault] injecting {:?}: aborting ({context})", self.kind);
        std::process::abort();
    }
}

/// The process-wide plan parsed from `NCG_FAULT`, if any. The first
/// call locks the value in; `None` when the variable is unset. An
/// unparsable value panics — a chaos harness that silently ignores a
/// typo'd fault would report a vacuous green.
pub fn env_plan() -> Option<Arc<FaultPlan>> {
    static PLAN: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
    PLAN.get_or_init(|| {
        std::env::var("NCG_FAULT").ok().map(|text| {
            Arc::new(FaultPlan::parse(&text).unwrap_or_else(|e| panic!("invalid NCG_FAULT: {e}")))
        })
    })
    .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind_and_rejects_garbage() {
        assert_eq!(FaultPlan::parse("kill_after_cells:3").unwrap().kind(), {
            FaultKind::KillAfterCells(3)
        });
        assert_eq!(FaultPlan::parse("torn_write:1").unwrap().kind(), FaultKind::TornWrite(1));
        assert_eq!(FaultPlan::parse("dup_complete").unwrap().kind(), FaultKind::DupComplete);
        assert_eq!(FaultPlan::parse("stall:2").unwrap().kind(), FaultKind::Stall(2));
        assert_eq!(FaultPlan::parse("panic_cell:5").unwrap().kind(), FaultKind::PanicCell(5));
        for bad in ["", "kill_after_cells", "kill_after_cells:x", "nope:1", "stall"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn kill_counter_fires_after_exactly_n_results() {
        let plan = FaultPlan::parse("kill_after_cells:2").unwrap();
        assert!(!plan.should_die_before_result(), "1st result is reported");
        assert!(!plan.should_die_before_result(), "2nd result is reported");
        assert!(plan.should_die_before_result(), "3rd result dies first");
        assert!(plan.should_die_before_result(), "and stays dead");
    }

    #[test]
    fn stall_engages_after_n_results() {
        let plan = FaultPlan::parse("stall:1").unwrap();
        assert!(!plan.should_stall());
        assert!(!plan.should_die_before_result());
        assert!(plan.should_stall(), "after one reported cell the worker stalls");
    }

    #[test]
    fn torn_write_fires_on_the_nth_append_only() {
        let plan = FaultPlan::parse("torn_write:2").unwrap();
        assert!(!plan.should_tear_append());
        assert!(plan.should_tear_append());
        assert!(!plan.should_tear_append(), "fires exactly once");
    }

    #[test]
    fn panic_cell_targets_one_canonical_index() {
        let plan = FaultPlan::parse("panic_cell:4").unwrap();
        assert!(plan.panics_at_cell(4));
        assert!(!plan.panics_at_cell(3));
        assert!(!plan.duplicates_completions());
        assert!(FaultPlan::parse("dup_complete").unwrap().duplicates_completions());
    }
}
