//! *Extension*: the million-node dynamics tier.
//!
//! The paper's experiments stop at `n = 200` — the exact
//! best-response solver prices every candidate deviation through a
//! materialised view graph, which is the right tool for reproducing
//! Tables I–II but caps throughput around `n ≈ 10^5`. This experiment
//! runs the approximate scale tier ([`ncg_dynamics::scale`]) instead:
//! flat `G(n, avg_deg/(n-1))` inputs in structure-of-arrays layout,
//! greedy CSR-native responders (exact pricing, narrowed search), and
//! simultaneous rounds with deterministic conflict resolution. Under
//! `--full` this is `n = 10^6` at average degree 10; the `--smoke`
//! grid (`n = 10^5`, four rounds) is the CI scale lane.
//!
//! Reported per `(α, k)` cell, mean ± 95% CI over repetitions:
//! rounds executed, moves applied, conflicted proposals, final
//! maximum degree, and the sampled average view size (a deterministic
//! 64-player ball sample — exhaustive view statistics are `O(n·m)`
//! and unaffordable at this tier). Convergence within the round cap
//! is reported as a rate. Cells stream through the same journal /
//! shard / merge / work-queue machinery as every other sweep, and
//! artifacts are byte-identical for any `NCG_THREADS`.

use ncg_core::Objective;

use crate::engine::{self, MetricGrid, SweepContext};
use crate::output::grid_table;
use crate::sweep::SweepSpec;
use crate::{ExperimentOutput, Profile};

/// Runs the scale-tier sweep under the given profile (local mode).
pub fn run(profile: &Profile) -> ExperimentOutput {
    run_ctx(profile, &SweepContext::local())
}

/// Builds the experiment's single sweep spec from a profile — shared
/// by [`run_ctx`] and the tests so the grid is defined in one place.
fn spec(profile: &Profile) -> SweepSpec {
    SweepSpec::scale_er(
        "main",
        profile.scale_n,
        profile.scale_avg_deg,
        profile.scale_rounds,
        profile.scale_reps,
        profile.base_seed,
        profile.scale_alphas.clone(),
        profile.scale_ks.clone(),
        Objective::Max,
    )
}

/// Runs the scale-tier sweep under the given execution context
/// (local / shard / merge — see [`crate::engine`]).
pub fn run_ctx(profile: &Profile, ctx: &SweepContext) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("scale_dynamics");
    let specs = vec![spec(profile)];
    let (rows, cols) = (profile.scale_alphas.len(), profile.scale_ks.len());
    let mut rounds = MetricGrid::new(rows, cols);
    let mut moves = MetricGrid::new(rows, cols);
    let mut converged = MetricGrid::new(rows, cols);
    let mut max_degree = MetricGrid::new(rows, cols);
    let mut avg_view = MetricGrid::new(rows, cols);
    let report = engine::execute(ctx, "scale_dynamics", &specs, &mut |_, cell, rec| {
        rounds.push(cell.ai, cell.ki, Some(rec.rounds as f64));
        moves.push(cell.ai, cell.ki, Some(rec.moves as f64));
        converged.push(cell.ai, cell.ki, Some(if rec.converged { 1.0 } else { 0.0 }));
        max_degree.push(cell.ai, cell.ki, Some(rec.max_degree as f64));
        avg_view.push(cell.ai, cell.ki, Some(rec.avg_view));
    });
    if let Some(note) = report.shard_note("scale_dynamics") {
        out.notes = note;
        return out;
    }
    out.notes = format!(
        "Scale tier — approximate simultaneous dynamics on G(n = {}, avg deg {}), \
         round cap {}; view sizes are a 64-player sample; profile: {} ({} reps)",
        profile.scale_n,
        profile.scale_avg_deg,
        profile.scale_rounds,
        profile.name,
        profile.scale_reps
    );
    let row_labels: Vec<String> = profile.scale_alphas.iter().map(|a| format!("{a}")).collect();
    let col_labels: Vec<String> = profile.scale_ks.iter().map(|k| format!("k={k}")).collect();
    out.push_table(
        "rounds",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| rounds.display(ri, ci, 1)),
    );
    out.push_table(
        "moves",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| moves.display(ri, ci, 1)),
    );
    out.push_table(
        "converged_rate",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| converged.display(ri, ci, 2)),
    );
    out.push_table(
        "max_degree",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| max_degree.display(ri, ci, 1)),
    );
    out.push_table(
        "avg_view_sampled",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| avg_view.display(ri, ci, 1)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny grid the unit tests can afford (hundreds of players,
    /// not 10^5) — same shape as the smoke profile otherwise.
    fn tiny() -> Profile {
        Profile { scale_n: 300, scale_reps: 2, scale_rounds: 6, ..Profile::smoke() }
    }

    #[test]
    fn output_has_all_panels() {
        let out = run(&tiny());
        let names: Vec<&str> = out.tables.iter().map(|(name, _)| name.as_str()).collect();
        assert_eq!(names, ["rounds", "moves", "converged_rate", "max_degree", "avg_view_sampled"]);
    }

    #[test]
    fn reruns_are_byte_identical() {
        let profile = tiny();
        let a = run(&profile);
        let b = run(&profile);
        assert_eq!(a.render_console(), b.render_console());
    }

    #[test]
    fn plan_exposes_one_scale_sweep() {
        let specs = crate::sweep_plan("scale-dynamics", &tiny()).expect("known experiment");
        assert_eq!(specs.len(), 1);
        assert!(specs[0].is_scale());
        assert_eq!(specs[0].class(), "scale_er");
        assert_eq!(specs[0].n, 300);
    }
}
