//! Table II: statistics of the Erdős–Rényi workloads.
//!
//! Paper rows: for each `(n, p)` configuration, the mean ± 95% CI
//! over 20 connected samples of the edge count, diameter, maximum
//! degree and maximum bought edges.

use ncg_graph::metrics;
use ncg_stats::{Accumulator, Table};

use crate::{workloads, ExperimentOutput, Profile};

/// Runs the Table II measurement under the given profile. Statistics
/// are folded through streaming [`Accumulator`]s — one pass over the
/// workload states, no sample vectors.
pub fn run(profile: &Profile) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("table2");
    out.notes = format!(
        "Table II — Erdős–Rényi statistics; profile: {} ({} samples per row)",
        profile.name, profile.reps
    );
    let mut table = Table::new(["n", "p", "Edges", "Diameter", "Max. degree", "Max. bought edges"]);
    for &(n, p) in &profile.er_configs {
        let mut accs = [(); 4].map(|_| Accumulator::new());
        for s in workloads::er_states(n, p, profile.reps, profile.base_seed) {
            accs[0].push(s.graph().edge_count() as f64);
            accs[1].push(metrics::diameter(s.graph()).expect("samples are connected") as f64);
            accs[2].push(s.graph().max_degree() as f64);
            accs[3].push(s.max_bought() as f64);
        }
        let mut row = vec![n.to_string(), format!("{p:.3}")];
        row.extend(accs.iter().map(|a| a.summary().display(2)));
        table.push_row(row);
    }
    out.push_table("er_graphs", table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_config() {
        let out = run(&Profile::smoke());
        assert_eq!(out.tables[0].1.len(), Profile::smoke().er_configs.len());
    }

    #[test]
    fn edge_counts_track_expectation() {
        // The paper's Table II: edges ≈ p·n(n−1)/2.
        let profile = Profile { reps: 8, er_configs: vec![(60, 0.1)], ..Profile::smoke() };
        let states = workloads::er_states(60, 0.1, profile.reps, profile.base_seed);
        let mean =
            states.iter().map(|s| s.graph().edge_count() as f64).sum::<f64>() / profile.reps as f64;
        let expected = 0.1 * (60.0 * 59.0 / 2.0);
        assert!((mean - expected).abs() < 0.2 * expected, "mean {mean} vs expected {expected}");
    }
}
