//! Append-only JSONL run journals: the sweep engine's durable
//! streaming format, and the basis of resume and shard merging.
//!
//! Every finished cell becomes one [`JournalEntry`] line —
//! `{"sweep": <label>, "cell": <canonical index>, "record": {…}}` —
//! appended (and flushed) the moment the cell completes, so a killed
//! run loses at most the cells still in flight. On restart, entries
//! already present are *not* re-run: the engine replays them into the
//! fold and only computes the missing cells.
//!
//! File layout under the results directory:
//!
//! * `<experiment>_runs.jsonl` — the canonical journal of a
//!   single-process run, and the output of `merge`;
//! * `<experiment>_runs.shard<i>of<M>.jsonl` — shard `i`'s journal.
//!
//! Canonical journals are sorted by `(sweep order, cell index)`;
//! [`compact`] rewrites a journal into that order after a resumed run
//! so the final artifact is byte-identical to an uninterrupted one.
//! Byte-identity holds because serialisation is deterministic (struct
//! field order, shortest round-trip float formatting), so
//! parse → re-serialise is the identity on journal lines.

use std::fs;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::sweep::{RunRecord, SweepSpec};

/// One journal line: which sweep of the experiment, which canonical
/// cell, the sweep's grid fingerprint, and the run's record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// The sweep's stable label within its experiment.
    pub sweep: String,
    /// Canonical linear cell index within that sweep.
    pub cell: usize,
    /// [`SweepSpec::fingerprint`] of the grid that produced the
    /// record — how resume and merge detect journals written under a
    /// different seed, repetition count, workload, or `α`/`k` grid.
    pub grid: u64,
    /// The run's streamed record.
    pub record: RunRecord,
}

/// Path of the canonical (single-process / merged) journal.
pub fn journal_path(dir: &Path, experiment: &str) -> PathBuf {
    dir.join(format!("{experiment}_runs.jsonl"))
}

/// Path of one shard's journal.
pub fn shard_journal_path(dir: &Path, experiment: &str, index: usize, count: usize) -> PathBuf {
    dir.join(format!("{experiment}_runs.shard{index}of{count}.jsonl"))
}

/// An append-mode JSONL writer that flushes after every entry, so a
/// crash loses only unfinished cells.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    file: BufWriter<fs::File>,
}

impl JournalWriter {
    /// Opens (creating parent directories and the file if needed) the
    /// journal at `path` for appending. If a previous run was killed
    /// mid-write, the file may end in a torn half-line; it is
    /// newline-terminated first so appended entries never glue onto
    /// the fragment (the fragment itself is dropped as unparsable by
    /// [`read`] and [`compact`]).
    pub fn append(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let torn = matches!(fs::read(path), Ok(bytes) if !bytes.is_empty() && bytes.last() != Some(&b'\n'));
        let file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        let mut writer = JournalWriter { path: path.to_path_buf(), file: BufWriter::new(file) };
        if torn {
            writer.file.write_all(b"\n")?;
            writer.file.flush()?;
        }
        Ok(writer)
    }

    /// Appends one entry and flushes it to disk.
    pub fn push(&mut self, entry: &JournalEntry) -> std::io::Result<()> {
        let line = serde_json::to_string(entry)
            .map_err(|e| std::io::Error::other(format!("serialising journal entry: {e}")))?;
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads a journal, returning its parsable entries in file order.
/// A missing file reads as empty; unparsable lines (a line truncated
/// by a kill, garbage) are skipped — the engine simply recomputes
/// those cells.
pub fn read(path: &Path) -> std::io::Result<Vec<JournalEntry>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(text.lines().filter_map(|line| serde_json::from_str(line).ok()).collect())
}

/// Serialises entries to JSONL text (one line per entry).
pub fn render(entries: &[JournalEntry]) -> String {
    let mut out = String::new();
    for entry in entries {
        out.push_str(&serde_json::to_string(entry).expect("journal entries always serialise"));
        out.push('\n');
    }
    out
}

/// Rewrites the journal at `path` in canonical order against the
/// current plan: entries sorted by `(position of sweep in specs,
/// cell index)`, de-duplicated by `(sweep, cell)` keeping the first
/// occurrence. Entries that no current spec accounts for — a stale
/// sweep label, an out-of-range cell, or a mismatched grid
/// fingerprint — are dropped, so a compacted journal only ever
/// contains lines a fresh run of the same plan would write. The
/// rewrite goes through a temp file + rename, so a crash cannot
/// destroy the journal.
pub fn compact(path: &Path, specs: &[SweepSpec]) -> std::io::Result<()> {
    let mut entries = read(path)?;
    let order = |e: &JournalEntry| {
        specs.iter().position(|s| {
            s.label == e.sweep && e.cell < s.cell_count() && e.grid == s.fingerprint()
        })
    };
    entries.retain(|e| order(e).is_some());
    entries.sort_by_key(|e| (order(e).expect("retained above"), e.cell));
    entries.dedup_by(|a, b| a.sweep == b.sweep && a.cell == b.cell);
    let tmp = path.with_extension("jsonl.tmp");
    fs::write(&tmp, render(&entries))?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_core::Objective;

    fn spec(label: &str, alpha: f64, k: u32, reps: usize) -> SweepSpec {
        SweepSpec::tree(label, 10, reps, 7, vec![alpha], vec![k], Objective::Max)
    }

    fn entry(spec: &SweepSpec, cell: usize) -> JournalEntry {
        let id = spec.cell(cell);
        JournalEntry {
            sweep: spec.label.clone(),
            cell,
            grid: spec.fingerprint(),
            record: RunRecord {
                class: spec.class().into(),
                n: spec.n,
                alpha: spec.alphas[id.ai],
                k: spec.ks[id.ki],
                rep: id.rep,
                converged: true,
                capped: false,
                rounds: 2,
                moves: 3,
                diameter: Some(4),
                quality: Some(1.25),
                max_degree: 3,
                max_bought: 2,
                min_view: 4,
                avg_view: 6.5,
                unfairness: None,
            },
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ncg_journal_{tag}_{}", std::process::id()))
    }

    #[test]
    fn append_read_round_trip() {
        let dir = temp_path("rt");
        let _ = fs::remove_dir_all(&dir);
        let path = journal_path(&dir, "demo");
        let mut w = JournalWriter::append(&path).unwrap();
        let s = spec("main", 0.5, 2, 2);
        let entries = vec![entry(&s, 1), entry(&s, 0)];
        for e in &entries {
            w.push(e).unwrap();
        }
        drop(w);
        assert_eq!(read(&path).unwrap(), entries);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reads_empty_and_truncated_lines_are_skipped() {
        let dir = temp_path("trunc");
        let _ = fs::remove_dir_all(&dir);
        let path = journal_path(&dir, "demo");
        assert!(read(&path).unwrap().is_empty());
        let mut w = JournalWriter::append(&path).unwrap();
        let good = entry(&spec("main", 1.0, 3, 1), 0);
        w.push(&good).unwrap();
        drop(w);
        // Simulate a kill mid-write: append half a line.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"sweep\":\"main\",\"cell\":1,\"rec");
        fs::write(&path, text).unwrap();
        assert_eq!(read(&path).unwrap(), vec![good]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_sorts_dedups_and_round_trips_bytes() {
        let dir = temp_path("compact");
        let _ = fs::remove_dir_all(&dir);
        let path = journal_path(&dir, "demo");
        let a = spec("a", 0.025, 2, 2);
        let b = spec("b", 7.0, 1000, 1);
        let specs = vec![a.clone(), b.clone()];
        let canonical = vec![entry(&a, 0), entry(&a, 1), entry(&b, 0)];
        // Write shuffled, with a duplicate, a stale-label entry, an
        // out-of-range cell, and a wrong-fingerprint entry.
        let mut w = JournalWriter::append(&path).unwrap();
        w.push(&canonical[2]).unwrap();
        w.push(&canonical[1]).unwrap();
        w.push(&JournalEntry { sweep: "stale".into(), ..canonical[0].clone() }).unwrap();
        w.push(&JournalEntry { cell: 9, ..canonical[0].clone() }).unwrap();
        w.push(&JournalEntry { grid: 123, ..canonical[0].clone() }).unwrap();
        w.push(&canonical[0]).unwrap();
        w.push(&canonical[1]).unwrap();
        drop(w);
        compact(&path, &specs).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), render(&canonical));
        // Compacting a canonical journal is a byte-level no-op.
        compact(&path, &specs).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), render(&canonical));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_separates_profiles() {
        let base = spec("main", 0.5, 2, 3);
        assert_eq!(base.fingerprint(), spec("main", 0.5, 2, 3).fingerprint());
        let mut other = base.clone();
        other.seed ^= 1;
        assert_ne!(base.fingerprint(), other.fingerprint(), "seed must change the fingerprint");
        assert_ne!(base.fingerprint(), spec("main", 0.5, 2, 2).fingerprint(), "reps");
        assert_ne!(base.fingerprint(), spec("main", 0.7, 2, 3).fingerprint(), "alpha grid");
        assert_ne!(base.fingerprint(), spec("main", 0.5, 3, 3).fingerprint(), "k grid");
        let mut er = base.clone();
        er.workload = crate::sweep::Workload::Er(0.1);
        assert_ne!(base.fingerprint(), er.fingerprint(), "workload family");
        let mut er2 = er.clone();
        er2.workload = crate::sweep::Workload::Er(0.2);
        assert_ne!(er.fingerprint(), er2.fingerprint(), "edge probability p");
        let mut sum = base.clone();
        sum.objective = Objective::Sum;
        assert_ne!(base.fingerprint(), sum.fingerprint(), "objective");
    }
}
