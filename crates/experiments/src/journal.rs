//! Append-only JSONL run journals: the sweep engine's durable
//! streaming format, and the basis of resume and shard merging.
//!
//! Every finished cell becomes one [`JournalEntry`] line —
//! `{"sweep": <label>, "cell": <canonical index>, "record": {…}}` —
//! appended (and flushed) the moment the cell completes, so a killed
//! run loses at most the cells still in flight. A cell whose solve
//! *panicked* becomes a [`CellFailed`] line instead (cell id + panic
//! payload), so a poisoned cell is a recorded fact, not a lost sweep.
//! On restart, entries already present are *not* re-run: the engine
//! replays them into the fold and only computes the missing cells.
//!
//! File layout under the results directory:
//!
//! * `<experiment>_runs.jsonl` — the canonical journal of a
//!   single-process run, and the output of `merge`;
//! * `<experiment>_runs.shard<i>of<M>.jsonl` — shard `i`'s journal.
//!
//! Crash safety: a process killed mid-append leaves a torn half-line
//! at the end of the file. [`JournalWriter::append`] *truncates* the
//! file back to the last newline-terminated entry before appending
//! (with a one-line warning), so the fragment can never glue onto a
//! later entry and the journal stays parsable line-by-line forever.
//!
//! Canonical journals are sorted by `(sweep order, cell index)`;
//! [`compact`] rewrites a journal into that order after a resumed run
//! so the final artifact is byte-identical to an uninterrupted one.
//! Byte-identity holds because serialisation is deterministic (struct
//! field order, shortest round-trip float formatting), so
//! parse → re-serialise is the identity on journal lines. Because the
//! grid fingerprint excludes the rep count, compaction *re-derives*
//! each entry's canonical index from the record's own `(α, k, rep)`
//! under the current plan — which is what makes journals written
//! under different `--reps` splits of one grid merge byte-identically.

use std::collections::HashSet;
use std::fs;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;
use crate::sweep::{RunRecord, SweepSpec};

/// One journal line: which sweep of the experiment, which canonical
/// cell, the sweep's grid fingerprint, and the run's record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// The sweep's stable label within its experiment.
    pub sweep: String,
    /// Canonical linear cell index within that sweep.
    pub cell: usize,
    /// [`SweepSpec::fingerprint`] of the grid that produced the
    /// record — how resume and merge detect journals written under a
    /// different seed, workload, or `α`/`k` grid.
    pub grid: u64,
    /// The run's streamed record.
    pub record: RunRecord,
}

/// A journaled cell *failure*: the solve panicked and `run_cells`
/// caught it. Distinguished from [`JournalEntry`] on parse by its
/// required `failed` field (entries require `record` instead).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellFailed {
    /// The sweep's stable label within its experiment.
    pub sweep: String,
    /// Canonical linear cell index within that sweep.
    pub cell: usize,
    /// Grid fingerprint, as on [`JournalEntry`].
    pub grid: u64,
    /// The panic payload, rendered as a string.
    pub failed: String,
}

/// One parsed journal line — a completed cell or a failed one.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalLine {
    /// A completed cell's entry.
    Ok(JournalEntry),
    /// A failed (panicked) cell's marker.
    Failed(CellFailed),
}

/// Path of the canonical (single-process / merged) journal.
pub fn journal_path(dir: &Path, experiment: &str) -> PathBuf {
    dir.join(format!("{experiment}_runs.jsonl"))
}

/// Path of one shard's journal.
pub fn shard_journal_path(dir: &Path, experiment: &str, index: usize, count: usize) -> PathBuf {
    dir.join(format!("{experiment}_runs.shard{index}of{count}.jsonl"))
}

/// Truncates a torn trailing half-line (no final newline — the mark
/// of a process killed mid-write) back to the last newline-terminated
/// entry, logging a one-line warning. A missing, empty, or cleanly
/// terminated file is left untouched. Shared by the run journals and
/// the coordinator's lease ledger.
pub fn truncate_torn_tail(path: &Path) -> std::io::Result<()> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    if bytes.is_empty() || bytes.last() == Some(&b'\n') {
        return Ok(());
    }
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
    let file = fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(keep as u64)?;
    eprintln!(
        "[journal] {}: truncated a torn trailing line ({} bytes) left by an interrupted write",
        path.display(),
        bytes.len() - keep
    );
    Ok(())
}

/// An append-mode JSONL writer that flushes after every entry, so a
/// crash loses only unfinished cells.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    file: BufWriter<fs::File>,
    fault: Option<Arc<FaultPlan>>,
}

impl JournalWriter {
    /// Opens (creating parent directories and the file if needed) the
    /// journal at `path` for appending. If a previous run was killed
    /// mid-write, the torn trailing half-line is truncated away first
    /// (see [`truncate_torn_tail`]), so appended entries continue the
    /// journal exactly where the last durable entry ended.
    pub fn append(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        truncate_torn_tail(path)?;
        let file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JournalWriter { path: path.to_path_buf(), file: BufWriter::new(file), fault: None })
    }

    /// Arms the `torn_write` fault: the plan's chosen append writes
    /// only half its line, flushes, and aborts the process — the torn
    /// state a crash-safe resume must recover from.
    pub fn with_fault(mut self, fault: Option<Arc<FaultPlan>>) -> Self {
        self.fault = fault;
        self
    }

    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        if let Some(fault) = self.fault.as_ref() {
            if fault.should_tear_append() {
                self.file.write_all(&line.as_bytes()[..line.len() / 2])?;
                self.file.flush()?;
                fault.abort("mid-append journal write");
            }
        }
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }

    /// Appends one entry and flushes it to disk.
    pub fn push(&mut self, entry: &JournalEntry) -> std::io::Result<()> {
        let line = serde_json::to_string(entry)
            .map_err(|e| std::io::Error::other(format!("serialising journal entry: {e}")))?;
        self.write_line(&line)
    }

    /// Appends one failed-cell marker and flushes it to disk.
    pub fn push_failed(&mut self, failed: &CellFailed) -> std::io::Result<()> {
        let line = serde_json::to_string(failed)
            .map_err(|e| std::io::Error::other(format!("serialising cell failure: {e}")))?;
        self.write_line(&line)
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads a journal, returning its parsable *completed* entries in
/// file order — the view resume and merge consume. A missing file
/// reads as empty; failed-cell markers and unparsable lines (a line
/// truncated by a kill, garbage) are skipped — the engine simply
/// recomputes those cells.
pub fn read(path: &Path) -> std::io::Result<Vec<JournalEntry>> {
    Ok(read_lines(path)?
        .into_iter()
        .filter_map(|line| match line {
            JournalLine::Ok(entry) => Some(entry),
            JournalLine::Failed(_) => None,
        })
        .collect())
}

/// Reads a journal, returning every parsable line (completed and
/// failed cells) in file order. Unparsable lines are skipped.
pub fn read_lines(path: &Path) -> std::io::Result<Vec<JournalLine>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    // An entry line requires `record`, a failure line requires
    // `failed`; each parse rejects the other, so trying both is an
    // unambiguous dispatch.
    Ok(text
        .lines()
        .filter_map(|line| {
            serde_json::from_str(line)
                .map(JournalLine::Ok)
                .or_else(|_| serde_json::from_str(line).map(JournalLine::Failed))
                .ok()
        })
        .collect())
}

/// Serialises entries to JSONL text (one line per entry).
pub fn render(entries: &[JournalEntry]) -> String {
    let mut out = String::new();
    for entry in entries {
        out.push_str(&serde_json::to_string(entry).expect("journal entries always serialise"));
        out.push('\n');
    }
    out
}

/// Rewrites the journal at `path` in canonical order against the
/// current plan: entries sorted by `(position of sweep in specs,
/// cell index)`, de-duplicated by cell keeping the first occurrence.
/// Each entry's canonical index is *re-derived* from its record's
/// `(α, k, rep)` under the matching spec — the stored `cell` value
/// encodes the writing run's rep count, which may differ — so
/// journals from heterogeneous `--reps` splits compact into the same
/// bytes a single run of the merged grid would write. Entries no
/// current spec accounts for (stale sweep label, mismatched grid
/// fingerprint, off-grid record, rep beyond the plan's reps) are
/// dropped. Failed-cell markers survive only for cells that still
/// lack a completed entry — a successful retry supersedes its
/// failure. The rewrite goes through a temp file + rename, so a
/// crash cannot destroy the journal.
pub fn compact(path: &Path, specs: &[SweepSpec]) -> std::io::Result<()> {
    let spec_of = |sweep: &str, grid: u64| {
        specs.iter().position(|s| s.label == sweep && grid == s.fingerprint())
    };
    let mut ok: Vec<(usize, JournalEntry)> = Vec::new();
    let mut failed: Vec<(usize, CellFailed)> = Vec::new();
    for line in read_lines(path)? {
        match line {
            JournalLine::Ok(mut entry) => {
                let Some(pos) = spec_of(&entry.sweep, entry.grid) else { continue };
                let Some(cell) = specs[pos].index_of_record(&entry.record) else { continue };
                entry.cell = cell;
                ok.push((pos, entry));
            }
            JournalLine::Failed(marker) => {
                let Some(pos) = spec_of(&marker.sweep, marker.grid) else { continue };
                if marker.cell < specs[pos].cell_count() {
                    failed.push((pos, marker));
                }
            }
        }
    }
    // Stable sorts keep the first-written occurrence ahead of its
    // duplicates, so dedup implements first-result-wins.
    ok.sort_by_key(|(pos, e)| (*pos, e.cell));
    ok.dedup_by_key(|(pos, e)| (*pos, e.cell));
    let done: HashSet<(usize, usize)> = ok.iter().map(|(pos, e)| (*pos, e.cell)).collect();
    failed.retain(|(pos, f)| !done.contains(&(*pos, f.cell)));
    failed.sort_by_key(|(pos, f)| (*pos, f.cell));
    failed.dedup_by_key(|(pos, f)| (*pos, f.cell));
    let mut out = render(&ok.into_iter().map(|(_, e)| e).collect::<Vec<_>>());
    for (_, marker) in &failed {
        out.push_str(&serde_json::to_string(marker).expect("failure markers always serialise"));
        out.push('\n');
    }
    let tmp = path.with_extension("jsonl.tmp");
    fs::write(&tmp, out)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_core::Objective;

    fn spec(label: &str, alpha: f64, k: u32, reps: usize) -> SweepSpec {
        SweepSpec::tree(label, 10, reps, 7, vec![alpha], vec![k], Objective::Max)
    }

    fn entry(spec: &SweepSpec, cell: usize) -> JournalEntry {
        let id = spec.cell(cell);
        JournalEntry {
            sweep: spec.label.clone(),
            cell,
            grid: spec.fingerprint(),
            record: RunRecord {
                class: spec.class().into(),
                n: spec.n,
                alpha: spec.alphas[id.ai],
                k: spec.ks[id.ki],
                rep: id.rep,
                converged: true,
                capped: false,
                rounds: 2,
                moves: 3,
                diameter: Some(4),
                quality: Some(1.25),
                max_degree: 3,
                max_bought: 2,
                min_view: 4,
                avg_view: 6.5,
                unfairness: None,
            },
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ncg_journal_{tag}_{}", std::process::id()))
    }

    #[test]
    fn append_read_round_trip() {
        let dir = temp_path("rt");
        let _ = fs::remove_dir_all(&dir);
        let path = journal_path(&dir, "demo");
        let mut w = JournalWriter::append(&path).unwrap();
        let s = spec("main", 0.5, 2, 2);
        let entries = vec![entry(&s, 1), entry(&s, 0)];
        for e in &entries {
            w.push(e).unwrap();
        }
        drop(w);
        assert_eq!(read(&path).unwrap(), entries);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reads_empty_and_truncated_lines_are_skipped() {
        let dir = temp_path("trunc");
        let _ = fs::remove_dir_all(&dir);
        let path = journal_path(&dir, "demo");
        assert!(read(&path).unwrap().is_empty());
        let mut w = JournalWriter::append(&path).unwrap();
        let good = entry(&spec("main", 1.0, 3, 1), 0);
        w.push(&good).unwrap();
        drop(w);
        // Simulate a kill mid-write: append half a line.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"sweep\":\"main\",\"cell\":1,\"rec");
        fs::write(&path, text).unwrap();
        assert_eq!(read(&path).unwrap(), vec![good]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_truncates_a_torn_tail_instead_of_writing_after_it() {
        let dir = temp_path("torn_resume");
        let _ = fs::remove_dir_all(&dir);
        let path = journal_path(&dir, "demo");
        let s = spec("main", 0.5, 2, 3);
        let mut w = JournalWriter::append(&path).unwrap();
        w.push(&entry(&s, 0)).unwrap();
        drop(w);
        let clean = fs::read(&path).unwrap();
        // Kill mid-record: half of entry 1's line survives on disk.
        let full = serde_json::to_string(&entry(&s, 1)).unwrap();
        let mut bytes = clean.clone();
        bytes.extend_from_slice(&full.as_bytes()[..full.len() / 2]);
        fs::write(&path, &bytes).unwrap();
        // Reopening for append drops the fragment *before* writing.
        let mut w = JournalWriter::append(&path).unwrap();
        assert_eq!(fs::read(&path).unwrap(), clean, "torn tail must be truncated on reopen");
        w.push(&entry(&s, 2)).unwrap();
        drop(w);
        assert_eq!(
            read(&path).unwrap(),
            vec![entry(&s, 0), entry(&s, 2)],
            "the journal continues from the last durable entry"
        );
        let text = fs::read_to_string(&path).unwrap();
        assert!(!text.contains(&full[..full.len() / 2]), "no fragment bytes may survive");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_with_no_newline_at_all_truncates_to_empty() {
        let dir = temp_path("torn_all");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = journal_path(&dir, "demo");
        fs::write(&path, "{\"sweep\":\"main\",\"ce").unwrap();
        truncate_torn_tail(&path).unwrap();
        assert!(fs::read(&path).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_markers_parse_separately_and_read_skips_them() {
        let dir = temp_path("failed");
        let _ = fs::remove_dir_all(&dir);
        let path = journal_path(&dir, "demo");
        let s = spec("main", 0.5, 2, 2);
        let ok = entry(&s, 0);
        let marker = CellFailed {
            sweep: "main".into(),
            cell: 1,
            grid: s.fingerprint(),
            failed: "index out of bounds".into(),
        };
        let mut w = JournalWriter::append(&path).unwrap();
        w.push(&ok).unwrap();
        w.push_failed(&marker).unwrap();
        drop(w);
        assert_eq!(
            read_lines(&path).unwrap(),
            vec![JournalLine::Ok(ok.clone()), JournalLine::Failed(marker.clone())]
        );
        assert_eq!(read(&path).unwrap(), vec![ok], "read() yields completed cells only");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_sorts_dedups_and_round_trips_bytes() {
        let dir = temp_path("compact");
        let _ = fs::remove_dir_all(&dir);
        let path = journal_path(&dir, "demo");
        let a = spec("a", 0.025, 2, 2);
        let b = spec("b", 7.0, 1000, 1);
        let specs = vec![a.clone(), b.clone()];
        let canonical = vec![entry(&a, 0), entry(&a, 1), entry(&b, 0)];
        // Write shuffled, with a duplicate, a stale-label entry, an
        // out-of-range record, and a wrong-fingerprint entry.
        let mut w = JournalWriter::append(&path).unwrap();
        w.push(&canonical[2]).unwrap();
        w.push(&canonical[1]).unwrap();
        w.push(&JournalEntry { sweep: "stale".into(), ..canonical[0].clone() }).unwrap();
        let mut excess_rep = canonical[0].clone();
        excess_rep.record.rep = 9;
        excess_rep.cell = 9;
        w.push(&excess_rep).unwrap();
        w.push(&JournalEntry { grid: 123, ..canonical[0].clone() }).unwrap();
        w.push(&canonical[0]).unwrap();
        w.push(&canonical[1]).unwrap();
        drop(w);
        compact(&path, &specs).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), render(&canonical));
        // Compacting a canonical journal is a byte-level no-op.
        compact(&path, &specs).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), render(&canonical));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_reindexes_entries_from_a_different_reps_split() {
        let dir = temp_path("reindex");
        let _ = fs::remove_dir_all(&dir);
        let path = journal_path(&dir, "demo");
        // Two αs, one k: under reps=1 cell order is (α0 r0), (α1 r0);
        // under reps=2 it is (α0 r0), (α0 r1), (α1 r0), (α1 r1).
        let narrow = SweepSpec::tree("main", 10, 1, 7, vec![0.5, 2.0], vec![2], Objective::Max);
        let wide = SweepSpec { reps: 2, ..narrow.clone() };
        let mut w = JournalWriter::append(&path).unwrap();
        w.push(&entry(&narrow, 1)).unwrap(); // (α1, r0): wide index 2
        drop(w);
        compact(&path, std::slice::from_ref(&wide)).unwrap();
        let got = read(&path).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].cell, 2, "cell index must be recomputed under the wide grid");
        assert_eq!(got[0].record, entry(&narrow, 1).record, "record bytes unchanged");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_drops_failures_superseded_by_a_completed_retry() {
        let dir = temp_path("supersede");
        let _ = fs::remove_dir_all(&dir);
        let path = journal_path(&dir, "demo");
        let s = spec("main", 0.5, 2, 2);
        let still_failed = CellFailed {
            sweep: "main".into(),
            cell: 1,
            grid: s.fingerprint(),
            failed: "boom".into(),
        };
        let mut w = JournalWriter::append(&path).unwrap();
        w.push_failed(&CellFailed { cell: 0, ..still_failed.clone() }).unwrap();
        w.push_failed(&still_failed).unwrap();
        w.push(&entry(&s, 0)).unwrap(); // cell 0's successful retry
        drop(w);
        compact(&path, std::slice::from_ref(&s)).unwrap();
        assert_eq!(
            read_lines(&path).unwrap(),
            vec![JournalLine::Ok(entry(&s, 0)), JournalLine::Failed(still_failed)],
            "a completed retry supersedes its failure marker; unresolved failures survive"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_fault_tears_the_chosen_append() {
        // The decision side of the torn_write fault: the writer must
        // emit exactly half the line and flush. The abort() tail only
        // runs in spawned binaries, so here we check the plan wiring
        // up to the would-abort point via the counter.
        let plan = FaultPlan::parse("torn_write:2").unwrap();
        assert!(!plan.should_tear_append(), "append 1 is clean");
        assert!(plan.should_tear_append(), "append 2 tears");
    }

    #[test]
    fn fingerprint_separates_profiles() {
        let base = spec("main", 0.5, 2, 3);
        assert_eq!(base.fingerprint(), spec("main", 0.5, 2, 3).fingerprint());
        let mut other = base.clone();
        other.seed ^= 1;
        assert_ne!(base.fingerprint(), other.fingerprint(), "seed must change the fingerprint");
        assert_eq!(
            base.fingerprint(),
            spec("main", 0.5, 2, 2).fingerprint(),
            "reps splits of one grid share a fingerprint (hetero-reps merge)"
        );
        assert_ne!(base.fingerprint(), spec("main", 0.7, 2, 3).fingerprint(), "alpha grid");
        assert_ne!(base.fingerprint(), spec("main", 0.5, 3, 3).fingerprint(), "k grid");
        let mut er = base.clone();
        er.workload = crate::sweep::Workload::Er(0.1);
        assert_ne!(base.fingerprint(), er.fingerprint(), "workload family");
        let mut er2 = er.clone();
        er2.workload = crate::sweep::Workload::Er(0.2);
        assert_ne!(er.fingerprint(), er2.fingerprint(), "edge probability p");
        let mut sum = base.clone();
        sum.objective = Objective::Sum;
        assert_ne!(base.fingerprint(), sum.fingerprint(), "objective");
    }
}
