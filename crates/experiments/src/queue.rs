//! The lease-based sweep work queue: a coordinator that owns an
//! experiment's cell work-list and hands cells out to workers over
//! the line protocol of [`crate::protocol`], re-issuing the cells of
//! crashed or stalled workers and deduplicating late completions.
//!
//! Layering, bottom-up:
//!
//! * [`WorkQueue`] — a *pure* lease state machine. Every method takes
//!   an explicit `now: Instant`, so expiry races are ordinary unit
//!   tests, not sleeps. Cells are granted in canonical order
//!   (`BTreeSet` of `(sweep, cell)` keys); a cell is `pending`,
//!   leased, `done`, or (after `max_retries` panics) `abandoned`.
//! * [`LeaseLedger`] — an append-only, flush-per-line event log
//!   (`<experiment>_leases.log`) of grants, completions, duplicates,
//!   failures, expiries, and releases. On reopen a torn trailing line
//!   is truncated (same recovery as the run journals) and grants
//!   without a terminal event are counted, so a restarted coordinator
//!   can report exactly how many leases its crash orphaned. The *run
//!   journal* stays the single source of truth for which cells are
//!   done; the ledger adds the who/when observability around it.
//! * [`Coordinator`] — the queue + journal + ledger behind a `Mutex`,
//!   with one [`Coordinator::handle`] method mapping a parsed
//!   [`Request`] to its [`Reply`]. Fully drivable without sockets —
//!   the lease-protocol edge-case tests call it directly.
//! * [`serve`] / [`work`] — the TCP skins: a non-blocking accept loop
//!   with one thread per connection, and the worker loop that leases,
//!   solves (warm-started, panic-isolated via
//!   [`crate::sweep::solve_cell_guarded`]), heartbeats on a dedicated
//!   second connection, and reports results idempotently.
//!
//! Why retries can't break byte-identical output: a cell's record is
//! a pure function of `(spec, cell)` — per-rep instance seeds derive
//! from the spec's base seed alone and the dynamics are deterministic
//! — so *every* genuine completion of a cell carries identical bytes,
//! no matter which worker computed it or how often. The coordinator
//! journals only the first completion per cell (first-result-wins),
//! and [`crate::journal::compact`] rewrites the journal in canonical
//! order at the end, erasing completion-order nondeterminism. The
//! merged artifacts are therefore byte-identical to a single-process
//! run regardless of crashes, re-issues, and duplicates. DESIGN.md
//! §11 walks through the argument.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fs;
use std::io::{BufRead as _, BufReader, BufWriter, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ncg_core::GameState;
use ncg_dynamics::scale::{ScaleArena, ScaleState};
use ncg_dynamics::CacheArena;
use parking_lot::Mutex;

use crate::fault::{self, FaultPlan};
use crate::journal::{self, CellFailed, JournalEntry, JournalWriter};
use crate::protocol::{Reply, Request};
use crate::sweep::{solve_cell_guarded, solve_scale_cell_guarded, RunRecord, SweepSpec};

/// A cell's key in the queue: `(sweep position in the plan, canonical
/// cell index)`.
pub type CellKey = (usize, usize);

/// Tuning knobs of the lease state machine.
#[derive(Debug, Clone, Copy)]
pub struct QueueOptions {
    /// How long a lease lives without a heartbeat.
    pub lease: Duration,
    /// How many times a cell may *fail* (panic) before it is
    /// abandoned instead of re-queued. Expiries and disconnects are
    /// not failures — a cell can be re-issued any number of times.
    pub max_retries: usize,
}

impl Default for QueueOptions {
    fn default() -> Self {
        QueueOptions { lease: Duration::from_secs(15), max_retries: 3 }
    }
}

#[derive(Debug)]
struct LeaseInfo {
    worker: String,
    expires: Instant,
}

/// What a lease request got.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grant {
    /// One cell, leased to the caller.
    Cell(CellKey),
    /// Nothing pending right now (cells are leased out); ask again.
    Wait,
    /// Nothing pending and nothing leased: the sweep is finished.
    Finished,
}

/// What recording a completion did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// First completion of this cell — it was journaled.
    First,
    /// The cell was already complete; nothing was journaled.
    Duplicate,
}

/// What recording a failure did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Failure {
    /// The cell returned to the queue for another attempt.
    Requeued,
    /// The cell exhausted `max_retries` and was abandoned.
    Abandoned,
    /// The cell was already complete; the failure is moot.
    Stale,
}

/// The pure lease state machine. No clocks, no I/O: callers pass
/// `now` explicitly, which makes every expiry race a deterministic
/// unit test.
#[derive(Debug)]
pub struct WorkQueue {
    opts: QueueOptions,
    pending: BTreeSet<CellKey>,
    leases: HashMap<CellKey, LeaseInfo>,
    done: HashSet<CellKey>,
    failures: HashMap<CellKey, usize>,
    abandoned: BTreeSet<CellKey>,
}

impl WorkQueue {
    /// A queue over `cells`, with `done` already completed (resumed
    /// from a journal).
    pub fn new(
        cells: impl IntoIterator<Item = CellKey>,
        done: impl IntoIterator<Item = CellKey>,
        opts: QueueOptions,
    ) -> Self {
        let done: HashSet<CellKey> = done.into_iter().collect();
        let pending = cells.into_iter().filter(|key| !done.contains(key)).collect();
        WorkQueue {
            opts,
            pending,
            leases: HashMap::new(),
            done,
            failures: HashMap::new(),
            abandoned: BTreeSet::new(),
        }
    }

    /// Moves every lease that expired before `now` back to pending,
    /// returning `(cell, holder)` for each.
    pub fn expire(&mut self, now: Instant) -> Vec<(CellKey, String)> {
        let lapsed: Vec<CellKey> = self
            .leases
            .iter()
            .filter(|(_, lease)| lease.expires <= now)
            .map(|(&key, _)| key)
            .collect();
        let mut out: Vec<(CellKey, String)> = lapsed
            .into_iter()
            .map(|key| {
                let lease = self.leases.remove(&key).expect("key collected above");
                self.pending.insert(key);
                (key, lease.worker)
            })
            .collect();
        out.sort();
        out
    }

    /// Leases the first pending cell (canonical order) to `worker`.
    /// Expired leases are reclaimed first.
    pub fn lease(&mut self, worker: &str, now: Instant) -> Grant {
        self.expire(now);
        match self.pending.pop_first() {
            Some(key) => {
                self.leases.insert(
                    key,
                    LeaseInfo { worker: worker.to_string(), expires: now + self.opts.lease },
                );
                Grant::Cell(key)
            }
            None if self.leases.is_empty() => Grant::Finished,
            None => Grant::Wait,
        }
    }

    /// Extends `worker`'s lease on `key`; `false` if the lease is no
    /// longer theirs (expired and re-issued, or never granted).
    pub fn heartbeat(&mut self, worker: &str, key: CellKey, now: Instant) -> bool {
        match self.leases.get_mut(&key) {
            Some(lease) if lease.worker == worker => {
                lease.expires = now + self.opts.lease;
                true
            }
            _ => false,
        }
    }

    /// Records a completion of `key`, first-result-wins: only the
    /// first completion reports [`Completion::First`] (and gets
    /// journaled by the caller); any later completion — a retried
    /// cell, a worker whose lease expired finishing late — is a
    /// [`Completion::Duplicate`] no-op. Determinism makes the two
    /// interchangeable byte-wise; the dedup keeps the journal
    /// single-entry-per-cell.
    pub fn complete(&mut self, key: CellKey) -> Completion {
        if !self.done.insert(key) {
            return Completion::Duplicate;
        }
        self.leases.remove(&key);
        self.pending.remove(&key);
        self.abandoned.remove(&key);
        Completion::First
    }

    /// Records a failed (panicked) attempt at `key`: re-queued until
    /// the cell's failure count exceeds `max_retries`, then abandoned.
    pub fn fail(&mut self, key: CellKey) -> Failure {
        if self.done.contains(&key) {
            return Failure::Stale;
        }
        self.leases.remove(&key);
        let failures = self.failures.entry(key).or_insert(0);
        *failures += 1;
        if *failures > self.opts.max_retries {
            self.pending.remove(&key);
            self.abandoned.insert(key);
            Failure::Abandoned
        } else {
            self.pending.insert(key);
            Failure::Requeued
        }
    }

    /// Releases every lease `worker` holds (clean BYE or detected
    /// death), re-queueing the cells; returns them in canonical order.
    pub fn release_worker(&mut self, worker: &str) -> Vec<CellKey> {
        let held: Vec<CellKey> = self
            .leases
            .iter()
            .filter(|(_, lease)| lease.worker == worker)
            .map(|(&key, _)| key)
            .collect();
        let mut out = held;
        out.sort();
        for key in &out {
            self.leases.remove(key);
            self.pending.insert(*key);
        }
        out
    }

    /// `true` when nothing is pending and nothing is leased. Note an
    /// abandoned cell also finishes the queue — the coordinator's
    /// `finish` turns that into an error instead of silent holes.
    pub fn is_finished(&self) -> bool {
        self.pending.is_empty() && self.leases.is_empty()
    }

    /// Cells abandoned after exhausting their retries.
    pub fn abandoned(&self) -> impl Iterator<Item = &CellKey> {
        self.abandoned.iter()
    }

    /// `(done, total)` progress over the cells this queue has seen.
    pub fn progress(&self) -> (usize, usize) {
        let total = self.done.len() + self.pending.len() + self.leases.len() + self.abandoned.len();
        (self.done.len(), total)
    }
}

/// Path of the coordinator's lease ledger for an experiment.
pub fn ledger_path(dir: &Path, experiment: &str) -> PathBuf {
    dir.join(format!("{experiment}_leases.log"))
}

/// The crash-safe lease event log: one text line per event, flushed
/// immediately. Purely observational — resume correctness rests on
/// the run journal — but it is what tells an operator (and the
/// coordinator-restart test) which leases a crash orphaned.
#[derive(Debug)]
pub struct LeaseLedger {
    file: BufWriter<fs::File>,
}

impl LeaseLedger {
    /// Opens (or creates) the ledger at `path` for appending,
    /// truncating a torn trailing line first, and replays it:
    /// returns the ledger plus the keys of grants with no terminal
    /// event — the leases a previous coordinator took to its grave.
    pub fn open(path: &Path) -> std::io::Result<(Self, Vec<CellKey>)> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        journal::truncate_torn_tail(path)?;
        let mut outstanding: BTreeSet<CellKey> = BTreeSet::new();
        match fs::read_to_string(path) {
            Ok(text) => {
                for line in text.lines() {
                    let mut it = line.split(' ');
                    let (Some(event), Some(si), Some(cell)) = (it.next(), it.next(), it.next())
                    else {
                        continue;
                    };
                    let (Ok(si), Ok(cell)) = (si.parse::<usize>(), cell.parse::<usize>()) else {
                        continue;
                    };
                    match event {
                        "grant" => {
                            outstanding.insert((si, cell));
                        }
                        "complete" | "dup" | "fail" | "expire" | "release" | "abandon" => {
                            outstanding.remove(&(si, cell));
                        }
                        _ => {}
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok((LeaseLedger { file: BufWriter::new(file) }, outstanding.into_iter().collect()))
    }

    /// Appends one event line and flushes it.
    pub fn log(
        &mut self,
        event: &str,
        key: CellKey,
        worker: &str,
        detail: Option<&str>,
    ) -> std::io::Result<()> {
        let (si, cell) = key;
        match detail {
            Some(detail) => {
                let detail = detail.replace('\n', " ");
                writeln!(self.file, "{event} {si} {cell} {worker} {detail}")?;
            }
            None => writeln!(self.file, "{event} {si} {cell} {worker}")?,
        }
        self.file.flush()
    }
}

/// Tuning knobs of a coordinator.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorOptions {
    /// Lease timeout (missed heartbeats past this re-issue the cell).
    pub lease: Duration,
    /// Panic retries per cell before abandonment.
    pub max_retries: usize,
}

impl Default for CoordinatorOptions {
    fn default() -> Self {
        let q = QueueOptions::default();
        CoordinatorOptions { lease: q.lease, max_retries: q.max_retries }
    }
}

struct CoordState {
    queue: WorkQueue,
    writer: Option<JournalWriter>,
    ledger: LeaseLedger,
}

/// The sweep coordinator: owns the cell work-list of one experiment
/// plus its run journal and lease ledger, and answers protocol
/// requests. All socket-free — [`serve`] is the TCP skin — so every
/// lease-protocol edge case is directly unit-testable.
pub struct Coordinator {
    experiment: String,
    specs: Vec<SweepSpec>,
    fingerprints: Vec<u64>,
    lease_ms: u64,
    journal_path: PathBuf,
    state: Mutex<CoordState>,
}

impl Coordinator {
    /// Opens a coordinator for `experiment` over `specs`, resuming
    /// completed cells from the run journal in `dir` (the canonical
    /// `<experiment>_runs.jsonl` — indices re-derived per record, so
    /// journals from other `--reps` splits resume too) and replaying
    /// the lease ledger to report leases a previous coordinator
    /// crash left outstanding (their cells are simply pending again;
    /// the journal already proves they never completed).
    ///
    /// # Panics
    /// Panics if the journal holds entries fingerprinted by a
    /// different profile — the same refusal resume and merge make.
    pub fn open(
        dir: &Path,
        experiment: &str,
        specs: Vec<SweepSpec>,
        opts: CoordinatorOptions,
    ) -> std::io::Result<Self> {
        let journal_path = journal::journal_path(dir, experiment);
        let mut done: HashSet<CellKey> = HashSet::new();
        let mut dropped = 0usize;
        for entry in journal::read(&journal_path)? {
            let Some(si) = specs.iter().position(|s| s.label == entry.sweep) else { continue };
            assert!(
                entry.grid == specs[si].fingerprint(),
                "journal entry for sweep '{}' cell {} was written under a different profile \
                 (grid fingerprint {:#018x}, current {:#018x}); delete the stale journal \
                 and re-run",
                entry.sweep,
                entry.cell,
                entry.grid,
                specs[si].fingerprint()
            );
            match specs[si].index_of_record(&entry.record) {
                Some(index) => {
                    done.insert((si, index));
                }
                None => dropped += 1,
            }
        }
        if dropped > 0 {
            eprintln!(
                "[serve] {experiment}: ignoring {dropped} journaled cells beyond the current \
                 --reps (larger split of this grid)"
            );
        }
        let resumed = done.len();
        let cells = specs
            .iter()
            .enumerate()
            .flat_map(|(si, spec)| (0..spec.cell_count()).map(move |index| (si, index)));
        let queue = WorkQueue::new(
            cells,
            done,
            QueueOptions { lease: opts.lease, max_retries: opts.max_retries },
        );
        let (ledger, orphaned) = LeaseLedger::open(&ledger_path(dir, experiment))?;
        if !orphaned.is_empty() {
            eprintln!(
                "[serve] {experiment}: a previous coordinator left {} lease(s) outstanding \
                 (crash mid-lease); their cells are pending again",
                orphaned.len()
            );
        }
        if resumed > 0 {
            eprintln!("[serve] {experiment}: resumed {resumed} completed cells from the journal");
        }
        let writer = JournalWriter::append(&journal_path)?.with_fault(fault::env_plan());
        let fingerprints = specs.iter().map(|s| s.fingerprint()).collect();
        Ok(Coordinator {
            experiment: experiment.to_string(),
            specs,
            fingerprints,
            lease_ms: opts.lease.as_millis().max(1) as u64,
            journal_path,
            state: Mutex::new(CoordState { queue, writer: Some(writer), ledger }),
        })
    }

    /// The experiment this coordinator serves.
    pub fn experiment(&self) -> &str {
        &self.experiment
    }

    /// Whether every cell is done (or abandoned).
    pub fn is_finished(&self) -> bool {
        self.state.lock().queue.is_finished()
    }

    /// `(done, total)` cell progress.
    pub fn progress(&self) -> (usize, usize) {
        self.state.lock().queue.progress()
    }

    /// Reclaims expired leases (the accept loop's periodic tick, so
    /// a stalled worker's cells return even when no requests arrive).
    pub fn tick(&self, now: Instant) {
        let mut st = self.state.lock();
        for (key, holder) in st.queue.expire(now) {
            let _ = st.ledger.log("expire", key, &holder, None);
        }
    }

    /// Releases every lease `worker` holds — called when a worker's
    /// connection drops without a BYE (crash detection: an aborted
    /// worker's cells re-queue immediately instead of waiting out the
    /// lease timeout).
    pub fn disconnect(&self, worker: &str) {
        let mut st = self.state.lock();
        for key in st.queue.release_worker(worker) {
            let _ = st.ledger.log("release", key, worker, None);
        }
    }

    /// Answers one request from `worker` at time `now`. `None` means
    /// the protocol sends no reply (BEAT, BYE).
    pub fn handle(&self, worker: &str, request: Request, now: Instant) -> Option<Reply> {
        match request {
            Request::Hello { experiment, fingerprints, .. } => {
                if experiment != self.experiment {
                    return Some(Reply::Reject {
                        reason: format!(
                            "serving '{}', not '{experiment}'; point the worker at the right \
                             coordinator",
                            self.experiment
                        ),
                    });
                }
                if fingerprints != self.fingerprints {
                    return Some(Reply::Reject {
                        reason: "grid fingerprints differ: the worker planned a different \
                                 profile (seed, grid, scenario, or workload); rerun the worker \
                                 with the coordinator's flags"
                            .to_string(),
                    });
                }
                Some(Reply::Welcome { lease_ms: self.lease_ms })
            }
            Request::Lease => {
                let mut st = self.state.lock();
                for (key, holder) in st.queue.expire(now) {
                    let _ = st.ledger.log("expire", key, &holder, None);
                }
                match st.queue.lease(worker, now) {
                    Grant::Cell(key) => {
                        let _ = st.ledger.log("grant", key, worker, None);
                        Some(Reply::Cell { si: key.0, cell: key.1 })
                    }
                    Grant::Wait => Some(Reply::Wait { ms: (self.lease_ms / 4).clamp(50, 1000) }),
                    Grant::Finished => Some(Reply::Done),
                }
            }
            Request::Beat { si, cell } => {
                self.state.lock().queue.heartbeat(worker, (si, cell), now);
                None
            }
            Request::Result { si, cell, record } => {
                Some(self.record_result(worker, si, cell, &record))
            }
            Request::Failed { si, cell, message } => {
                if si >= self.specs.len() || cell >= self.specs[si].cell_count() {
                    return Some(Reply::Reject {
                        reason: format!("FAILED names unknown cell ({si}, {cell})"),
                    });
                }
                let key = (si, cell);
                let mut st = self.state.lock();
                match st.queue.fail(key) {
                    Failure::Requeued => {
                        let _ = st.ledger.log("fail", key, worker, Some(&message));
                        Some(Reply::Ack { duplicate: false })
                    }
                    Failure::Abandoned => {
                        let _ = st.ledger.log("abandon", key, worker, Some(&message));
                        if let Some(w) = st.writer.as_mut() {
                            w.push_failed(&CellFailed {
                                sweep: self.specs[si].label.clone(),
                                cell,
                                grid: self.fingerprints[si],
                                failed: message,
                            })
                            .expect("appending a cell failure to the run journal");
                        }
                        Some(Reply::Ack { duplicate: false })
                    }
                    Failure::Stale => Some(Reply::Ack { duplicate: true }),
                }
            }
            Request::Bye => {
                self.disconnect(worker);
                None
            }
        }
    }

    fn record_result(&self, worker: &str, si: usize, cell: usize, record: &str) -> Reply {
        if si >= self.specs.len() || cell >= self.specs[si].cell_count() {
            return Reply::Reject { reason: format!("RESULT names unknown cell ({si}, {cell})") };
        }
        let record: RunRecord = match serde_json::from_str(record) {
            Ok(record) => record,
            Err(e) => return Reply::Reject { reason: format!("unparsable record JSON: {e}") },
        };
        // The record's own coordinates must pin down exactly the cell
        // the worker claims — the same index derivation resume and
        // merge use, so a buggy or mismatched worker cannot file a
        // record under the wrong cell.
        if self.specs[si].index_of_record(&record) != Some(cell) {
            return Reply::Reject {
                reason: format!(
                    "record coordinates (α={}, k={}, rep={}) do not name cell ({si}, {cell})",
                    record.alpha, record.k, record.rep
                ),
            };
        }
        let key = (si, cell);
        let mut st = self.state.lock();
        match st.queue.complete(key) {
            Completion::First => {
                if let Some(w) = st.writer.as_mut() {
                    w.push(&JournalEntry {
                        sweep: self.specs[si].label.clone(),
                        cell,
                        grid: self.fingerprints[si],
                        record,
                    })
                    .expect("appending to the run journal");
                }
                let _ = st.ledger.log("complete", key, worker, None);
                Reply::Ack { duplicate: false }
            }
            Completion::Duplicate => {
                let _ = st.ledger.log("dup", key, worker, None);
                Reply::Ack { duplicate: true }
            }
        }
    }

    /// Closes the journal, compacts it into canonical order (erasing
    /// completion-order nondeterminism — this is where byte-identity
    /// with a single-process run is restored), and reports abandoned
    /// cells as an error instead of leaving silent holes.
    pub fn finish(&self) -> Result<(), String> {
        let mut st = self.state.lock();
        st.writer.take(); // drop flushes and closes the file
        let abandoned: Vec<CellKey> = st.queue.abandoned().copied().collect();
        drop(st);
        journal::compact(&self.journal_path, &self.specs)
            .map_err(|e| format!("compacting {}: {e}", self.journal_path.display()))?;
        if !abandoned.is_empty() {
            let listing: Vec<String> = abandoned
                .iter()
                .map(|(si, cell)| format!("'{}' cell {cell}", self.specs[*si].label))
                .collect();
            return Err(format!(
                "{}: {} cell(s) abandoned after repeated panics — {}; the failures are \
                 journaled, fix the cause and re-serve to retry them",
                self.experiment,
                abandoned.len(),
                listing.join(", ")
            ));
        }
        Ok(())
    }
}

/// Options for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:0` (port 0: pick a free one).
    pub listen: String,
    /// If set, the bound address is written here (atomically, via a
    /// temp file + rename) once listening — how scripts and the chaos
    /// CI job discover a port-0 coordinator.
    pub port_file: Option<PathBuf>,
}

/// Runs the coordinator's accept loop until every cell is done (or
/// abandoned), then finishes the journal. One thread per connection;
/// the loop polls a non-blocking listener so it can reclaim expired
/// leases and notice completion even while idle.
pub fn serve(coordinator: &Arc<Coordinator>, opts: &ServeOptions) -> std::io::Result<()> {
    let listener = TcpListener::bind(&opts.listen)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    eprintln!("[serve] {}: listening on {addr}", coordinator.experiment());
    if let Some(port_file) = &opts.port_file {
        if let Some(parent) = port_file.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = port_file.with_extension("tmp");
        fs::write(&tmp, format!("{addr}\n"))?;
        fs::rename(&tmp, port_file)?;
    }
    while !coordinator.is_finished() {
        match listener.accept() {
            Ok((stream, _)) => {
                let coordinator = Arc::clone(coordinator);
                std::thread::spawn(move || connection_loop(&coordinator, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                coordinator.tick(Instant::now());
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
    let (done, total) = coordinator.progress();
    eprintln!("[serve] {}: all cells accounted for ({done}/{total})", coordinator.experiment());
    coordinator.finish().map_err(std::io::Error::other)
    // Connection threads may still be blocked on dead workers; the
    // process exits without joining them (they hold no state the
    // journal doesn't already have).
}

fn connection_loop(coordinator: &Arc<Coordinator>, stream: TcpStream) {
    let mut worker = match stream.peer_addr() {
        Ok(peer) => format!("conn-{peer}"),
        Err(_) => "conn-unknown".to_string(),
    };
    let Ok(read_half) = stream.try_clone() else { return };
    let mut write_half = stream;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(request) => request,
            Err(reason) => {
                let _ = writeln!(write_half, "{}", Reply::Reject { reason }.render());
                break;
            }
        };
        if let Request::Hello { worker: name, .. } = &request {
            worker = name.clone();
        }
        let clean_bye = matches!(request, Request::Bye);
        if let Some(reply) = coordinator.handle(&worker, request, Instant::now()) {
            if writeln!(write_half, "{}", reply.render()).is_err() {
                break;
            }
        }
        if clean_bye {
            return; // handle() already released the worker's leases
        }
    }
    // EOF or I/O error without a BYE: the worker died — re-queue its
    // cells right away rather than waiting out the lease timeout.
    coordinator.disconnect(&worker);
}

/// Options for [`work`].
#[derive(Debug, Clone)]
pub struct WorkOptions {
    /// Coordinator address (`host:port`).
    pub connect: String,
    /// This worker's stable identifier (lease bookkeeping + backoff
    /// jitter seed).
    pub worker_id: String,
    /// Warm-start dynamics per `(sweep, rep)` arena.
    pub warm_start: bool,
}

/// Deterministically jittered exponential backoff, seeded from the
/// worker id: two workers restarting together won't hammer the
/// coordinator in lockstep, and a given worker's delays reproduce.
struct Backoff {
    state: u64,
    attempt: u32,
}

impl Backoff {
    fn new(seed_text: &str) -> Self {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for byte in seed_text.bytes() {
            state = splitmix(state ^ u64::from(byte));
        }
        Backoff { state, attempt: 0 }
    }

    fn jitter_ms(&mut self, range: u64) -> u64 {
        self.state = splitmix(self.state);
        self.state % range.max(1)
    }

    fn next_delay(&mut self) -> Duration {
        self.attempt += 1;
        let base = 50u64.saturating_mul(1 << self.attempt.min(5));
        Duration::from_millis(base + self.jitter_ms(base))
    }

    fn reset(&mut self) {
        self.attempt = 0;
    }
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How a worker session over one connection ended.
enum SessionEnd {
    /// The coordinator said DONE; the worker is finished.
    Done,
    /// The connection dropped; reconnect and carry on.
    Lost,
}

/// Per-worker solving state, kept across reconnects: lazily sampled
/// initial states per sweep, and one warm-start arena per
/// `(sweep, rep)` — cells of one rep reuse it whenever the queue
/// happens to hand them to the same worker (bit-identical either
/// way; the arena is purely a speedup). Scale sweeps keep their own
/// flat states and [`ScaleArena`]s so a million-node worker never
/// materialises a `GameState` or an `O(n)`-slot view cache.
struct Solver<'a> {
    specs: &'a [SweepSpec],
    warm_start: bool,
    states: HashMap<usize, Vec<GameState>>,
    arenas: HashMap<(usize, usize), CacheArena>,
    scale_states: HashMap<usize, Vec<ScaleState>>,
    scale_arenas: HashMap<(usize, usize), ScaleArena>,
}

impl Solver<'_> {
    fn solve(
        &mut self,
        si: usize,
        cell: usize,
        fault: Option<&FaultPlan>,
    ) -> Result<RunRecord, String> {
        let spec = &self.specs[si];
        let id = spec.cell(cell);
        // panic_cell targets canonical cell N of the plan's first sweep.
        let inject = si == 0 && fault.is_some_and(|f| f.panics_at_cell(cell));
        if spec.is_scale() {
            let states = self.scale_states.entry(si).or_insert_with(|| spec.scale_states());
            let arena = self.scale_arenas.entry((si, id.rep)).or_default();
            let (result, final_state) = solve_scale_cell_guarded(
                &states[id.rep],
                spec,
                spec.alphas[id.ai],
                spec.ks[id.ki],
                arena,
                inject,
            )?;
            return Ok(RunRecord::from_scale(
                spec.class(),
                spec.alphas[id.ai],
                spec.ks[id.ki],
                id.rep,
                &result,
                &final_state,
            ));
        }
        let states = self.states.entry(si).or_insert_with(|| spec.states());
        let arena = self.arenas.entry((si, id.rep)).or_default();
        let result = solve_cell_guarded(
            &states[id.rep],
            spec.scenario(),
            spec.alphas[id.ai],
            spec.ks[id.ki],
            self.warm_start,
            arena,
            inject,
        )?;
        Ok(RunRecord::new(
            spec.class(),
            spec.n,
            spec.alphas[id.ai],
            spec.ks[id.ki],
            id.rep,
            &result,
        ))
    }
}

/// Runs a worker against the coordinator at `opts.connect` until the
/// sweep is done. Reconnects with jittered exponential backoff if
/// the connection drops; once the coordinator has gone away after a
/// successful session (it exits when the sweep completes), the
/// worker exits cleanly — the coordinator's journal is the source of
/// truth, a worker has nothing to flush.
pub fn work(experiment: &str, specs: &[SweepSpec], opts: &WorkOptions) -> std::io::Result<()> {
    let fault = fault::env_plan();
    let fingerprints: Vec<u64> = specs.iter().map(|s| s.fingerprint()).collect();
    let mut solver = Solver {
        specs,
        warm_start: opts.warm_start,
        states: HashMap::new(),
        arenas: HashMap::new(),
        scale_states: HashMap::new(),
        scale_arenas: HashMap::new(),
    };
    let mut backoff = Backoff::new(&opts.worker_id);
    let mut ever_connected = false;
    loop {
        let stream = match TcpStream::connect(&opts.connect) {
            Ok(stream) => stream,
            Err(e) => {
                if ever_connected {
                    eprintln!(
                        "[work {}] coordinator at {} is gone; exiting (journal is with the \
                         coordinator)",
                        opts.worker_id, opts.connect
                    );
                    return Ok(());
                }
                if backoff.attempt >= 12 {
                    return Err(std::io::Error::other(format!(
                        "could not reach the coordinator at {}: {e}",
                        opts.connect
                    )));
                }
                std::thread::sleep(backoff.next_delay());
                continue;
            }
        };
        ever_connected = true;
        backoff.reset();
        match session(experiment, &fingerprints, &mut solver, stream, opts, fault.as_deref()) {
            Ok(SessionEnd::Done) => {
                eprintln!("[work {}] sweep complete; exiting", opts.worker_id);
                return Ok(());
            }
            Ok(SessionEnd::Lost) => {
                std::thread::sleep(backoff.next_delay());
            }
            Err(e) => return Err(e),
        }
    }
}

/// One request/reply exchange; `Err(io)` on a dropped connection.
fn exchange(
    write_half: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &Request,
) -> std::io::Result<Reply> {
    writeln!(write_half, "{}", request.render())?;
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "coordinator closed"));
    }
    Reply::parse(&line).map_err(std::io::Error::other)
}

fn session(
    experiment: &str,
    fingerprints: &[u64],
    solver: &mut Solver<'_>,
    stream: TcpStream,
    opts: &WorkOptions,
    fault: Option<&FaultPlan>,
) -> std::io::Result<SessionEnd> {
    let mut write_half = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let hello = Request::Hello {
        worker: opts.worker_id.clone(),
        experiment: experiment.to_string(),
        fingerprints: fingerprints.to_vec(),
    };
    let lease_ms = match exchange(&mut write_half, &mut reader, &hello) {
        Ok(Reply::Welcome { lease_ms }) => lease_ms,
        Ok(Reply::Reject { reason }) => {
            // A rejection is a configuration error, not a transient:
            // retrying would loop forever.
            return Err(std::io::Error::other(format!("coordinator rejected us: {reason}")));
        }
        Ok(other) => {
            return Err(std::io::Error::other(format!("unexpected handshake reply {other:?}")))
        }
        Err(_) => return Ok(SessionEnd::Lost),
    };
    // The heartbeat runs on its own connection so its frames can
    // never interleave with the request/reply stream. It stops when
    // the session ends — or when a `stall` fault freezes the whole
    // worker, beats included, which is exactly what lease expiry
    // exists to survive.
    let current: Arc<Mutex<Option<(usize, usize)>>> = Arc::new(Mutex::new(None));
    let stop = Arc::new(AtomicBool::new(false));
    let beat_handle = {
        let connect = opts.connect.clone();
        let worker_id = opts.worker_id.clone();
        let experiment = experiment.to_string();
        let fingerprints = fingerprints.to_vec();
        let current = Arc::clone(&current);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let Ok(stream) = TcpStream::connect(&connect) else { return };
            let Ok(mut write_half) = stream.try_clone() else { return };
            let mut reader = BufReader::new(stream);
            let hello = Request::Hello { worker: worker_id, experiment, fingerprints };
            if exchange(&mut write_half, &mut reader, &hello).is_err() {
                return;
            }
            let pause = Duration::from_millis((lease_ms / 3).max(10));
            while !stop.load(Ordering::Relaxed) {
                if let Some((si, cell)) = *current.lock() {
                    if writeln!(write_half, "{}", Request::Beat { si, cell }.render()).is_err() {
                        return;
                    }
                    let _ = write_half.flush();
                }
                std::thread::sleep(pause);
            }
        })
    };
    let end = session_loop(solver, &mut write_half, &mut reader, &current, fault);
    stop.store(true, Ordering::Relaxed);
    if matches!(end, Ok(SessionEnd::Done)) {
        let _ = writeln!(write_half, "{}", Request::Bye.render());
        let _ = beat_handle.join();
    }
    end
}

fn session_loop(
    solver: &mut Solver<'_>,
    write_half: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    current: &Mutex<Option<(usize, usize)>>,
    fault: Option<&FaultPlan>,
) -> std::io::Result<SessionEnd> {
    let mut wait_jitter = Backoff::new("wait-jitter");
    loop {
        let reply = match exchange(write_half, reader, &Request::Lease) {
            Ok(reply) => reply,
            Err(_) => return Ok(SessionEnd::Lost),
        };
        match reply {
            Reply::Cell { si, cell } => {
                if si >= solver.specs.len() || cell >= solver.specs[si].cell_count() {
                    return Err(std::io::Error::other(format!(
                        "coordinator leased unknown cell ({si}, {cell})"
                    )));
                }
                if fault.is_some_and(|f| f.should_stall()) {
                    // A frozen straggler: holds the lease, never
                    // beats again, never finishes. The lease timeout
                    // re-issues the cell to someone else.
                    *current.lock() = None;
                    eprintln!("[ncg-fault] stalling forever with cell ({si}, {cell}) leased");
                    loop {
                        std::thread::sleep(Duration::from_secs(3600));
                    }
                }
                *current.lock() = Some((si, cell));
                let outcome = solver.solve(si, cell, fault);
                *current.lock() = None;
                let request = match outcome {
                    Ok(record) => {
                        if let Some(f) = fault {
                            if f.should_die_before_result() {
                                f.abort("before reporting a cell result");
                            }
                        }
                        let record = serde_json::to_string(&record)
                            .map_err(|e| std::io::Error::other(e.to_string()))?;
                        Request::Result { si, cell, record }
                    }
                    Err(message) => {
                        Request::Failed { si, cell, message: message.replace('\n', "; ") }
                    }
                };
                let sends = if fault.is_some_and(|f| f.duplicates_completions()) { 2 } else { 1 };
                for _ in 0..sends {
                    match exchange(write_half, reader, &request) {
                        Ok(Reply::Ack { .. }) => {}
                        Ok(Reply::Reject { reason }) => {
                            return Err(std::io::Error::other(format!(
                                "coordinator rejected a report: {reason}"
                            )))
                        }
                        Ok(other) => {
                            return Err(std::io::Error::other(format!(
                                "unexpected report reply {other:?}"
                            )))
                        }
                        Err(_) => return Ok(SessionEnd::Lost),
                    }
                }
            }
            Reply::Wait { ms } => {
                std::thread::sleep(Duration::from_millis(ms + wait_jitter.jitter_ms(ms.max(1))));
            }
            Reply::Done => return Ok(SessionEnd::Done),
            Reply::Reject { reason } => {
                return Err(std::io::Error::other(format!("coordinator rejected us: {reason}")))
            }
            other => {
                return Err(std::io::Error::other(format!("unexpected lease reply {other:?}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(lease_ms: u64, max_retries: usize) -> QueueOptions {
        QueueOptions { lease: Duration::from_millis(lease_ms), max_retries }
    }

    #[test]
    fn leases_grant_in_canonical_order_and_finish() {
        let t0 = Instant::now();
        let mut q = WorkQueue::new([(0, 1), (0, 0), (1, 0)], [], opts(1000, 3));
        assert_eq!(q.lease("a", t0), Grant::Cell((0, 0)));
        assert_eq!(q.lease("b", t0), Grant::Cell((0, 1)));
        assert_eq!(q.lease("a", t0), Grant::Cell((1, 0)));
        assert_eq!(q.lease("b", t0), Grant::Wait, "everything is leased out");
        assert!(!q.is_finished());
        assert_eq!(q.complete((0, 0)), Completion::First);
        assert_eq!(q.complete((0, 1)), Completion::First);
        assert_eq!(q.complete((1, 0)), Completion::First);
        assert_eq!(q.lease("a", t0), Grant::Finished);
        assert!(q.is_finished());
        assert_eq!(q.progress(), (3, 3));
    }

    #[test]
    fn resumed_done_cells_are_never_granted() {
        let t0 = Instant::now();
        let mut q = WorkQueue::new([(0, 0), (0, 1), (0, 2)], [(0, 1)], opts(1000, 3));
        assert_eq!(q.lease("a", t0), Grant::Cell((0, 0)));
        assert_eq!(q.lease("a", t0), Grant::Cell((0, 2)));
        assert_eq!(q.complete((0, 1)), Completion::Duplicate, "already done from the journal");
    }

    #[test]
    fn expiry_requeues_and_heartbeat_prevents_it() {
        let t0 = Instant::now();
        let mut q = WorkQueue::new([(0, 0), (0, 1)], [], opts(100, 3));
        assert_eq!(q.lease("a", t0), Grant::Cell((0, 0)));
        assert_eq!(q.lease("b", t0), Grant::Cell((0, 1)));
        // b beats at t+80; a does not.
        let t80 = t0 + Duration::from_millis(80);
        assert!(q.heartbeat("b", (0, 1), t80));
        let t150 = t0 + Duration::from_millis(150);
        let expired = q.expire(t150);
        assert_eq!(expired, vec![((0, 0), "a".to_string())], "only a's lease lapses");
        // The re-issued cell goes to the next asker…
        assert_eq!(q.lease("c", t150), Grant::Cell((0, 0)));
        // …and a's stale heartbeat no longer owns it.
        assert!(!q.heartbeat("a", (0, 0), t150));
    }

    #[test]
    fn late_completion_after_expiry_still_wins_once() {
        let t0 = Instant::now();
        let mut q = WorkQueue::new([(0, 0)], [], opts(50, 3));
        assert_eq!(q.lease("a", t0), Grant::Cell((0, 0)));
        let t100 = t0 + Duration::from_millis(100);
        q.expire(t100);
        assert_eq!(q.lease("b", t100), Grant::Cell((0, 0)), "re-issued to b");
        // a finishes late — genuine work, deterministic bytes: first
        // completion wins, b's later one is the duplicate.
        assert_eq!(q.complete((0, 0)), Completion::First);
        assert_eq!(q.complete((0, 0)), Completion::Duplicate);
        assert!(q.is_finished());
    }

    #[test]
    fn failures_requeue_then_abandon_and_disconnect_releases() {
        let t0 = Instant::now();
        let mut q = WorkQueue::new([(0, 0), (0, 1)], [], opts(1000, 1));
        assert_eq!(q.lease("a", t0), Grant::Cell((0, 0)));
        assert_eq!(q.fail((0, 0)), Failure::Requeued, "first panic: retry");
        assert_eq!(q.lease("b", t0), Grant::Cell((0, 0)));
        assert_eq!(q.fail((0, 0)), Failure::Abandoned, "second panic: give up");
        assert_eq!(q.lease("b", t0), Grant::Cell((0, 1)));
        assert_eq!(q.release_worker("b"), vec![(0, 1)], "disconnect re-queues b's lease");
        assert_eq!(q.lease("c", t0), Grant::Cell((0, 1)));
        assert_eq!(q.complete((0, 1)), Completion::First);
        assert_eq!(q.lease("c", t0), Grant::Finished, "abandoned cells don't block finish");
        assert_eq!(q.abandoned().copied().collect::<Vec<_>>(), vec![(0, 0)]);
        assert_eq!(q.fail((0, 1)), Failure::Stale, "failing a done cell is moot");
    }

    #[test]
    fn ledger_replay_reports_orphaned_grants() {
        let dir = std::env::temp_dir().join(format!("ncg_ledger_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = ledger_path(&dir, "demo");
        let (mut ledger, orphaned) = LeaseLedger::open(&path).unwrap();
        assert!(orphaned.is_empty());
        ledger.log("grant", (0, 0), "a", None).unwrap();
        ledger.log("grant", (0, 1), "a", None).unwrap();
        ledger.log("complete", (0, 0), "a", None).unwrap();
        ledger.log("grant", (0, 2), "b", None).unwrap();
        ledger.log("expire", (0, 2), "b", None).unwrap();
        ledger.log("grant", (0, 2), "c", Some("re-issued\nwith newline")).unwrap();
        drop(ledger);
        // Tear the tail, as a coordinator SIGKILL mid-write would.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"grant 0 3");
        fs::write(&path, &bytes).unwrap();
        let (_ledger, orphaned) = LeaseLedger::open(&path).unwrap();
        assert_eq!(
            orphaned,
            vec![(0, 1), (0, 2)],
            "grants without terminal events — the torn one dropped"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_is_deterministic_per_worker_and_differs_between_them() {
        let delays = |id: &str| {
            let mut b = Backoff::new(id);
            (0..4).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(delays("w1"), delays("w1"), "same worker, same delays");
        assert_ne!(delays("w1"), delays("w2"), "different workers desynchronise");
        let mut b = Backoff::new("w1");
        let first = b.next_delay();
        let second = b.next_delay();
        assert!(second >= first, "delays grow (with jitter on top of a doubling base)");
    }
}
