//! Computational certification of the lower-bound gadgets:
//! Lemma 3.1 (cycle), Lemma 3.2 (high girth), Theorem 3.12 (MaxNCG
//! torus) and Theorem 4.2 (SumNCG torus). For each instance the table
//! reports whether the exact solver confirms the LKE property, the
//! witnessed PoA (`SC/OPT`), and the theory bound at the same
//! parameters.
//!
//! This sweep was the last caller that re-solved every construction
//! from a cold scratch on a single core. Certification now routes
//! through `ncg_solver::is_lke_par`: the `n` best responses of each
//! gadget fan out over the work-stealing pool with one `Responder`
//! (hence one warm `SolverScratch`) per worker, and a found violation
//! short-circuits the remaining players. (Inside pool workers the
//! individual solves stay sequential — the player fan-out is the
//! parallelism; the §8 frontier split serves top-level callers.) The
//! table bytes are independent of `NCG_THREADS` — the CI determinism
//! job diffs them across thread counts.

use ncg_constructions::{cycle, high_girth, TorusGrid};
use ncg_core::GameSpec;
use ncg_stats::Table;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{ExperimentOutput, Profile};

/// Runs all certifications. The profile scales the instance sizes.
pub fn run(profile: &Profile) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("lower_bounds");
    out.notes = format!(
        "Lower-bound gadget certification (exact best responses for every player); \
         profile: {}",
        profile.name
    );
    let big = profile.name == "paper";
    let mut table = Table::new([
        "construction",
        "params",
        "n",
        "spec",
        "certified LKE",
        "witnessed PoA",
        "theory LB",
    ]);

    // Lemma 3.1 — cycles.
    let cycle_cases: &[(usize, f64, u32)] = if big {
        &[(60, 1.0, 1), (100, 2.0, 3), (200, 5.0, 4), (300, 9.0, 6)]
    } else {
        &[(30, 1.0, 1), (40, 2.0, 3), (60, 5.0, 4)]
    };
    for &(n, alpha, k) in cycle_cases {
        let spec = GameSpec::max(alpha, k);
        table.push_row([
            "cycle (Lemma 3.1)".to_string(),
            format!("n={n}"),
            n.to_string(),
            format!("Max α={alpha} k={k}"),
            cycle::certify(n, &spec).to_string(),
            format!("{:.2}", cycle::witnessed_poa(n, &spec)),
            format!("{:.2}", ncg_bounds::maxncg::lb_cycle(n, alpha, k).unwrap_or(1.0)),
        ]);
    }

    // Lemma 3.2 — high-girth graphs (MaxNCG) and Theorem 4.3 (SumNCG).
    let mut rng = ChaCha8Rng::seed_from_u64(profile.base_seed ^ 0x4c42);
    let hg_n = if big { 120 } else { 60 };
    let gadget = high_girth::build(hg_n, 3, 2, &mut rng).expect("generator parameters valid");
    let spec = GameSpec::max(5.0, 2);
    table.push_row([
        "high girth (Lemma 3.2)".to_string(),
        format!("q=3, girth≥6 (actual {:?})", gadget.girth),
        hg_n.to_string(),
        "Max α=5 k=2".to_string(),
        gadget.certify(&spec).to_string(),
        format!("{:.2}", gadget.witnessed_poa(&spec).unwrap_or(f64::NAN)),
        format!("{:.2}", (hg_n as f64).powf(1.0 / 2.0)),
    ]);
    let sum_spec = GameSpec::sum((2 * hg_n) as f64, 2);
    table.push_row([
        "high girth (Thm 4.3)".to_string(),
        "q=3, girth≥6, α=kn".to_string(),
        hg_n.to_string(),
        format!("Sum α={} k=2", 2 * hg_n),
        gadget.certify(&sum_spec).to_string(),
        format!("{:.2}", gadget.witnessed_poa(&sum_spec).unwrap_or(f64::NAN)),
        format!("{:.2}", (hg_n as f64).powf(1.0 / 2.0)),
    ]);

    // Theorem 3.12 — MaxNCG torus.
    let torus_cases: &[(f64, u32, u32)] =
        if big { &[(2.0, 2, 6), (2.0, 2, 12), (3.0, 3, 8)] } else { &[(2.0, 2, 4), (2.0, 2, 8)] };
    for &(alpha, k, dlast) in torus_cases {
        let t = TorusGrid::for_theorem_312(alpha, k, dlast).expect("valid parameters");
        let spec = GameSpec::max(alpha, k);
        table.push_row([
            "torus (Thm 3.12)".to_string(),
            format!("ℓ={} d={} δ={:?}", t.ell, t.d, t.deltas),
            t.n().to_string(),
            format!("Max α={alpha} k={k}"),
            t.certify(&spec).to_string(),
            format!("{:.2}", t.witnessed_poa(&spec).unwrap_or(f64::NAN)),
            format!("{:.2}", ncg_bounds::maxncg::lb_torus(t.n(), alpha, k).unwrap_or(1.0)),
        ]);
    }

    // Theorem 4.2 — SumNCG torus.
    let sum_torus: &[(u32, u32, f64)] = if big {
        &[(2, 4, 40.0), (2, 8, 40.0), (3, 6, 110.0)]
    } else {
        &[(2, 3, 40.0), (2, 5, 40.0)]
    };
    for &(k, d2, alpha) in sum_torus {
        let t = TorusGrid::for_theorem_42(k, d2).expect("valid parameters");
        let spec = GameSpec::sum(alpha, k);
        table.push_row([
            "torus (Thm 4.2)".to_string(),
            format!("ℓ=2 d=2 δ={:?}", t.deltas),
            t.n().to_string(),
            format!("Sum α={alpha} k={k}"),
            t.certify(&spec).to_string(),
            format!("{:.2}", t.witnessed_poa(&spec).unwrap_or(f64::NAN)),
            format!("{:.2}", ncg_bounds::sumncg::lb_torus(t.n(), alpha, k).unwrap_or(1.0)),
        ]);
    }

    out.push_table("certifications", table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gadgets_certify_under_smoke_profile() {
        let out = run(&Profile::smoke());
        let csv = out.tables[0].1.render(ncg_stats::TableStyle::Csv);
        assert!(
            !csv.contains("false"),
            "every gadget inside its premise must certify as an LKE:\n{csv}"
        );
    }
}
