//! **Extension (beyond the paper):** swap-game dynamics under the
//! MaxNCG objective.
//!
//! The paper's players may buy or drop any subset of edges each turn.
//! The *swap game* (Yamauchi–Yoshimura-style move rule, the
//! [`MoveRulePolicy::Swap`] axis of the model zoo) restricts a move to
//! re-pointing exactly one owned edge — remove one purchase, add one —
//! so every player's purchase count is invariant for the whole run and
//! the per-move neighbourhood is polynomial (`1 + |σ_u|·(candidates −
//! |σ_u|)`), exactly enumerable at every view size. On the paper's
//! random-tree workload the edge *count* therefore never changes; what
//! the dynamics reshapes is purely the topology, which makes the swap
//! sweep a clean probe of how much of the paper's equilibrium
//! structure comes from edge-budget adjustment versus re-wiring.
//!
//! Converged corner cells are re-run and certified as local-knowledge
//! equilibria with exact swap-neighbourhood best responses, and the
//! purchase-count invariant is asserted per player; both checks are
//! exposed structurally as [`SwapCheck`].

use ncg_core::{MoveRulePolicy, Objective, Scenario};
use ncg_dynamics::DynamicsConfig;

use crate::engine::{self, MetricGrid, SweepContext};
use crate::output::grid_table;
use crate::sweep::SweepSpec;
use crate::{ExperimentOutput, Profile};

/// Structural outcome of the swap-sweep certification pass over the
/// grid's corner cells (rep 0): how many converged equilibria were
/// re-run and certified, and how many violated either the exact-LKE
/// property or the purchase-count invariant (must be zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwapCheck {
    /// Corner-cell runs re-executed and certified.
    pub certified: usize,
    /// Certified runs that failed LKE or count preservation.
    pub violations: usize,
}

/// Runs the swap-NCG extension sweep (local mode).
pub fn run(profile: &Profile) -> ExperimentOutput {
    run_ctx(profile, &SweepContext::local())
}

/// Runs the swap-NCG extension sweep under the given execution
/// context.
pub fn run_ctx(profile: &Profile, ctx: &SweepContext) -> ExperimentOutput {
    run_ctx_stats(profile, ctx).0
}

/// [`run_ctx`], also returning the certification counters
/// structurally (sharded runs skip certification; it belongs to the
/// folding process).
pub fn run_ctx_stats(profile: &Profile, ctx: &SweepContext) -> (ExperimentOutput, SwapCheck) {
    let scenario = Scenario::swap(Objective::Max);
    let n = profile.headline_tree_n();
    let mut out = ExperimentOutput::new("swap_ncg");
    let alphas = profile.alphas.clone();
    let ks = profile.ks.clone();
    let specs = vec![SweepSpec::tree(
        "main",
        n,
        profile.reps,
        profile.base_seed ^ 0x6u64,
        alphas.clone(),
        ks.clone(),
        scenario,
    )];
    let (rows, cols) = (alphas.len(), ks.len());
    let mut rounds = MetricGrid::new(rows, cols);
    let mut diameter = MetricGrid::new(rows, cols);
    let report = engine::execute(ctx, "swap_ncg", &specs, &mut |_, cell, rec| {
        rounds.push(cell.ai, cell.ki, rec.converged.then_some(rec.rounds as f64));
        diameter.push(cell.ai, cell.ki, rec.diameter.map(f64::from));
    });
    let mut check = SwapCheck::default();
    if let Some(note) = report.shard_note("swap_ncg") {
        out.notes = note;
        return (out, check);
    }
    // Certification pass (corner cells, rep 0): the swap best
    // response is exact at every view size, so a converged run is a
    // genuine LKE certificate; the move rule must also have preserved
    // every player's purchase count from the initial tree.
    let states = specs[0].states();
    let initial_counts: Vec<usize> = (0..n as u32).map(|u| states[0].strategy(u).len()).collect();
    let mut corners: Vec<(usize, usize)> =
        vec![(0, 0), (0, ks.len() - 1), (alphas.len() - 1, 0), (alphas.len() - 1, ks.len() - 1)];
    corners.dedup();
    for (ai, ki) in corners {
        let spec = scenario.spec(alphas[ai], ks[ki]);
        debug_assert!(spec.move_rule == MoveRulePolicy::Swap);
        let result = ncg_dynamics::run(states[0].clone(), &DynamicsConfig::new(spec));
        check.certified += 1;
        let counts_ok =
            (0..n as u32).all(|u| result.state.strategy(u).len() == initial_counts[u as usize]);
        let lke_ok = !result.outcome.converged() || ncg_solver::is_lke(&result.state, &spec);
        if !counts_ok || !lke_ok {
            check.violations += 1;
        }
    }
    out.notes = format!(
        "EXTENSION (not in the paper): swap-game dynamics (one owned edge re-pointed \
         per move) under the MaxNCG objective on random trees (n = {n}); the purchase \
         count of every player is invariant, so the tree's edge budget never changes \
         and only the topology evolves. Exact swap-neighbourhood best responses at \
         every view size. Profile: {} ({} reps). Certified {} corner-cell runs \
         (exact LKE + per-player count preservation): {} violations.",
        profile.name, profile.reps, check.certified, check.violations
    );
    let row_labels: Vec<String> = alphas.iter().map(|a| format!("{a}")).collect();
    let col_labels: Vec<String> = ks.iter().map(|k| format!("k={k}")).collect();
    out.push_table(
        "rounds",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| rounds.display(ri, ci, 1)),
    );
    out.push_table(
        "diameter",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| diameter.display(ri, ci, 1)),
    );
    (out, check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_sweep_runs_and_certifies_corner_cells() {
        let (out, check) = run_ctx_stats(&Profile::smoke(), &SweepContext::local());
        assert_eq!(out.tables.len(), 2);
        assert!(check.certified > 0, "{}", out.notes);
        assert_eq!(check.violations, 0, "{}", out.notes);
        assert!(out.notes.contains(": 0 violations"), "{}", out.notes);
    }

    #[test]
    fn swap_sweep_spec_fingerprint_differs_from_subset_games() {
        // Same grid, same seed: the swap axis must change the journal
        // fingerprint so swap journals can never be resumed into the
        // canonical sweep (or vice versa).
        let p = Profile::smoke();
        let subset =
            SweepSpec::tree("main", 16, p.reps, 1, p.alphas.clone(), p.ks.clone(), Objective::Max);
        let swap = SweepSpec::tree(
            "main",
            16,
            p.reps,
            1,
            p.alphas.clone(),
            p.ks.clone(),
            Scenario::swap(Objective::Max),
        );
        assert_ne!(subset.fingerprint(), swap.fingerprint());
    }
}
