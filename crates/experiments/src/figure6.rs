//! Figure 6: quality of the stable networks (`SC/OPT`) as a function
//! of `n`, one series per `k`, at `α = 1` (left panel) and `α = 10`
//! (right panel), on random trees.
//!
//! Paper shape: for small `k` the quality degrades linearly with `n`
//! (the PoA is `Θ(n)` there), while for `k` past the full-knowledge
//! threshold it is almost constant.

use ncg_core::Objective;
use ncg_stats::Summary;

use crate::output::grid_table;
use crate::sweep::{by_cell, sweep};
use crate::{workloads, ExperimentOutput, Profile};

/// The two `α` panels of the figure.
pub const PANEL_ALPHAS: [f64; 2] = [1.0, 10.0];

/// Runs the Figure 6 sweep under the given profile.
pub fn run(profile: &Profile) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("figure6");
    out.notes = format!(
        "Figure 6 — equilibrium quality vs n on random trees, α ∈ {{1, 10}}; profile: {} ({} reps)",
        profile.name, profile.reps
    );
    let row_labels: Vec<String> = profile.tree_ns.iter().map(|n| n.to_string()).collect();
    let col_labels: Vec<String> = profile.ks.iter().map(|k| format!("k={k}")).collect();
    for alpha in PANEL_ALPHAS {
        // One sweep per tree size (the starting networks differ by n).
        let mut qualities: Vec<Vec<Summary>> = Vec::new();
        for &n in &profile.tree_ns {
            let states = workloads::tree_states(n, profile.reps, profile.base_seed);
            let results = sweep(&states, &[alpha], &profile.ks, Objective::Max, None);
            let grouped = by_cell(&results, &[alpha], &profile.ks, profile.reps);
            qualities.push(
                grouped
                    .iter()
                    .map(|(_, cells)| {
                        Summary::of(
                            &cells
                                .iter()
                                .filter_map(|c| c.result.final_metrics.quality)
                                .collect::<Vec<f64>>(),
                        )
                    })
                    .collect(),
            );
        }
        let table =
            grid_table("n", &row_labels, &col_labels, |ri, ci| qualities[ri][ci].display(2));
        out.push_table(format!("quality_alpha{alpha}"), table);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_panels_with_one_row_per_n() {
        let out = run(&Profile::smoke());
        assert_eq!(out.tables.len(), 2);
        for (_, t) in &out.tables {
            assert_eq!(t.len(), Profile::smoke().tree_ns.len());
        }
    }

    #[test]
    fn quality_degrades_with_n_for_small_k() {
        // The Θ(n) regime: at α = 10, k = 2, quality grows with n.
        let profile = Profile { reps: 4, ..Profile::smoke() };
        let q = |n: usize| {
            let states = workloads::tree_states(n, profile.reps, profile.base_seed);
            let results = sweep(&states, &[10.0], &[2], Objective::Max, None);
            let vals: Vec<f64> =
                results.iter().filter_map(|c| c.result.final_metrics.quality).collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let q_small = q(16);
        let q_large = q(48);
        assert!(
            q_large > q_small,
            "quality must degrade with n in the small-k regime: {q_large} vs {q_small}"
        );
    }

    #[test]
    fn full_knowledge_quality_is_near_constant() {
        // At k = 1000 and α = 1 the equilibria are near-optimal stars
        // or low-diameter graphs; quality stays small and flat-ish.
        let profile = Profile { reps: 3, ..Profile::smoke() };
        let q = |n: usize| {
            let states = workloads::tree_states(n, profile.reps, profile.base_seed);
            let results = sweep(&states, &[1.0], &[1000], Objective::Max, None);
            let vals: Vec<f64> =
                results.iter().filter_map(|c| c.result.final_metrics.quality).collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let a = q(16);
        let b = q(40);
        assert!(a < 3.0 && b < 3.0, "full-knowledge equilibria should be near-optimal: {a}, {b}");
    }
}
