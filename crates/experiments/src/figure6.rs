//! Figure 6: quality of the stable networks (`SC/OPT`) as a function
//! of `n`, one series per `k`, at `α = 1` (left panel) and `α = 10`
//! (right panel), on random trees.
//!
//! Paper shape: for small `k` the quality degrades linearly with `n`
//! (the PoA is `Θ(n)` there), while for `k` past the full-knowledge
//! threshold it is almost constant.

use ncg_core::Objective;

use crate::engine::{self, MetricGrid, SweepContext};
use crate::output::grid_table;
use crate::sweep::SweepSpec;
use crate::{ExperimentOutput, Profile};

/// The two `α` panels of the figure.
pub const PANEL_ALPHAS: [f64; 2] = [1.0, 10.0];

/// Runs the Figure 6 sweep under the given profile (local mode).
pub fn run(profile: &Profile) -> ExperimentOutput {
    run_ctx(profile, &SweepContext::local())
}

/// Runs the Figure 6 sweep under the given execution context.
pub fn run_ctx(profile: &Profile, ctx: &SweepContext) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("figure6");
    // One sweep per (panel α, tree size): the starting networks
    // differ by n, and each sweep is a 1 × |ks| grid.
    let mut specs = Vec::new();
    for alpha in PANEL_ALPHAS {
        for &n in &profile.tree_ns {
            specs.push(SweepSpec::tree(
                format!("alpha{alpha}_n{n}"),
                n,
                profile.reps,
                profile.base_seed,
                vec![alpha],
                profile.ks.clone(),
                Objective::Max,
            ));
        }
    }
    // quality[panel][n-index] is a 1 × |ks| grid.
    let mut quality: Vec<MetricGrid> =
        specs.iter().map(|_| MetricGrid::new(1, profile.ks.len())).collect();
    let report = engine::execute(ctx, "figure6", &specs, &mut |si, cell, rec| {
        quality[si].push(0, cell.ki, rec.quality);
    });
    if let Some(note) = report.shard_note("figure6") {
        out.notes = note;
        return out;
    }
    out.notes = format!(
        "Figure 6 — equilibrium quality vs n on random trees, α ∈ {{1, 10}}; profile: {} ({} reps)",
        profile.name, profile.reps
    );
    let row_labels: Vec<String> = profile.tree_ns.iter().map(|n| n.to_string()).collect();
    let col_labels: Vec<String> = profile.ks.iter().map(|k| format!("k={k}")).collect();
    for (pi, alpha) in PANEL_ALPHAS.iter().enumerate() {
        let base = pi * profile.tree_ns.len();
        let table = grid_table("n", &row_labels, &col_labels, |ri, ci| {
            quality[base + ri].display(0, ci, 2)
        });
        out.push_table(format!("quality_alpha{alpha}"), table);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep;
    use crate::workloads;

    #[test]
    fn two_panels_with_one_row_per_n() {
        let out = run(&Profile::smoke());
        assert_eq!(out.tables.len(), 2);
        for (_, t) in &out.tables {
            assert_eq!(t.len(), Profile::smoke().tree_ns.len());
        }
    }

    #[test]
    fn quality_degrades_with_n_for_small_k() {
        // The Θ(n) regime: at α = 10, k = 2, quality grows with n.
        let profile = Profile { reps: 4, ..Profile::smoke() };
        let q = |n: usize| {
            let states = workloads::tree_states(n, profile.reps, profile.base_seed);
            let results = sweep(&states, &[10.0], &[2], Objective::Max, None);
            let vals: Vec<f64> =
                results.iter().filter_map(|c| c.result.final_metrics.quality).collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let q_small = q(16);
        let q_large = q(48);
        assert!(
            q_large > q_small,
            "quality must degrade with n in the small-k regime: {q_large} vs {q_small}"
        );
    }

    #[test]
    fn full_knowledge_quality_is_near_constant() {
        // At k = 1000 and α = 1 the equilibria are near-optimal stars
        // or low-diameter graphs; quality stays small and flat-ish.
        let profile = Profile { reps: 3, ..Profile::smoke() };
        let q = |n: usize| {
            let states = workloads::tree_states(n, profile.reps, profile.base_seed);
            let results = sweep(&states, &[1.0], &[1000], Objective::Max, None);
            let vals: Vec<f64> =
                results.iter().filter_map(|c| c.result.final_metrics.quality).collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let a = q(16);
        let b = q(40);
        assert!(a < 3.0 && b < 3.0, "full-knowledge equilibria should be near-optimal: {a}, {b}");
    }
}
