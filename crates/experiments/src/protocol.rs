//! The line protocol between the sweep coordinator (`serve`) and its
//! workers (`work`): newline-delimited ASCII frames over TCP.
//!
//! Design constraints, in order:
//!
//! 1. **Idempotence-friendly** — every mutation the protocol can
//!    express (`RESULT`, `FAILED`) names its cell explicitly, so the
//!    coordinator can deduplicate replays and late arrivals by key,
//!    never by connection state.
//! 2. **Strict request/reply alignment** — on the main connection
//!    every request gets exactly one reply, in order. Heartbeats
//!    (`BEAT`) get *no* reply and therefore travel on a dedicated
//!    second connection, so a beat can never desynchronise the
//!    lease/result stream.
//! 3. **Greppable** — frames are single text lines a human can read
//!    off a `tcpdump` or replay with `nc`.
//!
//! Frames (`<...>` fields are space-separated; the *last* field of
//! `RESULT`, `FAILED`, and `REJECT` takes the rest of the line, so
//! JSON records and panic messages need no escaping):
//!
//! ```text
//! worker → coordinator                 coordinator → worker
//! ─────────────────────                ────────────────────
//! HELLO <worker> <experiment> <fps>    WELCOME <lease_ms> | REJECT <reason>
//! LEASE                                CELL <si> <cell> | WAIT <ms> | DONE
//! RESULT <si> <cell> <record-json>     ACK <fresh|dup>
//! FAILED <si> <cell> <message>         ACK <fresh|dup>
//! BEAT <si> <cell>                     (no reply)
//! BYE                                  (no reply; connection closes)
//! ```
//!
//! `<fps>` is the comma-separated list of the plan's grid
//! fingerprints in hex (`-` for an empty plan): the coordinator
//! rejects a worker whose profile would compute different cells, the
//! same guard the journals' grid fingerprint provides on disk.

/// A worker-to-coordinator frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Handshake: who is asking, for which experiment, under which
    /// per-sweep grid fingerprints.
    Hello {
        /// Worker identifier (no spaces; used in lease bookkeeping).
        worker: String,
        /// Experiment name the worker planned.
        experiment: String,
        /// [`crate::sweep::SweepSpec::fingerprint`] per planned sweep.
        fingerprints: Vec<u64>,
    },
    /// Ask for one cell to solve.
    Lease,
    /// Still working on `(si, cell)` — extend the lease.
    Beat {
        /// Sweep position in the plan.
        si: usize,
        /// Canonical cell index.
        cell: usize,
    },
    /// A finished cell's record (the JSON of a `RunRecord`).
    Result {
        /// Sweep position in the plan.
        si: usize,
        /// Canonical cell index.
        cell: usize,
        /// The record as a JSON object, verbatim.
        record: String,
    },
    /// A cell whose solve panicked.
    Failed {
        /// Sweep position in the plan.
        si: usize,
        /// Canonical cell index.
        cell: usize,
        /// The panic payload rendered as a string.
        message: String,
    },
    /// Clean goodbye; the coordinator releases this worker's leases.
    Bye,
}

/// A coordinator-to-worker frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Handshake accepted; leases expire after `lease_ms` without a
    /// beat.
    Welcome {
        /// Lease timeout in milliseconds.
        lease_ms: u64,
    },
    /// Handshake refused (profile mismatch, unknown experiment).
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// One leased cell to solve.
    Cell {
        /// Sweep position in the plan.
        si: usize,
        /// Canonical cell index.
        cell: usize,
    },
    /// Nothing leasable right now (all cells leased out); retry after
    /// roughly `ms` milliseconds.
    Wait {
        /// Suggested retry delay in milliseconds.
        ms: u64,
    },
    /// Every cell is complete; the worker should say BYE and exit.
    Done,
    /// A RESULT/FAILED was recorded; `duplicate` when the cell had
    /// already been completed by someone (idempotent replay).
    Ack {
        /// `true` iff this completion was a duplicate.
        duplicate: bool,
    },
}

fn split_head(line: &str) -> (&str, &str) {
    match line.split_once(' ') {
        Some((head, rest)) => (head, rest),
        None => (line, ""),
    }
}

fn parse_two(rest: &str, frame: &str) -> Result<(usize, usize), String> {
    let mut it = rest.split(' ').filter(|s| !s.is_empty());
    let parse = |field: Option<&str>| {
        field.and_then(|f| f.parse::<usize>().ok()).ok_or_else(|| format!("malformed {frame}"))
    };
    let si = parse(it.next())?;
    let cell = parse(it.next())?;
    if it.next().is_some() {
        return Err(format!("malformed {frame}: trailing fields"));
    }
    Ok((si, cell))
}

fn parse_two_rest(rest: &str, frame: &str) -> Result<(usize, usize, String), String> {
    let (si, rest) = split_head(rest);
    let (cell, tail) = split_head(rest);
    let si = si.parse::<usize>().map_err(|_| format!("malformed {frame}"))?;
    let cell = cell.parse::<usize>().map_err(|_| format!("malformed {frame}"))?;
    Ok((si, cell, tail.to_string()))
}

fn render_fingerprints(fps: &[u64]) -> String {
    if fps.is_empty() {
        "-".to_string()
    } else {
        fps.iter().map(|fp| format!("{fp:x}")).collect::<Vec<_>>().join(",")
    }
}

fn parse_fingerprints(text: &str) -> Result<Vec<u64>, String> {
    if text == "-" {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|fp| u64::from_str_radix(fp, 16).map_err(|_| format!("bad fingerprint {fp:?}")))
        .collect()
}

impl Request {
    /// Renders the frame as one line (without the trailing newline).
    pub fn render(&self) -> String {
        match self {
            Request::Hello { worker, experiment, fingerprints } => {
                format!("HELLO {worker} {experiment} {}", render_fingerprints(fingerprints))
            }
            Request::Lease => "LEASE".to_string(),
            Request::Beat { si, cell } => format!("BEAT {si} {cell}"),
            Request::Result { si, cell, record } => format!("RESULT {si} {cell} {record}"),
            Request::Failed { si, cell, message } => format!("FAILED {si} {cell} {message}"),
            Request::Bye => "BYE".to_string(),
        }
    }

    /// Parses one line (trailing newline already stripped).
    pub fn parse(line: &str) -> Result<Self, String> {
        let (head, rest) = split_head(line.trim_end_matches(['\r', '\n']));
        match head {
            "HELLO" => {
                let mut it = rest.split(' ').filter(|s| !s.is_empty());
                let worker = it.next().ok_or("malformed HELLO: missing worker")?.to_string();
                let experiment =
                    it.next().ok_or("malformed HELLO: missing experiment")?.to_string();
                let fingerprints =
                    parse_fingerprints(it.next().ok_or("malformed HELLO: missing fingerprints")?)?;
                if it.next().is_some() {
                    return Err("malformed HELLO: trailing fields".to_string());
                }
                Ok(Request::Hello { worker, experiment, fingerprints })
            }
            "LEASE" if rest.is_empty() => Ok(Request::Lease),
            "BEAT" => {
                let (si, cell) = parse_two(rest, "BEAT")?;
                Ok(Request::Beat { si, cell })
            }
            "RESULT" => {
                let (si, cell, record) = parse_two_rest(rest, "RESULT")?;
                Ok(Request::Result { si, cell, record })
            }
            "FAILED" => {
                let (si, cell, message) = parse_two_rest(rest, "FAILED")?;
                Ok(Request::Failed { si, cell, message })
            }
            "BYE" if rest.is_empty() => Ok(Request::Bye),
            _ => Err(format!("unknown request frame {line:?}")),
        }
    }
}

impl Reply {
    /// Renders the frame as one line (without the trailing newline).
    pub fn render(&self) -> String {
        match self {
            Reply::Welcome { lease_ms } => format!("WELCOME {lease_ms}"),
            Reply::Reject { reason } => format!("REJECT {reason}"),
            Reply::Cell { si, cell } => format!("CELL {si} {cell}"),
            Reply::Wait { ms } => format!("WAIT {ms}"),
            Reply::Done => "DONE".to_string(),
            Reply::Ack { duplicate } => {
                format!("ACK {}", if *duplicate { "dup" } else { "fresh" })
            }
        }
    }

    /// Parses one line (trailing newline already stripped).
    pub fn parse(line: &str) -> Result<Self, String> {
        let (head, rest) = split_head(line.trim_end_matches(['\r', '\n']));
        match head {
            "WELCOME" => rest
                .parse::<u64>()
                .map(|lease_ms| Reply::Welcome { lease_ms })
                .map_err(|_| "malformed WELCOME".to_string()),
            "REJECT" => Ok(Reply::Reject { reason: rest.to_string() }),
            "CELL" => {
                let (si, cell) = parse_two(rest, "CELL")?;
                Ok(Reply::Cell { si, cell })
            }
            "WAIT" => rest
                .parse::<u64>()
                .map(|ms| Reply::Wait { ms })
                .map_err(|_| "malformed WAIT".to_string()),
            "DONE" if rest.is_empty() => Ok(Reply::Done),
            "ACK" => match rest {
                "fresh" => Ok(Reply::Ack { duplicate: false }),
                "dup" => Ok(Reply::Ack { duplicate: true }),
                _ => Err("malformed ACK".to_string()),
            },
            _ => Err(format!("unknown reply frame {line:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let frames = vec![
            Request::Hello {
                worker: "w1".into(),
                experiment: "figure5".into(),
                fingerprints: vec![0xdeadbeef, 7],
            },
            Request::Hello { worker: "w".into(), experiment: "e".into(), fingerprints: vec![] },
            Request::Lease,
            Request::Beat { si: 0, cell: 12 },
            Request::Result {
                si: 1,
                cell: 3,
                record: r#"{"class":"tree","n":10,"alpha":0.5}"#.into(),
            },
            Request::Failed { si: 0, cell: 9, message: "index out of bounds: the len".into() },
            Request::Bye,
        ];
        for frame in frames {
            let line = frame.render();
            assert!(!line.contains('\n'));
            assert_eq!(Request::parse(&line).unwrap(), frame, "round-trip of {line:?}");
            assert_eq!(Request::parse(&format!("{line}\n")).unwrap(), frame, "newline tolerated");
        }
    }

    #[test]
    fn replies_round_trip() {
        let frames = vec![
            Reply::Welcome { lease_ms: 15000 },
            Reply::Reject { reason: "grid fingerprints differ: run the same profile".into() },
            Reply::Cell { si: 2, cell: 41 },
            Reply::Wait { ms: 250 },
            Reply::Done,
            Reply::Ack { duplicate: false },
            Reply::Ack { duplicate: true },
        ];
        for frame in frames {
            let line = frame.render();
            assert_eq!(Reply::parse(&line).unwrap(), frame, "round-trip of {line:?}");
        }
    }

    #[test]
    fn rest_of_line_fields_keep_their_spaces() {
        let msg = "panicked at 'assertion failed: a == b', src/lib.rs:1:1";
        let frame = Request::parse(&format!("FAILED 0 3 {msg}")).unwrap();
        assert_eq!(frame, Request::Failed { si: 0, cell: 3, message: msg.into() });
        let reason = "experiment 'figure5' is not being served here";
        assert_eq!(
            Reply::parse(&format!("REJECT {reason}")).unwrap(),
            Reply::Reject { reason: reason.into() }
        );
    }

    #[test]
    fn garbage_is_rejected_not_misparsed() {
        for bad in [
            "",
            "NOPE",
            "LEASE extra",
            "BEAT 1",
            "BEAT x y",
            "BEAT 1 2 3",
            "RESULT 1",
            "HELLO onlyworker",
            "HELLO w e xyz",
            "BYE now",
        ] {
            assert!(Request::parse(bad).is_err(), "request {bad:?} must be rejected");
        }
        for bad in ["", "WELCOME", "WELCOME x", "CELL 1", "ACK maybe", "DONE done"] {
            assert!(Reply::parse(bad).is_err(), "reply {bad:?} must be rejected");
        }
    }
}
