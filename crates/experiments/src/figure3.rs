//! Figure 3: the MaxNCG `(α, k)` bound map — region labels plus the
//! evaluated lower/upper PoA bounds on a log-spaced grid at a fixed
//! (large) `n`, regenerating the information content of the paper's
//! region diagram.

use ncg_bounds::maxncg;
use ncg_stats::Table;

use crate::output::grid_table;
use crate::{ExperimentOutput, Profile};

/// The `n` the asymptotic map is evaluated at (`2^30`: large enough
/// that the region boundaries separate cleanly).
pub const MAP_N: usize = 1 << 30;

fn region_label(r: maxncg::Region) -> &'static str {
    match r {
        maxncg::Region::FullKnowledge => "NE≡LKE",
        maxncg::Region::R1 => "1",
        maxncg::Region::R2 => "2",
        maxncg::Region::R3 => "3",
        maxncg::Region::R4 => "4",
        maxncg::Region::R5 => "5",
        maxncg::Region::R6 => "6",
        maxncg::Region::R7 => "7",
        maxncg::Region::R8 => "8",
    }
}

/// Runs the Figure 3 map (profile only tags the notes).
pub fn run(profile: &Profile) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("figure3");
    out.notes = format!(
        "Figure 3 — MaxNCG (α, k) region map at n = 2^30 with evaluated bounds \
         (constants = 1); profile: {}",
        profile.name
    );
    let alphas: Vec<f64> = (0..12).map(|i| 2f64.powi(2 * i - 1)).collect(); // 0.5 … 2^21
    let ks: Vec<u32> = (0..14).map(|i| 1u32 << i).collect(); // 1 … 8192
    let row_labels: Vec<String> = ks.iter().map(|k| k.to_string()).collect();
    let col_labels: Vec<String> = alphas.iter().map(|a| format!("α={a}")).collect();
    let regions = grid_table("k \\ α", &row_labels, &col_labels, |ri, ci| {
        region_label(maxncg::region(MAP_N, alphas[ci], ks[ri])).to_string()
    });
    out.push_table("regions", regions);

    let mut bounds = Table::new(["alpha", "k", "region", "lower", "upper"]);
    for &alpha in &alphas {
        for &k in &ks {
            let b = maxncg::bounds(MAP_N, alpha, k);
            bounds.push_row([
                format!("{alpha}"),
                k.to_string(),
                region_label(maxncg::region(MAP_N, alpha, k)).to_string(),
                format!("{:.3e}", b.lower),
                format!("{:.3e}", b.upper),
            ]);
        }
    }
    out.push_table("bounds", bounds);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_covers_the_grid() {
        let out = run(&Profile::smoke());
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.tables[0].1.len(), 14); // one row per k
        assert_eq!(out.tables[1].1.len(), 12 * 14);
    }

    #[test]
    fn gray_region_appears_for_large_k() {
        let out = run(&Profile::smoke());
        let csv = out.tables[0].1.render(ncg_stats::TableStyle::Csv);
        assert!(csv.contains("NE≡LKE"));
    }
}
