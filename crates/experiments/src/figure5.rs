//! Figure 5: minimum and average view size at equilibrium, as a
//! function of `α`, one series per `k`.
//!
//! Paper setting: random trees with `n = 100`, 20 repetitions; the
//! view size of a player is the number of vertices in her radius-`k`
//! ball in the stable network. Expected shape: view sizes fall as `α`
//! grows (fewer edges are bought) and rise steeply with `k`; at `k = 7`
//! players already see almost the whole 100-node network.

use ncg_core::Objective;

use crate::engine::{self, MetricGrid, SweepContext};
use crate::output::grid_table;
use crate::sweep::SweepSpec;
use crate::{ExperimentOutput, Profile};

/// Runs the Figure 5 sweep under the given profile (local mode).
pub fn run(profile: &Profile) -> ExperimentOutput {
    run_ctx(profile, &SweepContext::local())
}

/// Runs the Figure 5 sweep under the given execution context
/// (local / shard / merge — see [`crate::engine`]).
pub fn run_ctx(profile: &Profile, ctx: &SweepContext) -> ExperimentOutput {
    let n = profile.headline_tree_n();
    let mut out = ExperimentOutput::new("figure5");
    let specs = vec![SweepSpec::tree(
        "main",
        n,
        profile.reps,
        profile.base_seed,
        profile.alphas.clone(),
        profile.ks.clone(),
        Objective::Max,
    )];
    let (rows, cols) = (profile.alphas.len(), profile.ks.len());
    let mut avg = MetricGrid::new(rows, cols);
    let mut min = MetricGrid::new(rows, cols);
    let report = engine::execute(ctx, "figure5", &specs, &mut |_, cell, rec| {
        avg.push(cell.ai, cell.ki, Some(rec.avg_view));
        min.push(cell.ai, cell.ki, Some(rec.min_view as f64));
    });
    if let Some(note) = report.shard_note("figure5") {
        out.notes = note;
        return out;
    }
    out.notes = format!(
        "Figure 5 — view sizes at equilibrium on random trees (n = {n}); profile: {} ({} reps)",
        profile.name, profile.reps
    );
    let row_labels: Vec<String> = profile.alphas.iter().map(|a| format!("{a}")).collect();
    let col_labels: Vec<String> = profile.ks.iter().map(|k| format!("k={k}")).collect();
    out.push_table(
        "avg_view_size",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| avg.display(ri, ci, 1)),
    );
    out.push_table(
        "min_view_size",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| min.display(ri, ci, 1)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{by_cell, sweep};
    use crate::workloads;

    #[test]
    fn view_sizes_grow_with_k_and_shrink_with_alpha() {
        // Small but meaningful instance: trees n = 24.
        let profile = Profile {
            reps: 3,
            alphas: vec![0.1, 5.0],
            ks: vec![2, 1000],
            tree_ns: vec![24],
            ..Profile::smoke()
        };
        let n = 24;
        let states = workloads::tree_states(n, profile.reps, profile.base_seed);
        let results = sweep(&states, &profile.alphas, &profile.ks, Objective::Max, None);
        let grouped = by_cell(&results, &profile.alphas, &profile.ks, profile.reps);
        let mean_view = |ai: usize, ki: usize| {
            let (_, cells) = grouped[ai * 2 + ki];
            cells.iter().map(|c| c.result.final_metrics.avg_view).sum::<f64>() / cells.len() as f64
        };
        // k = 1000 sees everything.
        assert!((mean_view(0, 1) - n as f64).abs() < 1e-9);
        assert!((mean_view(1, 1) - n as f64).abs() < 1e-9);
        // k = 2: cheap edges (α = 0.1) give denser equilibria, hence
        // larger views than expensive edges (α = 5).
        assert!(mean_view(0, 0) >= mean_view(1, 0), "cheap-α views should be at least as large");
    }

    #[test]
    fn output_has_both_panels() {
        let out = run(&Profile::smoke());
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.tables[0].0, "avg_view_size");
        assert_eq!(out.tables[1].0, "min_view_size");
    }
}
