//! The `(α, k, rep)` sweep engine: a deterministic cell work-list
//! with warm-started dynamics, process-level sharding, and streaming
//! per-cell results.
//!
//! The seed implementation materialised every [`RunResult`] of a grid
//! in memory and re-solved every cell from a cold cache. The engine
//! now walks a [`SweepSpec`]'s cells as a work-list:
//!
//! * cells are identified by a [`CellId`] with a canonical linear
//!   index (`α`-major, then `k`, then `rep`) — the order every
//!   journal, fold, and table is defined over;
//! * workers parallelise over *repetitions* so that one
//!   [`CacheArena`] (view cache + solver scratch) per rep is reused
//!   across all `(α, k)` cells sharing that initial state — the
//!   warm-start path of DESIGN.md §7; outcomes are bit-identical to
//!   cold runs;
//! * `--shards M --shard i` process-level sharding partitions cells
//!   by `rep % M` (see [`Shard`]), keeping warm-start groups intact
//!   and the partition deterministic;
//! * finished cells are *streamed* to a sink (the higher-level
//!   [`crate::engine`] journals them as JSONL and folds `O(grid)`
//!   aggregates) instead of being collected, and the progress counter
//!   is a lock-free `AtomicUsize`.
//!
//! [`sweep`] and [`by_cell`] remain as the collect-style conveniences
//! for tests, examples, and small library use — now implemented on
//! the same engine, so they warm-start too.

use std::sync::atomic::{AtomicUsize, Ordering};

use ncg_core::{EdgeCostModel, GameState, MoveRulePolicy, Objective, Scenario};
use ncg_dynamics::scale::{run_scale, ScaleArena, ScaleConfig, ScaleRunResult, ScaleState};
use ncg_dynamics::{run, run_with_cache, CacheArena, DynamicsConfig, RunResult};
use parking_lot::Mutex;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::workloads;

/// One cell of a sweep grid, with its canonical linear index.
///
/// The canonical order is `α`-major, then `k`, then `rep`:
/// `index = (ai · |ks| + ki) · reps + rep`. Every journal line,
/// fold call, and merged artifact is defined over this order, which
/// is what makes sharded + merged output byte-identical to a
/// single-process run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellId {
    /// Canonical linear index within the sweep.
    pub index: usize,
    /// Index into the `α` grid.
    pub ai: usize,
    /// Index into the `k` grid.
    pub ki: usize,
    /// Repetition (initial-state) index.
    pub rep: usize,
}

/// How a sweep's initial states are generated (lazily — merge-mode
/// folds never sample workloads at all).
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Uniform random trees with coin-toss ownership (Table I).
    Tree,
    /// Connected `G(n, p)` samples with coin-toss ownership (Table II).
    Er(f64),
    /// Flat `G(n, avg_deg/(n-1))` samples for the million-node scale
    /// tier, solved with the approximate simultaneous-move dynamics
    /// ([`ncg_dynamics::scale`]) instead of the exact responder.
    ScaleEr {
        /// Expected degree (`p = avg_deg / (n - 1)`).
        avg_deg: f64,
        /// Round cap of the scale dynamics (part of the cell contents,
        /// unlike the exact tier's effectively-never-hit default cap).
        max_rounds: usize,
    },
}

/// A declarative description of one sweep: the workload family, the
/// parameter grid, and the scenario (objective plus edge-cost and
/// move-rule axes of the model zoo). Everything the engine, the
/// journal, and the merge fold need — states are only sampled when
/// cells actually run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Stable label of this sweep within its experiment (journal key).
    pub label: String,
    /// Workload family.
    pub workload: Workload,
    /// Player count.
    pub n: usize,
    /// Repetitions (initial states).
    pub reps: usize,
    /// Base seed the per-rep instance seeds derive from.
    pub seed: u64,
    /// Edge-price grid.
    pub alphas: Vec<f64>,
    /// Knowledge-radius grid.
    pub ks: Vec<u32>,
    /// Game objective.
    pub objective: Objective,
    /// Edge-cost model (`Uniform` for every paper sweep).
    pub edge_cost: EdgeCostModel,
    /// Move rule (`AnySubset` for every paper sweep).
    pub move_rule: MoveRulePolicy,
}

impl SweepSpec {
    /// A random-tree sweep. The last argument is any scenario handle:
    /// a bare [`Objective`] selects the canonical (uniform, subset)
    /// game, a full [`Scenario`] selects a model-zoo variant.
    pub fn tree(
        label: impl Into<String>,
        n: usize,
        reps: usize,
        seed: u64,
        alphas: Vec<f64>,
        ks: Vec<u32>,
        scenario: impl Into<Scenario>,
    ) -> Self {
        let scenario = scenario.into();
        SweepSpec {
            label: label.into(),
            workload: Workload::Tree,
            n,
            reps,
            seed,
            alphas,
            ks,
            objective: scenario.objective,
            edge_cost: scenario.edge_cost,
            move_rule: scenario.move_rule,
        }
    }

    /// An Erdős–Rényi sweep; scenario handle as in [`SweepSpec::tree`].
    #[allow(clippy::too_many_arguments)] // mirrors `tree` plus the edge probability
    pub fn er(
        label: impl Into<String>,
        n: usize,
        p: f64,
        reps: usize,
        seed: u64,
        alphas: Vec<f64>,
        ks: Vec<u32>,
        scenario: impl Into<Scenario>,
    ) -> Self {
        let scenario = scenario.into();
        SweepSpec {
            label: label.into(),
            workload: Workload::Er(p),
            n,
            reps,
            seed,
            alphas,
            ks,
            objective: scenario.objective,
            edge_cost: scenario.edge_cost,
            move_rule: scenario.move_rule,
        }
    }

    /// A scale-tier Erdős–Rényi sweep: `G(n, avg_deg/(n-1))` inputs in
    /// flat [`ScaleState`] layout, solved with the approximate
    /// simultaneous-move dynamics under a `max_rounds` cap. Only the
    /// canonical (uniform-price, any-subset) games are supported at
    /// this tier, so the scenario handle is a bare [`Objective`].
    #[allow(clippy::too_many_arguments)] // mirrors `er` plus the round cap
    pub fn scale_er(
        label: impl Into<String>,
        n: usize,
        avg_deg: f64,
        max_rounds: usize,
        reps: usize,
        seed: u64,
        alphas: Vec<f64>,
        ks: Vec<u32>,
        objective: Objective,
    ) -> Self {
        SweepSpec {
            label: label.into(),
            workload: Workload::ScaleEr { avg_deg, max_rounds },
            n,
            reps,
            seed,
            alphas,
            ks,
            objective,
            edge_cost: EdgeCostModel::Uniform,
            move_rule: MoveRulePolicy::AnySubset,
        }
    }

    /// Whether this sweep runs on the scale tier (flat states, the
    /// approximate simultaneous dynamics, [`ScaleArena`] warm starts)
    /// instead of the exact `GameState` path.
    pub fn is_scale(&self) -> bool {
        matches!(self.workload, Workload::ScaleEr { .. })
    }

    /// The sweep's scenario (objective × edge cost × move rule).
    pub fn scenario(&self) -> Scenario {
        Scenario { objective: self.objective, edge_cost: self.edge_cost, move_rule: self.move_rule }
    }

    /// The workload class tag recorded in run records
    /// (`"tree"` / `"er"` / `"scale_er"`).
    pub fn class(&self) -> &'static str {
        match self.workload {
            Workload::Tree => "tree",
            Workload::Er(_) => "er",
            Workload::ScaleEr { .. } => "scale_er",
        }
    }

    /// Total number of cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.alphas.len() * self.ks.len() * self.reps
    }

    /// Decomposes a canonical linear index into a [`CellId`].
    ///
    /// # Panics
    /// Panics if `index ≥ cell_count()`.
    pub fn cell(&self, index: usize) -> CellId {
        assert!(index < self.cell_count(), "cell index {index} out of range");
        let rep = index % self.reps;
        let rest = index / self.reps;
        CellId { index, ai: rest / self.ks.len(), ki: rest % self.ks.len(), rep }
    }

    /// The canonical linear index of `(ai, ki, rep)`.
    pub fn index_of(&self, ai: usize, ki: usize, rep: usize) -> usize {
        cell_index(ai, ki, rep, self.ks.len(), self.reps)
    }

    /// Recomputes the canonical index of a journaled record under
    /// *this* spec's grid from the record's own coordinates.
    ///
    /// This is what lets journals written under a different `--reps`
    /// of the same grid be resumed and merged: a stored `cell` index
    /// encodes the writer's rep count, but `(α, k, rep)` plus this
    /// spec pins the cell down unambiguously. Returns `None` when the
    /// record doesn't belong to this grid at all — wrong class or
    /// `n`, an `α`/`k` not on the grid, or a rep at or beyond this
    /// spec's `reps` (a valid cell of a *larger* split, dropped here).
    pub fn index_of_record(&self, record: &RunRecord) -> Option<usize> {
        if record.class != self.class() || record.n != self.n || record.rep >= self.reps {
            return None;
        }
        let ai = self.alphas.iter().position(|&a| a == record.alpha)?;
        let ki = self.ks.iter().position(|&k| k == record.k)?;
        Some(self.index_of(ai, ki, record.rep))
    }

    /// Samples the sweep's initial states (one per rep, seeded
    /// per-instance — reproducible in isolation).
    ///
    /// # Panics
    /// Panics for scale sweeps, whose inputs must never round-trip
    /// through a `GameState` (`O(n)` allocations); use
    /// [`SweepSpec::scale_states`] there — or [`run_spec_cells`],
    /// which dispatches for you.
    pub fn states(&self) -> Vec<GameState> {
        match self.workload {
            Workload::Tree => workloads::tree_states(self.n, self.reps, self.seed),
            Workload::Er(p) => workloads::er_states(self.n, p, self.reps, self.seed),
            Workload::ScaleEr { .. } => {
                panic!("scale sweeps sample flat ScaleStates; call scale_states() instead")
            }
        }
    }

    /// Samples a scale sweep's initial states in flat layout.
    ///
    /// # Panics
    /// Panics for exact-tier workloads; use [`SweepSpec::states`].
    pub fn scale_states(&self) -> Vec<ScaleState> {
        match self.workload {
            Workload::ScaleEr { avg_deg, .. } => {
                workloads::scale_er_states(self.n, avg_deg, self.reps, self.seed)
            }
            _ => panic!("exact-tier sweeps sample GameStates; call states() instead"),
        }
    }

    /// A fingerprint of everything that determines this sweep's cell
    /// contents — workload family (and `p`), `n`, seed, and the
    /// `α`/`k` grids. Stamped on every journal line and checked on
    /// resume and merge, so a journal written under a different
    /// `--seed` or grid can never be silently reused (the record's own
    /// `(α, k, rep, n, class)` cannot carry the seed).
    ///
    /// `reps` is deliberately *not* mixed in: per-rep instance seeds
    /// derive from `(seed, class, n, rep)` alone, so a cell's contents
    /// don't depend on how many reps the run around it asked for.
    /// Journals written under different `--reps` of the same grid are
    /// therefore mergeable — the union's completeness is checked
    /// against the merge target's rep count instead.
    pub fn fingerprint(&self) -> u64 {
        fn mix(h: u64, x: u64) -> u64 {
            // SplitMix64 over a running state: order-sensitive, cheap.
            let mut z = h ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut h = match self.workload {
            Workload::Tree => mix(1, 0),
            Workload::Er(p) => mix(2, p.to_bits()),
            // The round cap is mixed in because capped scale cells
            // genuinely depend on it, unlike the exact tier's
            // effectively-unreachable default cap.
            Workload::ScaleEr { avg_deg, max_rounds } => {
                mix(mix(3, avg_deg.to_bits()), max_rounds as u64)
            }
        };
        h = mix(h, self.n as u64);
        h = mix(h, self.seed);
        h = mix(h, self.objective as u64);
        for &alpha in &self.alphas {
            h = mix(h, alpha.to_bits());
        }
        for &k in &self.ks {
            h = mix(h, u64::from(k) | 1 << 40);
        }
        // Model-zoo axes are mixed only when non-default, so every
        // journal written before the scenario layer existed (canonical
        // uniform/subset games) keeps its fingerprint and stays
        // resumable.
        if let EdgeCostModel::PerTarget { seed } = self.edge_cost {
            h = mix(h, 0xEDC0);
            h = mix(h, seed);
        }
        if self.move_rule == MoveRulePolicy::Swap {
            h = mix(h, 0x54A9);
        }
        h
    }
}

/// The canonical linear cell index — `α`-major, then `k`, then `rep`.
/// The single definition every journal, fold, resume-skip, and merge
/// shares (via [`SweepSpec::index_of`] and [`run_cells`]).
#[inline]
pub fn cell_index(ai: usize, ki: usize, rep: usize, ks_len: usize, reps: usize) -> usize {
    (ai * ks_len + ki) * reps + rep
}

/// A process-level shard selection: this process owns the cells whose
/// repetition satisfies `rep % count == index`. Partitioning by rep
/// (rather than raw cell index) keeps every warm-start group — all
/// `(α, k)` cells of one initial state — inside a single shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Total number of shards (`≥ 1`).
    pub count: usize,
    /// This process's shard index (`< count`).
    pub index: usize,
}

impl Shard {
    /// The trivial partition: one shard owning everything.
    pub fn all() -> Self {
        Shard { count: 1, index: 0 }
    }

    /// Whether this shard owns repetition `rep`.
    #[inline]
    pub fn owns_rep(&self, rep: usize) -> bool {
        rep % self.count == self.index
    }
}

/// How one cell of a sweep ended: the normal result, or the panic
/// payload of a solve that blew up (caught by [`solve_cell_guarded`],
/// journaled as a structured `CellFailed` entry downstream).
#[derive(Debug)]
pub enum CellOutcome {
    /// The dynamics ran to an outcome (boxed: a `RunResult` is large
    /// next to the failure string, and clippy rightly objects).
    Done(Box<RunResult>),
    /// The solve panicked; the payload rendered as a string.
    Failed(String),
}

/// Solves one cell with panic isolation: a panic anywhere inside the
/// dynamics (or injected via `inject_panic`, the `panic_cell` fault)
/// is caught, the cell's [`CacheArena`] is rebuilt — its dirty
/// tracking and solver scratch may have been left mid-update, so the
/// warm-start soundness argument no longer covers them — and the
/// panic payload comes back as `Err(message)`. The *next* cell on the
/// same arena is then observationally a cold run, which the dynamics
/// crate property-tests to be bit-identical to a warm one.
pub fn solve_cell_guarded(
    state: &GameState,
    scenario: Scenario,
    alpha: f64,
    k: u32,
    warm_start: bool,
    arena: &mut CacheArena,
    inject_panic: bool,
) -> Result<RunResult, String> {
    let config = DynamicsConfig::new(scenario.spec(alpha, k));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected fault: panic_cell");
        }
        if warm_start {
            run_with_cache(state.clone(), &config, arena)
        } else {
            run(state.clone(), &config)
        }
    }));
    outcome.map_err(|payload| {
        arena.rebuild();
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Runs this shard's cells of one grid, warm-starting per repetition,
/// streaming each finished cell to `sink`. Cells for which
/// `skip(index)` returns `true` (already journaled, on resume) are
/// not run and not reported. `sink` may be called from worker
/// threads in any completion order; the canonical order is
/// re-established downstream (see `crate::engine`). `progress`, if
/// given, is called after each finished cell with `(done, total)`
/// where `total` counts this shard's non-skipped cells.
///
/// Each solve runs under [`solve_cell_guarded`]: a panicking cell
/// reaches the sink as [`CellOutcome::Failed`] and the sweep carries
/// on with a rebuilt arena. `fault`, if given, can additionally force
/// a specific canonical cell to panic (`panic_cell:N`).
#[allow(clippy::too_many_arguments)] // the engine's one low-level entry point
pub fn run_cells(
    states: &[GameState],
    alphas: &[f64],
    ks: &[u32],
    scenario: impl Into<Scenario>,
    warm_start: bool,
    shard: Shard,
    skip: &(dyn Fn(usize) -> bool + Sync),
    sink: &(dyn Fn(CellId, CellOutcome) + Sync),
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
    fault: Option<&crate::fault::FaultPlan>,
) {
    let scenario = scenario.into();
    assert!(shard.count >= 1 && shard.index < shard.count, "invalid shard {shard:?}");
    let reps = states.len();
    let index_of = |ai: usize, ki: usize, rep: usize| cell_index(ai, ki, rep, ks.len(), reps);
    let my_reps: Vec<usize> = (0..reps).filter(|&r| shard.owns_rep(r)).collect();
    let total: usize = my_reps
        .iter()
        .map(|&rep| {
            (0..alphas.len())
                .flat_map(|ai| (0..ks.len()).map(move |ki| (ai, ki)))
                .filter(|&(ai, ki)| !skip(index_of(ai, ki, rep)))
                .count()
        })
        .sum();
    let done = AtomicUsize::new(0);
    // One worker item per repetition: the rep's CacheArena persists
    // across its whole (α, k) column, which is the warm-start win.
    let _: Vec<()> = my_reps
        .into_par_iter()
        .map(|rep| {
            let mut arena = CacheArena::new();
            for (ai, &alpha) in alphas.iter().enumerate() {
                for (ki, &k) in ks.iter().enumerate() {
                    let index = index_of(ai, ki, rep);
                    if skip(index) {
                        continue;
                    }
                    let inject = fault.is_some_and(|f| f.panics_at_cell(index));
                    let outcome = match solve_cell_guarded(
                        &states[rep],
                        scenario,
                        alpha,
                        k,
                        warm_start,
                        &mut arena,
                        inject,
                    ) {
                        Ok(result) => CellOutcome::Done(Box::new(result)),
                        Err(message) => CellOutcome::Failed(message),
                    };
                    sink(CellId { index, ai, ki, rep }, outcome);
                    if let Some(cb) = progress {
                        cb(done.fetch_add(1, Ordering::Relaxed) + 1, total);
                    }
                }
            }
        })
        .collect();
}

/// Solves one *scale-tier* cell with panic isolation, mirroring
/// [`solve_cell_guarded`]: the rep's initial [`ScaleState`] is cloned
/// (a handful of flat memcpys), the approximate simultaneous dynamics
/// run under the spec's round cap, and a panic anywhere inside comes
/// back as `Err(message)` with the [`ScaleArena`] rebuilt (its dirty
/// set and scratch pool may have been left mid-round). Returns the
/// run result together with the final state so callers can extract
/// the record's network statistics without keeping the state alive.
pub fn solve_scale_cell_guarded(
    initial: &ScaleState,
    spec: &SweepSpec,
    alpha: f64,
    k: u32,
    arena: &mut ScaleArena,
    inject_panic: bool,
) -> Result<(ScaleRunResult, ScaleState), String> {
    let Workload::ScaleEr { max_rounds, .. } = spec.workload else {
        panic!("solve_scale_cell_guarded requires a scale workload")
    };
    let mut config = ScaleConfig::new(spec.scenario().spec(alpha, k));
    config.max_rounds = max_rounds;
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected fault: panic_cell");
        }
        let mut state = initial.clone();
        let result = run_scale(&mut state, &config, arena);
        (result, state)
    }));
    outcome.map_err(|payload| {
        *arena = ScaleArena::new();
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Runs this shard's cells of one grid, dispatching on the spec's
/// tier: exact workloads go through [`run_cells`] (warm-started
/// [`CacheArena`] per repetition), scale workloads through the
/// approximate simultaneous dynamics (one [`ScaleArena`] per
/// repetition — no `PlayerView` slots, no `O(n)` view cache). The
/// sink receives finished [`RunRecord`]s (or the panic payload of a
/// failed solve) instead of raw results, so callers never touch the
/// tier-specific result types. This is the engine's single entry
/// point; `sink` ordering caveats are as in [`run_cells`].
#[allow(clippy::too_many_arguments)] // mirrors run_cells
pub fn run_spec_cells(
    spec: &SweepSpec,
    warm_start: bool,
    shard: Shard,
    skip: &(dyn Fn(usize) -> bool + Sync),
    sink: &(dyn Fn(CellId, Result<RunRecord, String>) + Sync),
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
    fault: Option<&crate::fault::FaultPlan>,
) {
    if spec.is_scale() {
        run_scale_cells(spec, warm_start, shard, skip, sink, progress, fault);
        return;
    }
    let states = spec.states();
    run_cells(
        &states,
        &spec.alphas,
        &spec.ks,
        spec.scenario(),
        warm_start,
        shard,
        skip,
        &|cell, outcome| {
            let entry = match outcome {
                CellOutcome::Done(result) => Ok(RunRecord::new(
                    spec.class(),
                    spec.n,
                    spec.alphas[cell.ai],
                    spec.ks[cell.ki],
                    cell.rep,
                    &result,
                )),
                CellOutcome::Failed(message) => Err(message),
            };
            sink(cell, entry);
        },
        progress,
        fault,
    );
}

/// The scale-tier twin of [`run_cells`]: same canonical cell order,
/// same rep-major parallel structure (one warm [`ScaleArena`] per
/// repetition spanning its `(α, k)` column), same shard/skip/fault
/// contract. `warm_start = false` rebuilds the arena per cell — an
/// A/B knob like the exact tier's `--cold`; outcomes are
/// bit-identical either way (the arena holds only scratch buffers).
#[allow(clippy::too_many_arguments)] // mirrors run_cells
fn run_scale_cells(
    spec: &SweepSpec,
    warm_start: bool,
    shard: Shard,
    skip: &(dyn Fn(usize) -> bool + Sync),
    sink: &(dyn Fn(CellId, Result<RunRecord, String>) + Sync),
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
    fault: Option<&crate::fault::FaultPlan>,
) {
    assert!(shard.count >= 1 && shard.index < shard.count, "invalid shard {shard:?}");
    let states = spec.scale_states();
    let reps = states.len();
    let index_of = |ai: usize, ki: usize, rep: usize| cell_index(ai, ki, rep, spec.ks.len(), reps);
    let my_reps: Vec<usize> = (0..reps).filter(|&r| shard.owns_rep(r)).collect();
    let total: usize = my_reps
        .iter()
        .map(|&rep| {
            (0..spec.alphas.len())
                .flat_map(|ai| (0..spec.ks.len()).map(move |ki| (ai, ki)))
                .filter(|&(ai, ki)| !skip(index_of(ai, ki, rep)))
                .count()
        })
        .sum();
    let done = AtomicUsize::new(0);
    let _: Vec<()> = my_reps
        .into_par_iter()
        .map(|rep| {
            let mut arena = ScaleArena::new();
            for (ai, &alpha) in spec.alphas.iter().enumerate() {
                for (ki, &k) in spec.ks.iter().enumerate() {
                    let index = index_of(ai, ki, rep);
                    if skip(index) {
                        continue;
                    }
                    if !warm_start {
                        arena = ScaleArena::new();
                    }
                    let inject = fault.is_some_and(|f| f.panics_at_cell(index));
                    let entry =
                        solve_scale_cell_guarded(&states[rep], spec, alpha, k, &mut arena, inject)
                            .map(|(result, final_state)| {
                                RunRecord::from_scale(
                                    spec.class(),
                                    alpha,
                                    k,
                                    rep,
                                    &result,
                                    &final_state,
                                )
                            });
                    sink(CellId { index, ai, ki, rep }, entry);
                    if let Some(cb) = progress {
                        cb(done.fetch_add(1, Ordering::Relaxed) + 1, total);
                    }
                }
            }
        })
        .collect();
}

/// One completed dynamics run with its cell coordinates.
#[derive(Debug)]
pub struct CellResult {
    /// Edge price of the cell.
    pub alpha: f64,
    /// Knowledge radius of the cell.
    pub k: u32,
    /// Repetition index (selects the starting network).
    pub rep: usize,
    /// The dynamics result.
    pub result: RunResult,
}

/// A compact serialisable record of one run — the unit the sweep
/// engine streams to its JSONL journal and the fold API aggregates.
/// Holds only scalars, so a full 36 000-cell grid of records is a few
/// megabytes where the same grid of [`RunResult`]s was gigabytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Workload class tag (`"tree"` / `"er"`).
    pub class: String,
    /// Player count.
    pub n: usize,
    /// Edge price.
    pub alpha: f64,
    /// Knowledge radius.
    pub k: u32,
    /// Repetition index.
    pub rep: usize,
    /// `true` iff the dynamics converged.
    pub converged: bool,
    /// `true` iff the run hit the round cap without converging or
    /// cycling (in which case `rounds` is the cap, not a sentinel).
    pub capped: bool,
    /// Rounds executed.
    pub rounds: usize,
    /// Total accepted moves.
    pub moves: usize,
    /// Final diameter, if connected.
    pub diameter: Option<u32>,
    /// Final quality `SC/OPT`.
    pub quality: Option<f64>,
    /// Final maximum degree.
    pub max_degree: usize,
    /// Final maximum bought edges.
    pub max_bought: usize,
    /// Final minimum view size.
    pub min_view: usize,
    /// Final average view size.
    pub avg_view: f64,
    /// Final unfairness ratio.
    pub unfairness: Option<f64>,
}

impl RunRecord {
    /// Builds a record straight from a finished run — the streaming
    /// path: the [`RunResult`] (and its `GameState`) is dropped as
    /// soon as this returns.
    pub fn new(class: &str, n: usize, alpha: f64, k: u32, rep: usize, result: &RunResult) -> Self {
        let m = &result.final_metrics;
        RunRecord {
            class: class.to_string(),
            n,
            alpha,
            k,
            rep,
            converged: result.outcome.converged(),
            capped: matches!(result.outcome, ncg_dynamics::Outcome::MaxRoundsExceeded { .. }),
            rounds: result.outcome.rounds(),
            moves: result.total_moves,
            diameter: m.diameter,
            quality: m.quality,
            max_degree: m.max_degree,
            max_bought: m.max_bought,
            min_view: m.min_view,
            avg_view: m.avg_view,
            unfairness: m.unfairness,
        }
    }

    /// Builds a record from a finished scale-tier run. The schema is
    /// shared with the exact tier; fields the scale tier does not
    /// measure exhaustively are `None` (`diameter`, `quality`,
    /// `unfairness` would each cost `O(n·m)`), and the view statistics
    /// come from the deterministic 64-player [`ViewSample`]
    /// (`min_view` is the sampled minimum, not the global one).
    ///
    /// [`ViewSample`]: ncg_dynamics::scale::ViewSample
    pub fn from_scale(
        class: &str,
        alpha: f64,
        k: u32,
        rep: usize,
        result: &ScaleRunResult,
        final_state: &ScaleState,
    ) -> Self {
        let n = final_state.n();
        let g = final_state.graph();
        let max_degree =
            (0..n as ncg_graph::NodeId).map(|u| g.neighbors(u).len()).max().unwrap_or(0);
        RunRecord {
            class: class.to_string(),
            n,
            alpha,
            k,
            rep,
            converged: result.outcome.converged(),
            capped: matches!(result.outcome, ncg_dynamics::Outcome::MaxRoundsExceeded { .. }),
            rounds: result.outcome.rounds(),
            moves: result.total_moves,
            diameter: None,
            quality: None,
            max_degree,
            max_bought: final_state.max_bought(),
            min_view: result.view_sample.min,
            avg_view: result.view_sample.avg,
            unfairness: None,
        }
    }

    /// Builds a record from a collected cell result. Capped runs used
    /// to leak the `usize::MAX` sentinel into the JSON `rounds` field;
    /// they now record the rounds actually executed plus `capped: true`.
    pub fn from_cell(class: &str, n: usize, cell: &CellResult) -> Self {
        Self::new(class, n, cell.alpha, cell.k, cell.rep, &cell.result)
    }

    /// Whether the run ended in a detected best-response cycle.
    pub fn cycled(&self) -> bool {
        !self.converged && !self.capped
    }
}

/// Runs dynamics for every `(α, k)` in the grid and every starting
/// state, in parallel, returning results sorted by
/// `(α-index, k-index, rep)` — the collect-style convenience over the
/// streaming engine (tests, examples, small grids). Warm-starts per
/// repetition like the streaming path; the progress counter is a
/// lock-free atomic, so the callback no longer serialises workers.
/// The scenario handle is a bare [`Objective`] for the canonical
/// games or a full [`Scenario`] for model-zoo variants.
pub fn sweep(
    states: &[GameState],
    alphas: &[f64],
    ks: &[u32],
    scenario: impl Into<Scenario>,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> Vec<CellResult> {
    let collected: Mutex<Vec<(usize, CellResult)>> =
        Mutex::new(Vec::with_capacity(alphas.len() * ks.len() * states.len()));
    run_cells(
        states,
        alphas,
        ks,
        scenario,
        true,
        Shard::all(),
        &|_| false,
        &|cell, outcome| {
            let result = match outcome {
                CellOutcome::Done(result) => *result,
                CellOutcome::Failed(message) => {
                    panic!("cell {} failed: {message}", cell.index)
                }
            };
            let item = CellResult { alpha: alphas[cell.ai], k: ks[cell.ki], rep: cell.rep, result };
            collected.lock().push((cell.index, item));
        },
        progress,
        None,
    );
    let mut results = collected.into_inner();
    results.sort_by_key(|(index, _)| *index);
    results.into_iter().map(|(_, c)| c).collect()
}

/// Groups cell results by `(α, k)` preserving grid order, yielding
/// `((α, k), &[CellResult])` slices of length `reps`. Empty grids
/// (no `α`s, no `k`s, or zero reps) yield the matching number of
/// empty groups.
pub fn by_cell<'a>(
    results: &'a [CellResult],
    alphas: &[f64],
    ks: &[u32],
    reps: usize,
) -> Vec<((f64, u32), &'a [CellResult])> {
    let mut out = Vec::with_capacity(alphas.len() * ks.len());
    let mut offset = 0;
    for &alpha in alphas {
        for &k in ks {
            let slice = &results[offset..offset + reps];
            debug_assert!(slice.iter().all(|c| c.alpha == alpha && c.k == k));
            out.push(((alpha, k), slice));
            offset += reps;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn sweep_covers_the_grid_in_order() {
        let states = workloads::tree_states(14, 2, 1);
        let alphas = [0.5, 2.0];
        let ks = [2u32, 1000];
        let results = sweep(&states, &alphas, &ks, Objective::Max, None);
        assert_eq!(results.len(), 8);
        // Order: α-major, then k, then rep.
        assert_eq!((results[0].alpha, results[0].k, results[0].rep), (0.5, 2, 0));
        assert_eq!((results[1].alpha, results[1].k, results[1].rep), (0.5, 2, 1));
        assert_eq!((results[2].alpha, results[2].k, results[2].rep), (0.5, 1000, 0));
        assert_eq!((results[7].alpha, results[7].k, results[7].rep), (2.0, 1000, 1));
        for c in &results {
            assert!(c.result.outcome.converged() || c.result.total_moves > 0);
        }
    }

    #[test]
    fn by_cell_groups_correctly() {
        let states = workloads::tree_states(12, 3, 2);
        let alphas = [1.0];
        let ks = [2u32, 3];
        let results = sweep(&states, &alphas, &ks, Objective::Max, None);
        let grouped = by_cell(&results, &alphas, &ks, 3);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0, (1.0, 2));
        assert_eq!(grouped[0].1.len(), 3);
        assert_eq!(grouped[1].0, (1.0, 3));
    }

    #[test]
    fn by_cell_handles_empty_grids() {
        // No αs / no ks / zero reps: no groups, or empty groups.
        assert!(by_cell(&[], &[], &[2], 3).is_empty());
        assert!(by_cell(&[], &[1.0], &[], 3).is_empty());
        let grouped = by_cell(&[], &[1.0, 2.0], &[2, 3], 0);
        assert_eq!(grouped.len(), 4);
        assert!(grouped.iter().all(|(_, cells)| cells.is_empty()));
        assert_eq!(grouped[3].0, (2.0, 3));
    }

    #[test]
    fn progress_callback_counts_to_total() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let states = workloads::tree_states(10, 2, 3);
        let max_seen = AtomicUsize::new(0);
        let cb = |done: usize, total: usize| {
            assert!(done <= total);
            max_seen.fetch_max(done, Ordering::Relaxed);
        };
        sweep(&states, &[1.0], &[2], Objective::Max, Some(&cb));
        assert_eq!(max_seen.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn cell_index_round_trips() {
        let spec =
            SweepSpec::tree("t", 10, 3, 7, vec![0.5, 1.0, 2.0, 4.0], vec![2, 3], Objective::Max);
        assert_eq!(spec.cell_count(), 24);
        for index in 0..spec.cell_count() {
            let cell = spec.cell(index);
            assert_eq!(cell.index, index);
            assert_eq!(spec.index_of(cell.ai, cell.ki, cell.rep), index);
        }
        // α-major, then k, then rep.
        assert_eq!(spec.cell(0), CellId { index: 0, ai: 0, ki: 0, rep: 0 });
        assert_eq!(spec.cell(3), CellId { index: 3, ai: 0, ki: 1, rep: 0 });
        assert_eq!(spec.cell(6), CellId { index: 6, ai: 1, ki: 0, rep: 0 });
    }

    #[test]
    fn shard_partition_is_by_rep_and_complete() {
        let shards: Vec<Shard> = (0..3).map(|index| Shard { count: 3, index }).collect();
        for rep in 0..10 {
            let owners: Vec<usize> =
                shards.iter().filter(|s| s.owns_rep(rep)).map(|s| s.index).collect();
            assert_eq!(owners, vec![rep % 3], "rep {rep} must have exactly one owner");
        }
    }

    #[test]
    fn sharded_run_cells_cover_exactly_the_grid() {
        let states = workloads::tree_states(10, 3, 5);
        let alphas = [0.5, 2.0];
        let ks = [2u32];
        let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        for index in 0..2 {
            run_cells(
                &states,
                &alphas,
                &ks,
                Objective::Max,
                true,
                Shard { count: 2, index },
                &|_| false,
                &|cell, _| seen.lock().push(cell.index),
                None,
                None,
            );
        }
        let mut seen = seen.into_inner();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>(), "shards must partition the grid exactly");
    }

    #[test]
    fn skip_suppresses_cells_and_progress_total() {
        let states = workloads::tree_states(10, 2, 9);
        let ran: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let totals: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        run_cells(
            &states,
            &[1.0],
            &[2, 3],
            Objective::Max,
            true,
            Shard::all(),
            &|index| index % 2 == 0,
            &|cell, _| ran.lock().push(cell.index),
            Some(&|_, total| totals.lock().push(total)),
            None,
        );
        let mut ran = ran.into_inner();
        ran.sort_unstable();
        assert_eq!(ran, vec![1, 3]);
        assert!(totals.into_inner().iter().all(|&t| t == 2));
    }

    #[test]
    fn run_record_extracts_fields() {
        let states = workloads::tree_states(12, 1, 4);
        let results = sweep(&states, &[2.0], &[3], Objective::Max, None);
        let rec = RunRecord::from_cell("tree", 12, &results[0]);
        assert_eq!(rec.class, "tree");
        assert_eq!(rec.n, 12);
        assert_eq!(rec.alpha, 2.0);
        assert_eq!(rec.k, 3);
        assert!(rec.converged);
        assert!(!rec.capped);
        assert!(!rec.cycled());
        assert!(rec.rounds >= 1);
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"class\":\"tree\""));
        assert!(json.contains("\"capped\":false"));
        let back: RunRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec, "records must round-trip through the journal encoding");
    }

    #[test]
    fn capped_runs_record_executed_rounds_not_a_sentinel() {
        // A toggling two-player gadget that can never converge, with a
        // cap of 1 round: the record must say rounds = 1, capped.
        let state = GameState::from_strategies(3, vec![vec![1], vec![2], vec![0]]);
        let spec = ncg_core::GameSpec::max(1.0, 2);
        let mut config = DynamicsConfig::new(spec);
        config.max_rounds = 0;
        let result = run(state, &config);
        let cell = CellResult { alpha: spec.alpha, k: spec.k, rep: 0, result };
        let rec = RunRecord::from_cell("tree", 3, &cell);
        assert!(rec.capped);
        assert!(!rec.converged);
        assert_eq!(rec.rounds, 0, "rounds must be the executed count, not usize::MAX");
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"capped\":true"));
        assert!(!json.contains(&usize::MAX.to_string()));
    }

    #[test]
    fn fingerprint_ignores_reps_but_nothing_else() {
        let base =
            SweepSpec::tree("t", 10, 3, 7, vec![0.5, 1.0, 2.0, 4.0], vec![2, 3], Objective::Max);
        let mut more_reps = base.clone();
        more_reps.reps = 12;
        assert_eq!(
            base.fingerprint(),
            more_reps.fingerprint(),
            "reps splits of one grid must share a fingerprint (hetero-reps merge)"
        );
        let mut other_seed = base.clone();
        other_seed.seed = 8;
        assert_ne!(base.fingerprint(), other_seed.fingerprint());
        let mut other_grid = base.clone();
        other_grid.ks.push(4);
        assert_ne!(base.fingerprint(), other_grid.fingerprint());
    }

    #[test]
    fn index_of_record_reindexes_across_reps_splits() {
        let writer =
            SweepSpec::tree("t", 10, 2, 7, vec![0.5, 1.0, 2.0, 4.0], vec![2, 3], Objective::Max);
        let reader = SweepSpec { reps: 5, ..writer.clone() };
        let record = |alpha: f64, k: u32, rep: usize| RunRecord {
            class: "tree".into(),
            n: 10,
            alpha,
            k,
            rep,
            converged: true,
            capped: false,
            rounds: 1,
            moves: 1,
            diameter: Some(2),
            quality: Some(1.0),
            max_degree: 2,
            max_bought: 1,
            min_view: 3,
            avg_view: 3.0,
            unfairness: Some(1.0),
        };
        // Every writer cell lands at the reader's index for the same
        // (α, k, rep), which differs from the writer's stored index.
        for index in 0..writer.cell_count() {
            let cell = writer.cell(index);
            let rec = record(writer.alphas[cell.ai], writer.ks[cell.ki], cell.rep);
            assert_eq!(
                writer.index_of_record(&rec),
                Some(index),
                "round-trip under the writer's own grid"
            );
            assert_eq!(
                reader.index_of_record(&rec),
                Some(reader.index_of(cell.ai, cell.ki, cell.rep)),
                "reindex under a larger reps split"
            );
        }
        // Records outside the grid are rejected, not mis-filed.
        assert_eq!(reader.index_of_record(&record(0.75, 2, 0)), None, "off-grid α");
        assert_eq!(reader.index_of_record(&record(0.5, 9, 0)), None, "off-grid k");
        assert_eq!(reader.index_of_record(&record(0.5, 2, 5)), None, "rep beyond reps");
        let mut er = record(0.5, 2, 0);
        er.class = "er".into();
        assert_eq!(reader.index_of_record(&er), None, "wrong workload class");
        let mut other_n = record(0.5, 2, 0);
        other_n.n = 11;
        assert_eq!(reader.index_of_record(&other_n), None, "wrong n");
    }

    /// A scale spec small enough for unit tests; two reps so the
    /// shard partition is non-trivial.
    fn tiny_scale_spec() -> SweepSpec {
        SweepSpec::scale_er("s", 120, 4.0, 6, 2, 9, vec![0.8, 4.0], vec![2], Objective::Max)
    }

    #[test]
    fn scale_spec_classifies_and_fingerprints() {
        let spec = tiny_scale_spec();
        assert!(spec.is_scale());
        assert_eq!(spec.class(), "scale_er");
        let mut other_deg = spec.clone();
        other_deg.workload = Workload::ScaleEr { avg_deg: 5.0, max_rounds: 6 };
        assert_ne!(spec.fingerprint(), other_deg.fingerprint(), "avg_deg is load-bearing");
        let mut other_cap = spec.clone();
        other_cap.workload = Workload::ScaleEr { avg_deg: 4.0, max_rounds: 7 };
        assert_ne!(spec.fingerprint(), other_cap.fingerprint(), "round cap is load-bearing");
    }

    #[test]
    #[should_panic(expected = "scale sweeps sample flat ScaleStates")]
    fn scale_spec_refuses_game_states() {
        let _ = tiny_scale_spec().states();
    }

    #[test]
    fn run_spec_cells_covers_scale_grids_and_records_round_trip() {
        let spec = tiny_scale_spec();
        let got: Mutex<Vec<(usize, RunRecord)>> = Mutex::new(Vec::new());
        run_spec_cells(
            &spec,
            true,
            Shard::all(),
            &|_| false,
            &|cell, entry| got.lock().push((cell.index, entry.expect("no cell may fail"))),
            None,
            None,
        );
        let mut got = got.into_inner();
        got.sort_by_key(|(i, _)| *i);
        assert_eq!(got.len(), spec.cell_count());
        for (index, rec) in &got {
            assert_eq!(rec.class, "scale_er");
            assert_eq!(rec.n, 120);
            assert!(rec.rounds <= 6);
            assert!(rec.diameter.is_none() && rec.quality.is_none() && rec.unfairness.is_none());
            assert!(rec.avg_view >= 1.0, "sampled balls always contain their center");
            // The journal keying used by resume and merge must accept
            // scale records like any other class.
            assert_eq!(spec.index_of_record(rec), Some(*index));
            let json = serde_json::to_string(rec).unwrap();
            let back: RunRecord = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, rec);
        }
        // The dynamics do something on a random flat network: at the
        // cheap price at least, some player buys or drops an edge.
        assert!(got.iter().any(|(_, r)| r.moves > 0), "no cell moved at all");
    }

    #[test]
    fn scale_cells_are_identical_warm_cold_and_across_shards() {
        let spec = tiny_scale_spec();
        let collect = |warm: bool, shards: usize| {
            let got: Mutex<Vec<(usize, RunRecord)>> = Mutex::new(Vec::new());
            for index in 0..shards {
                run_spec_cells(
                    &spec,
                    warm,
                    Shard { count: shards, index },
                    &|_| false,
                    &|cell, entry| got.lock().push((cell.index, entry.expect("no failures"))),
                    None,
                    None,
                );
            }
            let mut got = got.into_inner();
            got.sort_by_key(|(i, _)| *i);
            got
        };
        let reference = collect(true, 1);
        assert_eq!(reference, collect(false, 1), "warm arenas must not change outcomes");
        assert_eq!(reference, collect(true, 2), "shard partition must not change outcomes");
    }

    #[test]
    fn panicking_scale_cell_fails_alone() {
        use crate::fault::FaultPlan;
        let spec = tiny_scale_spec();
        let fault = FaultPlan::parse("panic_cell:1").unwrap();
        let got: Mutex<Vec<(usize, Result<RunRecord, String>)>> = Mutex::new(Vec::new());
        run_spec_cells(
            &spec,
            true,
            Shard::all(),
            &|_| false,
            &|cell, entry| got.lock().push((cell.index, entry)),
            None,
            Some(&fault),
        );
        let mut got = got.into_inner();
        got.sort_by_key(|(i, _)| *i);
        assert_eq!(got.len(), spec.cell_count());
        for (index, entry) in got {
            if index == 1 {
                assert!(entry.unwrap_err().contains("injected fault: panic_cell"));
            } else {
                assert!(entry.is_ok(), "cell {index} must survive a sibling's panic");
            }
        }
    }

    #[test]
    fn panicking_cell_fails_alone_and_the_rest_match_a_clean_run() {
        use crate::fault::FaultPlan;
        let states = workloads::tree_states(14, 2, 11);
        let alphas = [0.5, 2.0];
        let ks = [2u32, 1000];
        let collect = |fault: Option<&FaultPlan>| {
            let got: Mutex<Vec<(usize, Result<RunRecord, String>)>> = Mutex::new(Vec::new());
            run_cells(
                &states,
                &alphas,
                &ks,
                Objective::Max,
                true,
                Shard::all(),
                &|_| false,
                &|cell, outcome| {
                    let entry = match outcome {
                        CellOutcome::Done(result) => Ok(RunRecord::new(
                            "tree",
                            14,
                            alphas[cell.ai],
                            ks[cell.ki],
                            cell.rep,
                            &result,
                        )),
                        CellOutcome::Failed(message) => Err(message),
                    };
                    got.lock().push((cell.index, entry));
                },
                None,
                fault,
            );
            let mut got = got.into_inner();
            got.sort_by_key(|(i, _)| *i);
            got
        };
        let clean = collect(None);
        // Cell 2 is mid-rep-0's warm-start column: rep 0 runs cells
        // 0, 2, 4, 6, so the arena is warm before and rebuilt after.
        let faulty = collect(Some(&FaultPlan::parse("panic_cell:2").unwrap()));
        assert_eq!(faulty.len(), clean.len(), "every cell still reports");
        for ((ci, c), (fi, f)) in clean.iter().zip(&faulty) {
            assert_eq!(ci, fi);
            if *ci == 2 {
                let message = f.as_ref().unwrap_err();
                assert!(
                    message.contains("injected fault: panic_cell"),
                    "failed cell must carry the panic payload, got {message:?}"
                );
            } else {
                assert_eq!(c, f, "cells other than the panicking one are bit-identical");
            }
        }
    }

    #[test]
    fn warm_and_cold_sweeps_agree_bitwise() {
        // The warm-start acceptance criterion at the engine level:
        // per-cell outcomes identical with arenas on and off.
        let states = workloads::tree_states(16, 3, 11);
        let alphas = [0.4, 3.0];
        let ks = [2u32, 1000];
        let collect = |warm: bool| {
            let got: Mutex<Vec<(usize, RunRecord)>> = Mutex::new(Vec::new());
            run_cells(
                &states,
                &alphas,
                &ks,
                Objective::Max,
                warm,
                Shard::all(),
                &|_| false,
                &|cell, outcome| {
                    let CellOutcome::Done(result) = outcome else {
                        panic!("unexpected cell failure")
                    };
                    let rec =
                        RunRecord::new("tree", 16, alphas[cell.ai], ks[cell.ki], cell.rep, &result);
                    got.lock().push((cell.index, rec));
                },
                None,
                None,
            );
            let mut got = got.into_inner();
            got.sort_by_key(|(i, _)| *i);
            got
        };
        assert_eq!(collect(true), collect(false));
    }
}
