//! Parallel `(α, k, rep)` sweeps with deterministic result order.

use ncg_core::{GameSpec, GameState, Objective};
use ncg_dynamics::{run, DynamicsConfig, RunResult};
use parking_lot::Mutex;
use rayon::prelude::*;
use serde::Serialize;

/// One completed dynamics run with its cell coordinates.
#[derive(Debug)]
pub struct CellResult {
    /// Edge price of the cell.
    pub alpha: f64,
    /// Knowledge radius of the cell.
    pub k: u32,
    /// Repetition index (selects the starting network).
    pub rep: usize,
    /// The dynamics result.
    pub result: RunResult,
}

/// A compact serialisable record of one run, written as JSON lines
/// next to the CSVs so full sweeps can be re-analysed offline.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// Workload class tag (`"tree"` / `"er"`).
    pub class: String,
    /// Player count.
    pub n: usize,
    /// Edge price.
    pub alpha: f64,
    /// Knowledge radius.
    pub k: u32,
    /// Repetition index.
    pub rep: usize,
    /// `true` iff the dynamics converged.
    pub converged: bool,
    /// `true` iff the run hit the round cap without converging or
    /// cycling (in which case `rounds` is the cap, not a sentinel).
    pub capped: bool,
    /// Rounds executed.
    pub rounds: usize,
    /// Total accepted moves.
    pub moves: usize,
    /// Final diameter, if connected.
    pub diameter: Option<u32>,
    /// Final quality `SC/OPT`.
    pub quality: Option<f64>,
    /// Final maximum degree.
    pub max_degree: usize,
    /// Final maximum bought edges.
    pub max_bought: usize,
    /// Final minimum view size.
    pub min_view: usize,
    /// Final average view size.
    pub avg_view: f64,
    /// Final unfairness ratio.
    pub unfairness: Option<f64>,
}

impl RunRecord {
    /// Builds a record from a cell result. Capped runs used to leak
    /// the `usize::MAX` sentinel into the JSON `rounds` field; they
    /// now record the rounds actually executed plus `capped: true`.
    pub fn from_cell(class: &str, n: usize, cell: &CellResult) -> Self {
        let m = &cell.result.final_metrics;
        RunRecord {
            class: class.to_string(),
            n,
            alpha: cell.alpha,
            k: cell.k,
            rep: cell.rep,
            converged: cell.result.outcome.converged(),
            capped: matches!(cell.result.outcome, ncg_dynamics::Outcome::MaxRoundsExceeded { .. }),
            rounds: cell.result.outcome.rounds(),
            moves: cell.result.total_moves,
            diameter: m.diameter,
            quality: m.quality,
            max_degree: m.max_degree,
            max_bought: m.max_bought,
            min_view: m.min_view,
            avg_view: m.avg_view,
            unfairness: m.unfairness,
        }
    }
}

/// Runs MaxNCG dynamics for every `(α, k)` in the grid and every
/// starting state, in parallel, returning results sorted by
/// `(α-index, k-index, rep)`.
///
/// `progress`, if given, is called after each finished run with
/// `(done, total)` — used by the binaries for a live counter.
pub fn sweep(
    states: &[GameState],
    alphas: &[f64],
    ks: &[u32],
    objective: Objective,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> Vec<CellResult> {
    let cells: Vec<(usize, usize, usize)> = (0..alphas.len())
        .flat_map(|ai| {
            (0..ks.len()).flat_map(move |ki| (0..states.len()).map(move |r| (ai, ki, r)))
        })
        .collect();
    let total = cells.len();
    let done = Mutex::new(0usize);
    let mut results: Vec<(usize, CellResult)> = cells
        .into_par_iter()
        .enumerate()
        .map(|(idx, (ai, ki, rep))| {
            let spec = GameSpec { alpha: alphas[ai], k: ks[ki], objective };
            let config = DynamicsConfig::new(spec);
            let result = run(states[rep].clone(), &config);
            if let Some(cb) = progress {
                let mut d = done.lock();
                *d += 1;
                cb(*d, total);
            }
            (idx, CellResult { alpha: alphas[ai], k: ks[ki], rep, result })
        })
        .collect();
    results.sort_by_key(|(idx, _)| *idx);
    results.into_iter().map(|(_, c)| c).collect()
}

/// Groups cell results by `(α, k)` preserving grid order, yielding
/// `((α, k), &[CellResult])` slices of length `reps`.
pub fn by_cell<'a>(
    results: &'a [CellResult],
    alphas: &[f64],
    ks: &[u32],
    reps: usize,
) -> Vec<((f64, u32), &'a [CellResult])> {
    let mut out = Vec::with_capacity(alphas.len() * ks.len());
    let mut offset = 0;
    for &alpha in alphas {
        for &k in ks {
            let slice = &results[offset..offset + reps];
            debug_assert!(slice.iter().all(|c| c.alpha == alpha && c.k == k));
            out.push(((alpha, k), slice));
            offset += reps;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn sweep_covers_the_grid_in_order() {
        let states = workloads::tree_states(14, 2, 1);
        let alphas = [0.5, 2.0];
        let ks = [2u32, 1000];
        let results = sweep(&states, &alphas, &ks, Objective::Max, None);
        assert_eq!(results.len(), 8);
        // Order: α-major, then k, then rep.
        assert_eq!((results[0].alpha, results[0].k, results[0].rep), (0.5, 2, 0));
        assert_eq!((results[1].alpha, results[1].k, results[1].rep), (0.5, 2, 1));
        assert_eq!((results[2].alpha, results[2].k, results[2].rep), (0.5, 1000, 0));
        assert_eq!((results[7].alpha, results[7].k, results[7].rep), (2.0, 1000, 1));
        for c in &results {
            assert!(c.result.outcome.converged() || c.result.total_moves > 0);
        }
    }

    #[test]
    fn by_cell_groups_correctly() {
        let states = workloads::tree_states(12, 3, 2);
        let alphas = [1.0];
        let ks = [2u32, 3];
        let results = sweep(&states, &alphas, &ks, Objective::Max, None);
        let grouped = by_cell(&results, &alphas, &ks, 3);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0, (1.0, 2));
        assert_eq!(grouped[0].1.len(), 3);
        assert_eq!(grouped[1].0, (1.0, 3));
    }

    #[test]
    fn progress_callback_counts_to_total() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let states = workloads::tree_states(10, 2, 3);
        let max_seen = AtomicUsize::new(0);
        let cb = |done: usize, total: usize| {
            assert!(done <= total);
            max_seen.fetch_max(done, Ordering::Relaxed);
        };
        sweep(&states, &[1.0], &[2], Objective::Max, Some(&cb));
        assert_eq!(max_seen.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn run_record_extracts_fields() {
        let states = workloads::tree_states(12, 1, 4);
        let results = sweep(&states, &[2.0], &[3], Objective::Max, None);
        let rec = RunRecord::from_cell("tree", 12, &results[0]);
        assert_eq!(rec.class, "tree");
        assert_eq!(rec.n, 12);
        assert_eq!(rec.alpha, 2.0);
        assert_eq!(rec.k, 3);
        assert!(rec.converged);
        assert!(!rec.capped);
        assert!(rec.rounds >= 1);
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"class\":\"tree\""));
        assert!(json.contains("\"capped\":false"));
    }

    #[test]
    fn capped_runs_record_executed_rounds_not_a_sentinel() {
        // A toggling two-player gadget that can never converge, with a
        // cap of 1 round: the record must say rounds = 1, capped.
        let state = GameState::from_strategies(3, vec![vec![1], vec![2], vec![0]]);
        let spec = GameSpec { alpha: 1.0, k: 2, objective: Objective::Max };
        let mut config = DynamicsConfig::new(spec);
        config.max_rounds = 0;
        let result = run(state, &config);
        let cell = CellResult { alpha: spec.alpha, k: spec.k, rep: 0, result };
        let rec = RunRecord::from_cell("tree", 3, &cell);
        assert!(rec.capped);
        assert!(!rec.converged);
        assert_eq!(rec.rounds, 0, "rounds must be the executed count, not usize::MAX");
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"capped\":true"));
        assert!(!json.contains(&usize::MAX.to_string()));
    }
}
