//! Experiment output: named tables, console rendering, CSV + JSONL
//! persistence under a results directory.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use ncg_stats::{Table, TableStyle};

/// The rendered artifacts of one experiment.
#[derive(Debug, Default)]
pub struct ExperimentOutput {
    /// Experiment id, e.g. `"table1"` or `"figure7"`.
    pub name: String,
    /// Named tables (file stem → table); an experiment may emit
    /// several series (e.g. Figure 6's α = 1 and α = 10 panels).
    pub tables: Vec<(String, Table)>,
    /// Free-form notes (profile used, observations) included in the
    /// console output and written alongside the CSVs.
    pub notes: String,
    /// Extra raw artifacts (file name → contents), e.g. DOT drawings
    /// or JSONL run records.
    pub artifacts: Vec<(String, String)>,
}

impl ExperimentOutput {
    /// Creates an empty output for the given experiment id.
    pub fn new(name: impl Into<String>) -> Self {
        ExperimentOutput { name: name.into(), ..Default::default() }
    }

    /// Adds a table.
    pub fn push_table(&mut self, stem: impl Into<String>, table: Table) {
        self.tables.push((stem.into(), table));
    }

    /// Adds a raw artifact file.
    pub fn push_artifact(&mut self, file_name: impl Into<String>, contents: impl Into<String>) {
        self.artifacts.push((file_name.into(), contents.into()));
    }

    /// Renders everything to a console-friendly string.
    pub fn render_console(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.name));
        if !self.notes.is_empty() {
            out.push_str(&self.notes);
            if !self.notes.ends_with('\n') {
                out.push('\n');
            }
        }
        for (stem, table) in &self.tables {
            out.push_str(&format!("\n-- {stem} --\n"));
            out.push_str(&table.render(TableStyle::Text));
        }
        out
    }

    /// Writes CSVs, notes and artifacts under `dir` (created if
    /// missing). Returns the written paths.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for (stem, table) in &self.tables {
            let path = dir.join(format!("{}_{stem}.csv", self.name));
            fs::write(&path, table.render(TableStyle::Csv))?;
            written.push(path);
        }
        if !self.notes.is_empty() {
            let path = dir.join(format!("{}_notes.txt", self.name));
            let mut f = fs::File::create(&path)?;
            writeln!(f, "{}", self.notes.trim_end())?;
            written.push(path);
        }
        for (file_name, contents) in &self.artifacts {
            let path = dir.join(file_name);
            fs::write(&path, contents)?;
            written.push(path);
        }
        Ok(written)
    }
}

/// Builds a grid-shaped table: one row per `row_labels` entry, one
/// column per `col_labels` entry (plus the leading row-label column),
/// cells produced by `cell(row_idx, col_idx)`.
pub fn grid_table(
    row_name: &str,
    row_labels: &[String],
    col_labels: &[String],
    mut cell: impl FnMut(usize, usize) -> String,
) -> Table {
    let mut header: Vec<String> = vec![row_name.to_string()];
    header.extend(col_labels.iter().cloned());
    let mut table = Table::new(header);
    for (ri, rl) in row_labels.iter().enumerate() {
        let mut row: Vec<String> = vec![rl.clone()];
        for ci in 0..col_labels.len() {
            row.push(cell(ri, ci));
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_table_shapes_correctly() {
        let t = grid_table(
            "alpha",
            &["0.5".into(), "2".into()],
            &["k=2".into(), "k=3".into(), "k=4".into()],
            |r, c| format!("{r}/{c}"),
        );
        assert_eq!(t.len(), 2);
        let csv = t.render(TableStyle::Csv);
        assert!(csv.starts_with("alpha,k=2,k=3,k=4\n"));
        assert!(csv.contains("0.5,0/0,0/1,0/2"));
    }

    #[test]
    fn console_rendering_includes_everything() {
        let mut out = ExperimentOutput::new("demo");
        out.notes = "profile: quick".into();
        let mut t = Table::new(["a"]);
        t.push_row(["1"]);
        out.push_table("series", t);
        let text = out.render_console();
        assert!(text.contains("== demo =="));
        assert!(text.contains("profile: quick"));
        assert!(text.contains("-- series --"));
    }

    #[test]
    fn write_to_creates_files() {
        let dir = std::env::temp_dir().join(format!("ncg_out_test_{}", std::process::id()));
        let mut out = ExperimentOutput::new("demo");
        out.notes = "hello".into();
        let mut t = Table::new(["x", "y"]);
        t.push_row(["1", "2"]);
        out.push_table("main", t);
        out.push_artifact("demo_extra.dot", "graph g {}\n");
        let written = out.write_to(&dir).unwrap();
        assert_eq!(written.len(), 3);
        for p in &written {
            assert!(p.exists(), "{p:?} missing");
        }
        let csv = fs::read_to_string(dir.join("demo_main.csv")).unwrap();
        assert!(csv.starts_with("x,y\n"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
