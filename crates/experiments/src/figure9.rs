//! Figure 9: the unfairness ratio (costliest player / cheapest
//! player) of the stable networks as a function of `α`, one series
//! per `k` — Erdős–Rényi workloads (paper: `n = 100, p = 0.1`).
//!
//! Paper observation: *small* values of `k` yield more fair equilibria
//! — restricting the players' views flattens the cost distribution.

use ncg_core::Objective;

use crate::engine::{self, MetricGrid, SweepContext};
use crate::output::grid_table;
use crate::sweep::SweepSpec;
use crate::{ExperimentOutput, Profile};

/// Runs the Figure 9 sweep under the given profile (local mode).
pub fn run(profile: &Profile) -> ExperimentOutput {
    run_ctx(profile, &SweepContext::local())
}

/// Runs the Figure 9 sweep under the given execution context.
pub fn run_ctx(profile: &Profile, ctx: &SweepContext) -> ExperimentOutput {
    let (n, p) = profile.headline_er();
    let mut out = ExperimentOutput::new("figure9");
    let specs = vec![SweepSpec::er(
        "main",
        n,
        p,
        profile.reps,
        profile.base_seed,
        profile.alphas.clone(),
        profile.ks.clone(),
        Objective::Max,
    )];
    let mut unfair = MetricGrid::new(profile.alphas.len(), profile.ks.len());
    let report = engine::execute(ctx, "figure9", &specs, &mut |_, cell, rec| {
        unfair.push(cell.ai, cell.ki, rec.unfairness);
    });
    if let Some(note) = report.shard_note("figure9") {
        out.notes = note;
        return out;
    }
    out.notes = format!(
        "Figure 9 — unfairness (max/min player cost) vs α on G({n}, {p}); profile: {} ({} reps)",
        profile.name, profile.reps
    );
    let row_labels: Vec<String> = profile.alphas.iter().map(|a| format!("{a}")).collect();
    let col_labels: Vec<String> = profile.ks.iter().map(|k| format!("k={k}")).collect();
    out.push_table(
        "unfairness",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| unfair.display(ri, ci, 2)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{by_cell, sweep};
    use crate::workloads;

    #[test]
    fn local_views_are_more_fair_than_full_knowledge() {
        // The paper's qualitative claim, scaled down: compare the mean
        // unfairness at k = 2 against k = 1000 for a cheap α where
        // full knowledge builds hub-dominated (unfair) networks.
        let reps = 3;
        let states = workloads::er_states(28, 0.15, reps, 13);
        let results = sweep(&states, &[0.3], &[2, 1000], Objective::Max, None);
        let grouped = by_cell(&results, &[0.3], &[2, 1000], reps);
        let mean_unfair = |i: usize| {
            let (_, cells) = grouped[i];
            let v: Vec<f64> =
                cells.iter().filter_map(|c| c.result.final_metrics.unfairness).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let local = mean_unfair(0);
        let full = mean_unfair(1);
        assert!(
            local <= full + 0.75,
            "local views should be at least comparably fair: k=2 → {local}, k=1000 → {full}"
        );
    }

    #[test]
    fn unfairness_at_least_one() {
        let out_states = workloads::er_states(20, 0.2, 2, 5);
        let results = sweep(&out_states, &[1.0], &[3], Objective::Max, None);
        for c in &results {
            if let Some(u) = c.result.final_metrics.unfairness {
                assert!(u >= 1.0 - 1e-9);
            }
        }
    }

    #[test]
    fn output_shape() {
        let out = run(&Profile::smoke());
        assert_eq!(out.tables.len(), 1);
        assert_eq!(out.tables[0].1.len(), Profile::smoke().alphas.len());
    }
}
