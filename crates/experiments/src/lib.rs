//! # ncg-experiments — the paper's evaluation, regenerated
//!
//! One module per table/figure of
//!
//! > Bilò, Gualà, Leucci, Proietti. *Locality-based Network Creation
//! > Games.* SPAA 2014 / ACM TOPC 3(1), 2016,
//!
//! each producing the same rows/series the paper reports (mean ± 95%
//! CI over repeated runs) as aligned text and CSV:
//!
//! | module | artifact |
//! |---|---|
//! | [`table1`] | Table I — random-tree workload statistics |
//! | [`table2`] | Table II — Erdős–Rényi workload statistics |
//! | [`figures12`] | Figures 1–2 — torus construction geometry + DOT |
//! | [`figure3`] | Figure 3 — MaxNCG bound region map |
//! | [`figure4`] | Figure 4 — SumNCG bound region map |
//! | [`figure5`] | Figure 5 — view sizes at equilibrium vs `α`, per `k` |
//! | [`figure6`] | Figure 6 — equilibrium quality vs `n` (α = 1 and 10) |
//! | [`figure7`] | Figure 7 — equilibrium quality vs `k` (α = 2) + trend |
//! | [`figure8`] | Figure 8 — max degree / max bought edges vs `α` |
//! | [`figure9`] | Figure 9 — unfairness ratio vs `α` |
//! | [`figure10`] | Figure 10 — convergence rounds vs `α` and vs `n` |
//! | [`lower_bounds`] | Lemma 3.1 / 3.2, Theorems 3.12 / 4.2 certifications |
//! | [`scale_dynamics`] | *extension*: million-node approximate dynamics tier |
//! | [`sum_extension`] | *extension*: SumNCG dynamics sweep + Theorem 4.4 check |
//! | [`swap_ncg`] | *extension*: swap-game dynamics (one edge re-pointed per move) |
//! | [`nonuniform`] | *extension*: per-target edge prices `α·w(v)` (model zoo) |
//!
//! Every experiment takes a [`Profile`]: [`Profile::quick`] (default;
//! trimmed grids that finish in minutes on a laptop) or
//! [`Profile::paper`] (the paper's exact 36 000-run grid — hours).
//! Runs are seeded and bit-reproducible; the dynamics themselves are
//! deterministic given the initial state.
//!
//! ## The sweep engine
//!
//! Dynamics experiments run through a streaming, shardable engine
//! ([`sweep`] for the cell work-list, [`engine`] for orchestration,
//! [`journal`] for the JSONL run journals): every finished cell is
//! streamed to an append-only journal and folded into `O(grid)`
//! aggregates, grids can be partitioned across processes
//! (`--shards M --shard i`) and merged back (`merge`) with
//! byte-identical artifacts, killed runs resume from their journal,
//! and dynamics are warm-started per repetition
//! ([`ncg_dynamics::CacheArena`]). See DESIGN.md §7.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod fault;
pub mod figure10;
pub mod figure3;
pub mod figure4;
pub mod figure5;
pub mod figure6;
pub mod figure7;
pub mod figure8;
pub mod figure9;
pub mod figures12;
pub mod journal;
pub mod lower_bounds;
pub mod nonuniform;
pub mod output;
pub mod profile;
pub mod protocol;
pub mod queue;
pub mod scale_dynamics;
pub mod sum_extension;
pub mod swap_ncg;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod workloads;

pub use engine::{ExecReport, MetricGrid, SweepContext, SweepMode};
pub use output::ExperimentOutput;
pub use profile::Profile;

/// Runs one experiment by CLI name under the given context; `None`
/// for an unknown name. This is the single dispatch the binary, the
/// work-queue coordinator, and [`sweep_plan`] share.
pub fn run_experiment(
    name: &str,
    profile: &Profile,
    ctx: &SweepContext,
) -> Option<ExperimentOutput> {
    let out = match name {
        "table1" => table1::run(profile),
        "table2" => table2::run(profile),
        "figures12" => figures12::run(profile),
        "figure3" => figure3::run(profile),
        "figure4" => figure4::run(profile),
        "figure5" => figure5::run_ctx(profile, ctx),
        "figure6" => figure6::run_ctx(profile, ctx),
        "figure7" => figure7::run_ctx(profile, ctx),
        "figure8" => figure8::run_ctx(profile, ctx),
        "figure9" => figure9::run_ctx(profile, ctx),
        "figure10" => figure10::run_ctx(profile, ctx),
        "lower-bounds" => lower_bounds::run(profile),
        "scale-dynamics" => scale_dynamics::run_ctx(profile, ctx),
        "sum-extension" => sum_extension::run_ctx(profile, ctx),
        "swap-ncg" => swap_ncg::run_ctx(profile, ctx),
        "nonuniform" => nonuniform::run_ctx(profile, ctx),
        _ => return None,
    };
    Some(out)
}

/// The sweep specs an experiment would run under `profile`, without
/// running anything — the cell work-list the queue coordinator hands
/// out and its workers solve. Empty for experiments that run no
/// `(α, k, rep)` sweeps (tables, constructions). `None` for an
/// unknown name.
pub fn sweep_plan(name: &str, profile: &Profile) -> Option<Vec<sweep::SweepSpec>> {
    let plan_ctx = SweepContext { mode: SweepMode::Plan, journal_dir: None, warm_start: true };
    let mut known = false;
    let specs = engine::collect_plan(|| {
        known = run_experiment(name, profile, &plan_ctx).is_some();
    });
    known.then_some(specs)
}
