//! The experiment-level sweep orchestrator: one entry point
//! ([`execute`]) that every dynamics figure routes its sweeps
//! through, in one of four modes.
//!
//! * **Local** — run every cell in-process (warm-started per rep),
//!   stream each finished cell to the JSONL journal the moment it
//!   completes, and *fold* records into the experiment's `O(grid)`
//!   aggregates in canonical cell order (a small reorder buffer
//!   re-serialises the workers' completion order). If a journal from
//!   a killed run exists, its cells are replayed into the fold and
//!   only the missing ones are computed.
//! * **Shard** — run only the cells of shard `i` of `M` (partitioned
//!   by `rep % M`, keeping warm-start groups intact), journal them,
//!   and skip table rendering entirely: tables come from `merge`.
//! * **Merge** — run nothing; read the `M` shard journals, verify
//!   the grid is complete, fold in canonical order, and write the
//!   canonical merged journal. Because folding consumes records in
//!   the same order Local mode does and serialisation is
//!   deterministic, merged tables and JSONL are byte-identical to a
//!   single-process run (property-tested in
//!   `tests/sweep_shard_props.rs`). Each entry's canonical index is
//!   re-derived from its record under the merge target's grid, so
//!   shards run with *different* `--reps` splits of one grid merge
//!   cleanly — completeness is checked on the union.
//! * **Plan** — run nothing and journal nothing; report the specs to
//!   [`collect_plan`] so callers (the work-queue coordinator and its
//!   workers) can learn an experiment's cell work-list without
//!   executing it.
//!
//! The fold callback receives `(sweep index, cell, record)` strictly
//! in canonical order: sweeps in plan order, cells by linear index.
//!
//! Failure isolation: a cell whose solve panics (caught in
//! `run_cells`) is journaled as a `CellFailed` marker and the rest of
//! the sweep completes; `execute` then panics with a summary instead
//! of rendering tables from a hole-y grid. Re-running the experiment
//! retries exactly the failed cells (completed ones resume from the
//! journal).
//!
//! Fault injection: when the process-level `NCG_FAULT` plan is set
//! (see [`crate::fault`]), the engine wires it through — the journal
//! writer arms `torn_write`, the sink counts results for
//! `kill_after_cells`, and `run_cells` injects `panic_cell`.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::Arc;

use ncg_stats::{Accumulator, Summary};
use parking_lot::Mutex;

use crate::fault::{self, FaultPlan};
use crate::journal::{self, CellFailed, JournalEntry, JournalWriter};
use crate::sweep::{run_spec_cells, CellId, RunRecord, Shard, SweepSpec};

/// How an experiment's sweeps are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Run everything in this process.
    Local,
    /// Run only shard `index` of `count`, journal, render no tables.
    Shard {
        /// Total number of shards.
        count: usize,
        /// This process's shard.
        index: usize,
    },
    /// Fold the `count` shard journals into the final artifacts.
    Merge {
        /// Total number of shards to merge.
        count: usize,
    },
    /// Run nothing; record the plan's specs for [`collect_plan`].
    Plan,
}

/// Execution context threaded from the CLI into every experiment.
#[derive(Debug, Clone)]
pub struct SweepContext {
    /// Execution mode.
    pub mode: SweepMode,
    /// Directory holding journals (`None`: no journaling — the pure
    /// in-memory library path used by tests and `run(profile)`).
    pub journal_dir: Option<PathBuf>,
    /// Whether to warm-start dynamics per repetition (on by default;
    /// outcomes are bit-identical either way).
    pub warm_start: bool,
}

impl SweepContext {
    /// The default context: local, no journal, warm starts on.
    pub fn local() -> Self {
        SweepContext { mode: SweepMode::Local, journal_dir: None, warm_start: true }
    }
}

impl Default for SweepContext {
    fn default() -> Self {
        Self::local()
    }
}

/// What [`execute`] did, for the experiment's notes.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// `true` when the fold ran (Local/Merge) and tables can be
    /// rendered; `false` in shard mode.
    pub folded: bool,
    /// Cells actually computed in this process.
    pub cells_run: usize,
    /// Cells replayed from journals (resume or merge).
    pub cells_resumed: usize,
    /// Cells whose solve panicked (journaled as `CellFailed`).
    pub cells_failed: usize,
    /// The journal written, if journaling was on.
    pub journal: Option<PathBuf>,
    shard: Option<(usize, usize)>,
}

impl ExecReport {
    /// In shard (and plan) mode, the note replacing the experiment's
    /// tables; `None` otherwise.
    pub fn shard_note(&self, experiment: &str) -> Option<String> {
        let (index, count) = self.shard?;
        let path = self
            .journal
            .as_ref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "<no journal>".into());
        Some(format!(
            "{experiment} — shard {index} of {count}: journaled {} new cells \
             ({} resumed) to {path}; run `merge {experiment} --shards {count}` \
             once every shard has finished.",
            self.cells_run, self.cells_resumed
        ))
    }
}

thread_local! {
    static PLAN_SINK: RefCell<Option<Vec<SweepSpec>>> = const { RefCell::new(None) };
}

/// Runs `f` with plan collection armed on this thread and returns
/// every spec that [`execute`] calls under a [`SweepMode::Plan`]
/// context reported while it ran. This is how the queue layer turns
/// "experiment name" into "cell work-list" without running anything:
/// drive the experiment with a Plan context inside `collect_plan`
/// and read the specs off.
pub fn collect_plan(f: impl FnOnce()) -> Vec<SweepSpec> {
    PLAN_SINK.with(|sink| *sink.borrow_mut() = Some(Vec::new()));
    f();
    PLAN_SINK.with(|sink| sink.borrow_mut().take()).unwrap_or_default()
}

/// Checks a journaled entry's grid fingerprint against the spec it
/// claims to belong to; a mismatch means the journal was produced by
/// a different profile — including a different `--seed`, workload, or
/// `α`/`k` grid, which only the [`SweepSpec::fingerprint`] can see —
/// and must not be silently mixed in. (A different `--reps` of the
/// same grid is *not* a different profile: per-rep seeds don't depend
/// on the rep count, so those journals fingerprint identically and
/// merge.)
fn validate_fingerprint(spec: &SweepSpec, entry_grid: u64, cell: usize) {
    assert!(
        entry_grid == spec.fingerprint(),
        "journal entry for sweep '{}' cell {} was written under a different profile \
         (grid fingerprint {:#018x}, current {:#018x} — seed, workload, or α/k \
         grid changed); delete the stale journal and re-run",
        spec.label,
        cell,
        entry_grid,
        spec.fingerprint()
    );
}

/// The per-sweep streaming sink: appends finished cells to the
/// journal immediately (crash safety) and re-serialises the workers'
/// completion order into canonical order for the fold via a reorder
/// buffer keyed by cell index. Resumed records are preloaded into the
/// buffer, so the fold sees one contiguous canonical stream. The
/// buffer only ever holds records completed ahead of the canonical
/// cursor (plus preloaded resume records), so it stays far below the
/// grid size in practice.
struct SinkState<'a> {
    writer: Option<JournalWriter>,
    pending: BTreeMap<usize, RunRecord>,
    next: usize,
    ran: usize,
    failed: usize,
    fold: &'a mut (dyn FnMut(usize, CellId, &RunRecord) + Send),
}

impl SinkState<'_> {
    fn drain(&mut self, spec_idx: usize, spec: &SweepSpec) {
        while let Some(record) = self.pending.remove(&self.next) {
            (self.fold)(spec_idx, spec.cell(self.next), &record);
            self.next += 1;
        }
    }
}

/// Executes an experiment's sweeps under the given context, driving
/// `fold(sweep index, cell, record)` in canonical order (Local and
/// Merge modes). Returns what happened; in shard and plan modes the
/// fold is never called. Panics on journal I/O errors, on merge
/// journals that are incomplete or from a different profile, on an
/// invalid shard selection, and — after journaling `CellFailed`
/// markers and compacting — when any cell's solve panicked.
pub fn execute(
    ctx: &SweepContext,
    experiment: &str,
    specs: &[SweepSpec],
    fold: &mut (dyn FnMut(usize, CellId, &RunRecord) + Send),
) -> ExecReport {
    match ctx.mode {
        SweepMode::Merge { count } => merge(ctx, experiment, specs, count, fold),
        SweepMode::Local => run_shard(ctx, experiment, specs, Shard::all(), true, fold),
        SweepMode::Shard { count, index } => {
            assert!(count >= 1 && index < count, "invalid shard {index} of {count}");
            run_shard(ctx, experiment, specs, Shard { count, index }, false, fold)
        }
        SweepMode::Plan => {
            PLAN_SINK.with(|sink| {
                let mut sink = sink.borrow_mut();
                let sink = sink
                    .as_mut()
                    .expect("SweepMode::Plan requires running inside engine::collect_plan");
                sink.extend(specs.iter().cloned());
            });
            // Report as a pseudo-shard so figures take their existing
            // journal-only early return and render nothing.
            ExecReport {
                folded: false,
                cells_run: 0,
                cells_resumed: 0,
                cells_failed: 0,
                journal: None,
                shard: Some((0, 1)),
            }
        }
    }
}

/// Indexes a journal's completed entries by `(sweep position,
/// canonical cell index under the current plan)`. The stored `cell`
/// field encodes the *writing* run's rep count; the index is
/// re-derived from the record's own coordinates so journals from
/// other `--reps` splits of the same grid resume correctly. Entries
/// whose rep lies beyond the current plan are counted into `dropped`
/// rather than kept (they belong to a larger split). Panics when an
/// entry's grid fingerprint doesn't match — a different profile.
fn index_resumable(
    entries: Vec<JournalEntry>,
    specs: &[SweepSpec],
    dropped: &mut usize,
) -> HashMap<(usize, usize), RunRecord> {
    let mut resumed = HashMap::new();
    for entry in entries {
        let Some(si) = specs.iter().position(|s| s.label == entry.sweep) else { continue };
        validate_fingerprint(&specs[si], entry.grid, entry.cell);
        match specs[si].index_of_record(&entry.record) {
            Some(index) => {
                resumed.insert((si, index), entry.record);
            }
            None => *dropped += 1,
        }
    }
    resumed
}

fn run_shard(
    ctx: &SweepContext,
    experiment: &str,
    specs: &[SweepSpec],
    shard: Shard,
    do_fold: bool,
    fold: &mut (dyn FnMut(usize, CellId, &RunRecord) + Send),
) -> ExecReport {
    let fault: Option<Arc<FaultPlan>> = fault::env_plan();
    let path = ctx.journal_dir.as_ref().map(|dir| {
        if shard.count == 1 {
            journal::journal_path(dir, experiment)
        } else {
            journal::shard_journal_path(dir, experiment, shard.index, shard.count)
        }
    });
    // Resume: index every journaled record by (sweep, cell) — the
    // cell index re-derived under the current plan's grid.
    let mut dropped = 0usize;
    let mut resumed: HashMap<(usize, usize), RunRecord> = match path.as_ref() {
        Some(path) => index_resumable(
            journal::read(path).expect("reading the resume journal"),
            specs,
            &mut dropped,
        ),
        None => HashMap::new(),
    };
    if dropped > 0 {
        eprintln!(
            "[resume] {experiment}: dropped {dropped} journaled cells whose rep lies beyond \
             the current --reps (they belong to a larger split of this grid)"
        );
    }
    // Even an empty shard must leave a journal behind, or `merge`
    // could not tell "ran, owned nothing" from "never ran".
    let mut writer = path
        .as_ref()
        .map(|p| JournalWriter::append(p).expect("opening journal").with_fault(fault.clone()));
    let (mut cells_run, mut cells_resumed) = (0usize, 0usize);
    let failures: Mutex<Vec<(String, usize, String)>> = Mutex::new(Vec::new());
    for (si, spec) in specs.iter().enumerate() {
        // This spec's resumed records: skipped by the engine and (in
        // fold mode) preloaded into the reorder buffer so the fold
        // still sees one contiguous canonical stream.
        let mut preload: BTreeMap<usize, RunRecord> = BTreeMap::new();
        for index in 0..spec.cell_count() {
            if let Some(record) = resumed.remove(&(si, index)) {
                preload.insert(index, record);
            }
        }
        cells_resumed += preload.len();
        let skip: Vec<bool> = (0..spec.cell_count()).map(|i| preload.contains_key(&i)).collect();
        let grid = spec.fingerprint();
        let sink = Mutex::new(SinkState {
            writer: writer.take(),
            pending: if do_fold { preload } else { BTreeMap::new() },
            next: 0,
            ran: 0,
            failed: 0,
            fold: &mut *fold,
        });
        if do_fold {
            sink.lock().drain(si, spec);
        }
        run_spec_cells(
            spec,
            ctx.warm_start,
            shard,
            &|index| skip[index],
            &|cell, entry| match entry {
                Ok(record) => {
                    if let Some(f) = fault.as_ref() {
                        if f.should_die_before_result() {
                            f.abort("before journaling a cell result");
                        }
                    }
                    let mut s = sink.lock();
                    s.ran += 1;
                    if let Some(w) = s.writer.as_mut() {
                        w.push(&JournalEntry {
                            sweep: spec.label.clone(),
                            cell: cell.index,
                            grid,
                            record: record.clone(),
                        })
                        .expect("appending to the run journal");
                    }
                    if do_fold {
                        s.pending.insert(cell.index, record);
                        s.drain(si, spec);
                    }
                }
                Err(message) => {
                    let mut s = sink.lock();
                    s.failed += 1;
                    if let Some(w) = s.writer.as_mut() {
                        w.push_failed(&CellFailed {
                            sweep: spec.label.clone(),
                            cell: cell.index,
                            grid,
                            failed: message.clone(),
                        })
                        .expect("appending a cell failure to the run journal");
                    }
                    failures.lock().push((spec.label.clone(), cell.index, message));
                }
            },
            None,
            fault.as_deref(),
        );
        let mut s = sink.into_inner();
        if do_fold {
            s.drain(si, spec);
            // With failed cells the canonical stream has holes; the
            // summary panic below replaces table rendering entirely.
            if s.failed == 0 {
                assert_eq!(
                    s.next,
                    spec.cell_count(),
                    "sweep '{}' must fold every cell exactly once",
                    spec.label
                );
            }
        }
        cells_run += s.ran;
        writer = s.writer.take();
    }
    drop(writer);
    if let Some(path) = path.as_ref() {
        journal::compact(path, specs).expect("compacting the run journal");
    }
    let failures = failures.into_inner();
    if !failures.is_empty() {
        let listing: Vec<String> = failures
            .iter()
            .map(|(sweep, cell, message)| format!("'{sweep}' cell {cell}: {message}"))
            .collect();
        panic!(
            "{experiment}: {} cell(s) failed with panics — {}; completed cells are journaled, \
             so re-running retries only the failed ones",
            failures.len(),
            listing.join("; ")
        );
    }
    ExecReport {
        folded: do_fold,
        cells_run,
        cells_resumed,
        cells_failed: 0,
        journal: path,
        shard: (shard.count > 1).then_some((shard.index, shard.count)),
    }
}

fn merge(
    ctx: &SweepContext,
    experiment: &str,
    specs: &[SweepSpec],
    count: usize,
    fold: &mut (dyn FnMut(usize, CellId, &RunRecord) + Send),
) -> ExecReport {
    assert!(count >= 1, "merge needs at least one shard");
    let dir = ctx.journal_dir.as_ref().expect("merge mode requires a results directory");
    // The union of every shard's cells, keyed by (sweep position,
    // canonical index under the *merge target's* grid) — re-derived
    // from each record's own coordinates, so shards run under
    // different --reps splits of one grid land in one keyspace.
    // First occurrence wins: later duplicates (a retried cell, an
    // overlapping split) are dropped, and determinism of the solve
    // guarantees they'd carry identical bytes anyway.
    let mut union: BTreeMap<(usize, usize), JournalEntry> = BTreeMap::new();
    let mut dropped = 0usize;
    for index in 0..count {
        let path = journal::shard_journal_path(dir, experiment, index, count);
        assert!(
            path.is_file(),
            "missing shard journal {}; run `{experiment} --shards {count} --shard {index}` first",
            path.display()
        );
        for mut entry in journal::read(&path).expect("reading shard journal") {
            let Some(si) = specs.iter().position(|s| s.label == entry.sweep) else { continue };
            validate_fingerprint(&specs[si], entry.grid, entry.cell);
            let Some(cell) = specs[si].index_of_record(&entry.record) else {
                dropped += 1;
                continue;
            };
            entry.cell = cell;
            union.entry((si, cell)).or_insert(entry);
        }
    }
    if dropped > 0 {
        eprintln!(
            "[merge] {experiment}: dropped {dropped} journaled cells whose rep lies beyond \
             the merge target's --reps (they belong to a larger split of this grid)"
        );
    }
    // Completeness over the union, then fold in canonical order.
    let mut entries: Vec<JournalEntry> = Vec::with_capacity(union.len());
    for (si, spec) in specs.iter().enumerate() {
        for index in 0..spec.cell_count() {
            let entry = union.remove(&(si, index)).unwrap_or_else(|| {
                panic!(
                    "shard journals are incomplete: sweep '{}' is missing cell {index} \
                     (did every shard finish?)",
                    spec.label
                )
            });
            fold(si, spec.cell(index), &entry.record);
            entries.push(entry);
        }
    }
    debug_assert!(union.is_empty(), "index_of_record bounds every key to the grid");
    let merged_path = journal::journal_path(dir, experiment);
    std::fs::create_dir_all(dir).expect("creating the results directory");
    std::fs::write(&merged_path, journal::render(&entries)).expect("writing the merged journal");
    ExecReport {
        folded: true,
        cells_run: 0,
        cells_resumed: entries.len(),
        cells_failed: 0,
        journal: Some(merged_path),
        shard: None,
    }
}

/// An `α × k` grid of streaming [`Accumulator`]s — the fold-side
/// counterpart of the paper's per-cell `mean ± CI` tables. Pushing
/// `None` (a metric undefined for that run, e.g. the diameter of a
/// disconnected network) is a no-op, mirroring the old
/// `filter_map` + `Summary::of` pipelines.
#[derive(Debug, Clone)]
pub struct MetricGrid {
    cols: usize,
    accs: Vec<Accumulator>,
}

impl MetricGrid {
    /// A `rows × cols` grid of empty accumulators.
    pub fn new(rows: usize, cols: usize) -> Self {
        MetricGrid { cols, accs: vec![Accumulator::new(); rows * cols] }
    }

    /// Folds an observation into cell `(ri, ci)`; `None` is skipped.
    pub fn push(&mut self, ri: usize, ci: usize, value: Option<f64>) {
        if let Some(v) = value {
            self.accs[ri * self.cols + ci].push(v);
        }
    }

    /// The summary of cell `(ri, ci)`.
    pub fn summary(&self, ri: usize, ci: usize) -> Summary {
        self.accs[ri * self.cols + ci].summary()
    }

    /// `mean ± ci` of cell `(ri, ci)` at the given precision.
    pub fn display(&self, ri: usize, ci: usize, precision: usize) -> String {
        self.summary(ri, ci).display(precision)
    }
}
