//! The experiment-level sweep orchestrator: one entry point
//! ([`execute`]) that every dynamics figure routes its sweeps
//! through, in one of three modes.
//!
//! * **Local** — run every cell in-process (warm-started per rep),
//!   stream each finished cell to the JSONL journal the moment it
//!   completes, and *fold* records into the experiment's `O(grid)`
//!   aggregates in canonical cell order (a small reorder buffer
//!   re-serialises the workers' completion order). If a journal from
//!   a killed run exists, its cells are replayed into the fold and
//!   only the missing ones are computed.
//! * **Shard** — run only the cells of shard `i` of `M` (partitioned
//!   by `rep % M`, keeping warm-start groups intact), journal them,
//!   and skip table rendering entirely: tables come from `merge`.
//! * **Merge** — run nothing; read the `M` shard journals, verify
//!   the grid is complete, fold in canonical order, and write the
//!   canonical merged journal. Because folding consumes records in
//!   the same order Local mode does and serialisation is
//!   deterministic, merged tables and JSONL are byte-identical to a
//!   single-process run (property-tested in
//!   `tests/sweep_shard_props.rs`).
//!
//! The fold callback receives `(sweep index, cell, record)` strictly
//! in canonical order: sweeps in plan order, cells by linear index.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;

use ncg_stats::{Accumulator, Summary};
use parking_lot::Mutex;

use crate::journal::{self, JournalEntry, JournalWriter};
use crate::sweep::{run_cells, CellId, RunRecord, Shard, SweepSpec};

/// How an experiment's sweeps are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Run everything in this process.
    Local,
    /// Run only shard `index` of `count`, journal, render no tables.
    Shard {
        /// Total number of shards.
        count: usize,
        /// This process's shard.
        index: usize,
    },
    /// Fold the `count` shard journals into the final artifacts.
    Merge {
        /// Total number of shards to merge.
        count: usize,
    },
}

/// Execution context threaded from the CLI into every experiment.
#[derive(Debug, Clone)]
pub struct SweepContext {
    /// Execution mode.
    pub mode: SweepMode,
    /// Directory holding journals (`None`: no journaling — the pure
    /// in-memory library path used by tests and `run(profile)`).
    pub journal_dir: Option<PathBuf>,
    /// Whether to warm-start dynamics per repetition (on by default;
    /// outcomes are bit-identical either way).
    pub warm_start: bool,
}

impl SweepContext {
    /// The default context: local, no journal, warm starts on.
    pub fn local() -> Self {
        SweepContext { mode: SweepMode::Local, journal_dir: None, warm_start: true }
    }
}

impl Default for SweepContext {
    fn default() -> Self {
        Self::local()
    }
}

/// What [`execute`] did, for the experiment's notes.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// `true` when the fold ran (Local/Merge) and tables can be
    /// rendered; `false` in shard mode.
    pub folded: bool,
    /// Cells actually computed in this process.
    pub cells_run: usize,
    /// Cells replayed from journals (resume or merge).
    pub cells_resumed: usize,
    /// The journal written, if journaling was on.
    pub journal: Option<PathBuf>,
    shard: Option<(usize, usize)>,
}

impl ExecReport {
    /// In shard mode, the note replacing the experiment's tables;
    /// `None` otherwise.
    pub fn shard_note(&self, experiment: &str) -> Option<String> {
        let (index, count) = self.shard?;
        let path = self
            .journal
            .as_ref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "<no journal>".into());
        Some(format!(
            "{experiment} — shard {index} of {count}: journaled {} new cells \
             ({} resumed) to {path}; run `merge {experiment} --shards {count}` \
             once every shard has finished.",
            self.cells_run, self.cells_resumed
        ))
    }
}

/// Checks a resumed/merged entry against the cell the spec says it
/// belongs to; a mismatch means the journal was produced by a
/// different profile — including a different `--seed`, `--reps`,
/// workload, or grid, which only the [`SweepSpec::fingerprint`] can
/// see — and must not be silently mixed in.
fn validate_entry(spec: &SweepSpec, cell: CellId, entry: &JournalEntry) {
    assert!(
        entry.grid == spec.fingerprint(),
        "journal entry for sweep '{}' cell {} was written under a different profile \
         (grid fingerprint {:#018x}, current {:#018x} — seed, reps, workload, or α/k \
         grid changed); delete the stale journal and re-run",
        spec.label,
        cell.index,
        entry.grid,
        spec.fingerprint()
    );
    let record = &entry.record;
    let ok = record.alpha == spec.alphas[cell.ai]
        && record.k == spec.ks[cell.ki]
        && record.rep == cell.rep
        && record.n == spec.n
        && record.class == spec.class();
    assert!(
        ok,
        "journal entry for sweep '{}' cell {} does not match the current profile \
         (found α={} k={} rep={} n={} class={}); delete the stale journal and re-run",
        spec.label, cell.index, record.alpha, record.k, record.rep, record.n, record.class
    );
}

/// The per-sweep streaming sink: appends finished cells to the
/// journal immediately (crash safety) and re-serialises the workers'
/// completion order into canonical order for the fold via a reorder
/// buffer keyed by cell index. Resumed records are preloaded into the
/// buffer, so the fold sees one contiguous canonical stream. The
/// buffer only ever holds records completed ahead of the canonical
/// cursor (plus preloaded resume records), so it stays far below the
/// grid size in practice.
struct SinkState<'a> {
    writer: Option<JournalWriter>,
    pending: BTreeMap<usize, RunRecord>,
    next: usize,
    ran: usize,
    fold: &'a mut (dyn FnMut(usize, CellId, &RunRecord) + Send),
}

impl SinkState<'_> {
    fn drain(&mut self, spec_idx: usize, spec: &SweepSpec) {
        while let Some(record) = self.pending.remove(&self.next) {
            (self.fold)(spec_idx, spec.cell(self.next), &record);
            self.next += 1;
        }
    }
}

/// Executes an experiment's sweeps under the given context, driving
/// `fold(sweep index, cell, record)` in canonical order (Local and
/// Merge modes). Returns what happened; in shard mode the fold is
/// never called. Panics on journal I/O errors, on merge journals
/// that are incomplete or from a different profile, and on an
/// invalid shard selection.
pub fn execute(
    ctx: &SweepContext,
    experiment: &str,
    specs: &[SweepSpec],
    fold: &mut (dyn FnMut(usize, CellId, &RunRecord) + Send),
) -> ExecReport {
    match ctx.mode {
        SweepMode::Merge { count } => merge(ctx, experiment, specs, count, fold),
        SweepMode::Local => run_shard(ctx, experiment, specs, Shard::all(), true, fold),
        SweepMode::Shard { count, index } => {
            assert!(count >= 1 && index < count, "invalid shard {index} of {count}");
            run_shard(ctx, experiment, specs, Shard { count, index }, false, fold)
        }
    }
}

fn run_shard(
    ctx: &SweepContext,
    experiment: &str,
    specs: &[SweepSpec],
    shard: Shard,
    do_fold: bool,
    fold: &mut (dyn FnMut(usize, CellId, &RunRecord) + Send),
) -> ExecReport {
    let path = ctx.journal_dir.as_ref().map(|dir| {
        if shard.count == 1 {
            journal::journal_path(dir, experiment)
        } else {
            journal::shard_journal_path(dir, experiment, shard.index, shard.count)
        }
    });
    // Resume: index every journaled record by (sweep, cell).
    let mut resumed: HashMap<(usize, usize), RunRecord> = HashMap::new();
    if let Some(path) = path.as_ref() {
        for entry in journal::read(path).expect("reading the resume journal") {
            if let Some(si) = specs.iter().position(|s| s.label == entry.sweep) {
                if entry.cell < specs[si].cell_count() {
                    let cell = specs[si].cell(entry.cell);
                    validate_entry(&specs[si], cell, &entry);
                    resumed.insert((si, entry.cell), entry.record);
                }
            }
        }
    }
    // Even an empty shard must leave a journal behind, or `merge`
    // could not tell "ran, owned nothing" from "never ran".
    let mut writer = path.as_ref().map(|p| JournalWriter::append(p).expect("opening journal"));
    let (mut cells_run, mut cells_resumed) = (0usize, 0usize);
    for (si, spec) in specs.iter().enumerate() {
        // This spec's resumed records: skipped by the engine and (in
        // fold mode) preloaded into the reorder buffer so the fold
        // still sees one contiguous canonical stream.
        let mut preload: BTreeMap<usize, RunRecord> = BTreeMap::new();
        for index in 0..spec.cell_count() {
            if let Some(record) = resumed.remove(&(si, index)) {
                preload.insert(index, record);
            }
        }
        cells_resumed += preload.len();
        let skip: Vec<bool> = (0..spec.cell_count()).map(|i| preload.contains_key(&i)).collect();
        let grid = spec.fingerprint();
        let states = spec.states();
        let sink = Mutex::new(SinkState {
            writer: writer.take(),
            pending: if do_fold { preload } else { BTreeMap::new() },
            next: 0,
            ran: 0,
            fold: &mut *fold,
        });
        if do_fold {
            sink.lock().drain(si, spec);
        }
        run_cells(
            &states,
            &spec.alphas,
            &spec.ks,
            spec.scenario(),
            ctx.warm_start,
            shard,
            &|index| skip[index],
            &|cell, result| {
                let record = RunRecord::new(
                    spec.class(),
                    spec.n,
                    spec.alphas[cell.ai],
                    spec.ks[cell.ki],
                    cell.rep,
                    &result,
                );
                let mut s = sink.lock();
                s.ran += 1;
                if let Some(w) = s.writer.as_mut() {
                    w.push(&JournalEntry {
                        sweep: spec.label.clone(),
                        cell: cell.index,
                        grid,
                        record: record.clone(),
                    })
                    .expect("appending to the run journal");
                }
                if do_fold {
                    s.pending.insert(cell.index, record);
                    s.drain(si, spec);
                }
            },
            None,
        );
        let mut s = sink.into_inner();
        if do_fold {
            s.drain(si, spec);
            assert_eq!(
                s.next,
                spec.cell_count(),
                "sweep '{}' must fold every cell exactly once",
                spec.label
            );
        }
        cells_run += s.ran;
        writer = s.writer.take();
    }
    drop(writer);
    if let Some(path) = path.as_ref() {
        journal::compact(path, specs).expect("compacting the run journal");
    }
    ExecReport {
        folded: do_fold,
        cells_run,
        cells_resumed,
        journal: path,
        shard: (shard.count > 1).then_some((shard.index, shard.count)),
    }
}

fn merge(
    ctx: &SweepContext,
    experiment: &str,
    specs: &[SweepSpec],
    count: usize,
    fold: &mut (dyn FnMut(usize, CellId, &RunRecord) + Send),
) -> ExecReport {
    assert!(count >= 1, "merge needs at least one shard");
    let dir = ctx.journal_dir.as_ref().expect("merge mode requires a results directory");
    let mut entries: Vec<JournalEntry> = Vec::new();
    for index in 0..count {
        let path = journal::shard_journal_path(dir, experiment, index, count);
        assert!(
            path.is_file(),
            "missing shard journal {}; run `{experiment} --shards {count} --shard {index}` first",
            path.display()
        );
        entries.extend(journal::read(&path).expect("reading shard journal"));
    }
    // Canonical order: position in the plan, then cell index. The
    // position map is computed once — plans are small, but journals
    // can be 36 000 entries, so the sort key must not rescan specs.
    let positions: HashMap<&str, usize> =
        specs.iter().enumerate().map(|(i, s)| (s.label.as_str(), i)).collect();
    entries.retain(|e| positions.contains_key(e.sweep.as_str()));
    entries.sort_by_key(|e| (positions[e.sweep.as_str()], e.cell));
    entries.dedup_by(|a, b| a.sweep == b.sweep && a.cell == b.cell);
    // Completeness + validity, then fold in canonical order.
    let mut cursor = 0usize;
    for (si, spec) in specs.iter().enumerate() {
        for index in 0..spec.cell_count() {
            let entry = entries.get(cursor).unwrap_or_else(|| {
                panic!(
                    "shard journals are incomplete: sweep '{}' is missing cell {index} \
                     (did every shard finish?)",
                    spec.label
                )
            });
            assert!(
                entry.sweep == spec.label && entry.cell == index,
                "shard journals are incomplete: sweep '{}' is missing cell {index} \
                 (found '{}' cell {}; did every shard finish?)",
                spec.label,
                entry.sweep,
                entry.cell
            );
            let cell = spec.cell(index);
            validate_entry(spec, cell, entry);
            fold(si, cell, &entry.record);
            cursor += 1;
        }
    }
    assert_eq!(
        cursor,
        entries.len(),
        "shard journals contain {} entries beyond the current plan's grid \
         (stale cells from a different profile?); delete them and re-run the shards",
        entries.len() - cursor
    );
    let merged_path = journal::journal_path(dir, experiment);
    std::fs::create_dir_all(dir).expect("creating the results directory");
    std::fs::write(&merged_path, journal::render(&entries)).expect("writing the merged journal");
    ExecReport {
        folded: true,
        cells_run: 0,
        cells_resumed: entries.len(),
        journal: Some(merged_path),
        shard: None,
    }
}

/// An `α × k` grid of streaming [`Accumulator`]s — the fold-side
/// counterpart of the paper's per-cell `mean ± CI` tables. Pushing
/// `None` (a metric undefined for that run, e.g. the diameter of a
/// disconnected network) is a no-op, mirroring the old
/// `filter_map` + `Summary::of` pipelines.
#[derive(Debug, Clone)]
pub struct MetricGrid {
    cols: usize,
    accs: Vec<Accumulator>,
}

impl MetricGrid {
    /// A `rows × cols` grid of empty accumulators.
    pub fn new(rows: usize, cols: usize) -> Self {
        MetricGrid { cols, accs: vec![Accumulator::new(); rows * cols] }
    }

    /// Folds an observation into cell `(ri, ci)`; `None` is skipped.
    pub fn push(&mut self, ri: usize, ci: usize, value: Option<f64>) {
        if let Some(v) = value {
            self.accs[ri * self.cols + ci].push(v);
        }
    }

    /// The summary of cell `(ri, ci)`.
    pub fn summary(&self, ri: usize, ci: usize) -> Summary {
        self.accs[ri * self.cols + ci].summary()
    }

    /// `mean ± ci` of cell `(ri, ci)` at the given precision.
    pub fn display(&self, ri: usize, ci: usize, precision: usize) -> String {
        self.summary(ri, ci).display(precision)
    }
}
