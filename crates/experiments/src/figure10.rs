//! Figure 10: convergence time of the best-response dynamics —
//! rounds needed to reach a stable network, (left) as a function of
//! `α` at the headline tree size, and (right) as a function of `n` at
//! `α = 2`; one series per `k`. Random-tree workloads.
//!
//! Paper observations: convergence is fast (≤ 7 rounds in > 95% of
//! runs), best-response cycles are vanishingly rare (5 in ≈36 000
//! dynamics), and the round count grows slowly with `n`.

use ncg_core::Objective;

use crate::engine::{self, MetricGrid, SweepContext};
use crate::output::grid_table;
use crate::sweep::{RunRecord, SweepSpec};
use crate::{ExperimentOutput, Profile};

fn rounds_of(rec: &RunRecord) -> Option<f64> {
    rec.converged.then_some(rec.rounds as f64)
}

/// Runs the Figure 10 sweeps under the given profile (local mode).
pub fn run(profile: &Profile) -> ExperimentOutput {
    run_ctx(profile, &SweepContext::local())
}

/// Runs the Figure 10 sweeps under the given execution context.
pub fn run_ctx(profile: &Profile, ctx: &SweepContext) -> ExperimentOutput {
    let n_head = profile.headline_tree_n();
    let mut out = ExperimentOutput::new("figure10");
    // Left panel: rounds vs α at the headline n; right panel: rounds
    // vs n at α = 2, one sweep per tree size.
    let mut specs = vec![SweepSpec::tree(
        "vs_alpha",
        n_head,
        profile.reps,
        profile.base_seed,
        profile.alphas.clone(),
        profile.ks.clone(),
        Objective::Max,
    )];
    for &n in &profile.tree_ns {
        specs.push(SweepSpec::tree(
            format!("vs_n{n}"),
            n,
            profile.reps,
            profile.base_seed,
            vec![2.0],
            profile.ks.clone(),
            Objective::Max,
        ));
    }
    let mut left = MetricGrid::new(profile.alphas.len(), profile.ks.len());
    let mut by_n: Vec<MetricGrid> =
        profile.tree_ns.iter().map(|_| MetricGrid::new(1, profile.ks.len())).collect();
    let mut cycles = 0usize;
    let mut total = 0usize;
    let report = engine::execute(ctx, "figure10", &specs, &mut |si, cell, rec| {
        total += 1;
        cycles += rec.cycled() as usize;
        if si == 0 {
            left.push(cell.ai, cell.ki, rounds_of(rec));
        } else {
            by_n[si - 1].push(0, cell.ki, rounds_of(rec));
        }
    });
    if let Some(note) = report.shard_note("figure10") {
        out.notes = note;
        return out;
    }
    let row_labels: Vec<String> = profile.alphas.iter().map(|a| format!("{a}")).collect();
    let col_labels: Vec<String> = profile.ks.iter().map(|k| format!("k={k}")).collect();
    out.push_table(
        format!("rounds_vs_alpha_n{n_head}"),
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| left.display(ri, ci, 1)),
    );
    let n_labels: Vec<String> = profile.tree_ns.iter().map(|n| n.to_string()).collect();
    out.push_table(
        "rounds_vs_n_alpha2",
        grid_table("n", &n_labels, &col_labels, |ri, ci| by_n[ri].display(0, ci, 1)),
    );
    out.notes = format!(
        "Figure 10 — convergence rounds on random trees; profile: {} ({} reps). \
         Best-response cycles observed: {cycles} / {total} dynamics \
         (paper: 5 / ≈36 000).",
        profile.name, profile.reps
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep;
    use crate::workloads;
    use ncg_dynamics::Outcome;

    #[test]
    fn convergence_is_fast_on_trees() {
        // The paper's ≤7-rounds claim, scaled down.
        let reps = 4;
        let states = workloads::tree_states(30, reps, 17);
        let results = sweep(&states, &[0.5, 2.0, 10.0], &[2, 1000], Objective::Max, None);
        let mut converged = 0;
        for c in &results {
            if let Outcome::Converged { rounds } = c.result.outcome {
                converged += 1;
                assert!(rounds <= 12, "slow convergence: {rounds} rounds");
            }
        }
        assert!(
            converged * 10 >= results.len() * 9,
            "≥90% of runs should converge: {converged}/{}",
            results.len()
        );
    }

    #[test]
    fn output_has_two_panels_and_cycle_note() {
        let out = run(&Profile::smoke());
        assert_eq!(out.tables.len(), 2);
        assert!(out.notes.contains("cycles observed"));
    }
}
