//! Figure 10: convergence time of the best-response dynamics —
//! rounds needed to reach a stable network, (left) as a function of
//! `α` at the headline tree size, and (right) as a function of `n` at
//! `α = 2`; one series per `k`. Random-tree workloads.
//!
//! Paper observations: convergence is fast (≤ 7 rounds in > 95% of
//! runs), best-response cycles are vanishingly rare (5 in ≈36 000
//! dynamics), and the round count grows slowly with `n`.

use ncg_core::Objective;
use ncg_dynamics::Outcome;
use ncg_stats::Summary;

use crate::output::grid_table;
use crate::sweep::{by_cell, sweep, CellResult};
use crate::{workloads, ExperimentOutput, Profile};

fn rounds_of(cell: &CellResult) -> Option<f64> {
    match cell.result.outcome {
        Outcome::Converged { rounds } => Some(rounds as f64),
        _ => None,
    }
}

/// Runs the Figure 10 sweeps under the given profile.
pub fn run(profile: &Profile) -> ExperimentOutput {
    let n_head = profile.headline_tree_n();
    let mut out = ExperimentOutput::new("figure10");
    let mut cycles = 0usize;
    let mut total = 0usize;

    // Left panel: rounds vs α at the headline n.
    let states = workloads::tree_states(n_head, profile.reps, profile.base_seed);
    let results = sweep(&states, &profile.alphas, &profile.ks, Objective::Max, None);
    total += results.len();
    cycles += results.iter().filter(|c| matches!(c.result.outcome, Outcome::Cycled { .. })).count();
    let grouped = by_cell(&results, &profile.alphas, &profile.ks, profile.reps);
    let row_labels: Vec<String> = profile.alphas.iter().map(|a| format!("{a}")).collect();
    let col_labels: Vec<String> = profile.ks.iter().map(|k| format!("k={k}")).collect();
    let left = grid_table("alpha", &row_labels, &col_labels, |ri, ci| {
        let (_, cells) = grouped[ri * profile.ks.len() + ci];
        Summary::of(&cells.iter().filter_map(rounds_of).collect::<Vec<f64>>()).display(1)
    });
    out.push_table(format!("rounds_vs_alpha_n{n_head}"), left);

    // Right panel: rounds vs n at α = 2.
    let mut by_n: Vec<Vec<Summary>> = Vec::new();
    for &n in &profile.tree_ns {
        let states = workloads::tree_states(n, profile.reps, profile.base_seed);
        let results = sweep(&states, &[2.0], &profile.ks, Objective::Max, None);
        total += results.len();
        cycles +=
            results.iter().filter(|c| matches!(c.result.outcome, Outcome::Cycled { .. })).count();
        let grouped = by_cell(&results, &[2.0], &profile.ks, profile.reps);
        by_n.push(
            grouped
                .iter()
                .map(|(_, cells)| {
                    Summary::of(&cells.iter().filter_map(rounds_of).collect::<Vec<f64>>())
                })
                .collect(),
        );
    }
    let n_labels: Vec<String> = profile.tree_ns.iter().map(|n| n.to_string()).collect();
    let right = grid_table("n", &n_labels, &col_labels, |ri, ci| by_n[ri][ci].display(1));
    out.push_table("rounds_vs_n_alpha2", right);

    out.notes = format!(
        "Figure 10 — convergence rounds on random trees; profile: {} ({} reps). \
         Best-response cycles observed: {cycles} / {total} dynamics \
         (paper: 5 / ≈36 000).",
        profile.name, profile.reps
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_is_fast_on_trees() {
        // The paper's ≤7-rounds claim, scaled down.
        let reps = 4;
        let states = workloads::tree_states(30, reps, 17);
        let results = sweep(&states, &[0.5, 2.0, 10.0], &[2, 1000], Objective::Max, None);
        let mut converged = 0;
        for c in &results {
            if let Outcome::Converged { rounds } = c.result.outcome {
                converged += 1;
                assert!(rounds <= 12, "slow convergence: {rounds} rounds");
            }
        }
        assert!(
            converged * 10 >= results.len() * 9,
            "≥90% of runs should converge: {converged}/{}",
            results.len()
        );
    }

    #[test]
    fn output_has_two_panels_and_cycle_note() {
        let out = run(&Profile::smoke());
        assert_eq!(out.tables.len(), 2);
        assert!(out.notes.contains("cycles observed"));
    }
}
