//! Figure 8: maximum degree (left) and maximum number of bought edges
//! (right) of the stable networks, as a function of `α`, one series
//! per `k` — Erdős–Rényi workloads (paper: `n = 100, p = 0.1`).
//!
//! Paper shape: for `k ≥ 4` and small `α` the max degree exceeds 80
//! (hub formation) while no player ever buys more than ≈9 edges — the
//! asymmetry that motivates the fairness discussion of Figure 9.

use ncg_core::Objective;

use crate::engine::{self, MetricGrid, SweepContext};
use crate::output::grid_table;
use crate::sweep::SweepSpec;
use crate::{ExperimentOutput, Profile};

/// Runs the Figure 8 sweep under the given profile (local mode).
pub fn run(profile: &Profile) -> ExperimentOutput {
    run_ctx(profile, &SweepContext::local())
}

/// Runs the Figure 8 sweep under the given execution context.
pub fn run_ctx(profile: &Profile, ctx: &SweepContext) -> ExperimentOutput {
    let (n, p) = profile.headline_er();
    let mut out = ExperimentOutput::new("figure8");
    let specs = vec![SweepSpec::er(
        "main",
        n,
        p,
        profile.reps,
        profile.base_seed,
        profile.alphas.clone(),
        profile.ks.clone(),
        Objective::Max,
    )];
    let (rows, cols) = (profile.alphas.len(), profile.ks.len());
    let mut deg = MetricGrid::new(rows, cols);
    let mut bought = MetricGrid::new(rows, cols);
    let report = engine::execute(ctx, "figure8", &specs, &mut |_, cell, rec| {
        deg.push(cell.ai, cell.ki, Some(rec.max_degree as f64));
        bought.push(cell.ai, cell.ki, Some(rec.max_bought as f64));
    });
    if let Some(note) = report.shard_note("figure8") {
        out.notes = note;
        return out;
    }
    out.notes = format!(
        "Figure 8 — max degree / max bought edges vs α on G({n}, {p}); profile: {} ({} reps)",
        profile.name, profile.reps
    );
    let row_labels: Vec<String> = profile.alphas.iter().map(|a| format!("{a}")).collect();
    let col_labels: Vec<String> = profile.ks.iter().map(|k| format!("k={k}")).collect();
    out.push_table(
        "max_degree",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| deg.display(ri, ci, 1)),
    );
    out.push_table(
        "max_bought",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| bought.display(ri, ci, 1)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep;
    use crate::workloads;

    #[test]
    fn hubs_form_under_cheap_edges_with_wide_views() {
        let reps = 3;
        let states = workloads::er_states(30, 0.15, reps, 11);
        let results = sweep(&states, &[0.1], &[1000], Objective::Max, None);
        for c in &results {
            // With α = 0.1 and full knowledge the equilibrium is
            // near-star-like: some node has high degree, yet no single
            // player buys anywhere near n edges herself... but the
            // *degree* of the hub (incoming purchases) is large.
            assert!(
                c.result.final_metrics.max_degree >= 15,
                "expected hub formation, max_degree = {}",
                c.result.final_metrics.max_degree
            );
        }
    }

    #[test]
    fn bought_edges_bounded_by_degree() {
        let out_states = workloads::er_states(24, 0.2, 2, 3);
        let results = sweep(&out_states, &[0.5, 5.0], &[2, 1000], Objective::Max, None);
        for c in &results {
            assert!(c.result.final_metrics.max_bought <= c.result.final_metrics.max_degree);
        }
    }

    #[test]
    fn output_has_two_panels() {
        let out = run(&Profile::smoke());
        assert_eq!(out.tables.len(), 2);
    }
}
