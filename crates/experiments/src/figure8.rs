//! Figure 8: maximum degree (left) and maximum number of bought edges
//! (right) of the stable networks, as a function of `α`, one series
//! per `k` — Erdős–Rényi workloads (paper: `n = 100, p = 0.1`).
//!
//! Paper shape: for `k ≥ 4` and small `α` the max degree exceeds 80
//! (hub formation) while no player ever buys more than ≈9 edges — the
//! asymmetry that motivates the fairness discussion of Figure 9.

use ncg_core::Objective;
use ncg_stats::Summary;

use crate::output::grid_table;
use crate::sweep::{by_cell, sweep, CellResult};
use crate::{workloads, ExperimentOutput, Profile};

/// Runs the Figure 8 sweep under the given profile.
pub fn run(profile: &Profile) -> ExperimentOutput {
    let (n, p) = profile.headline_er();
    let mut out = ExperimentOutput::new("figure8");
    out.notes = format!(
        "Figure 8 — max degree / max bought edges vs α on G({n}, {p}); profile: {} ({} reps)",
        profile.name, profile.reps
    );
    let states = workloads::er_states(n, p, profile.reps, profile.base_seed);
    let results = sweep(&states, &profile.alphas, &profile.ks, Objective::Max, None);
    let grouped = by_cell(&results, &profile.alphas, &profile.ks, profile.reps);
    let row_labels: Vec<String> = profile.alphas.iter().map(|a| format!("{a}")).collect();
    let col_labels: Vec<String> = profile.ks.iter().map(|k| format!("k={k}")).collect();
    let summarise = |ri: usize, ci: usize, f: &dyn Fn(&CellResult) -> f64| {
        let (_, cells) = grouped[ri * profile.ks.len() + ci];
        Summary::of(&cells.iter().map(f).collect::<Vec<f64>>()).display(1)
    };
    let deg = grid_table("alpha", &row_labels, &col_labels, |ri, ci| {
        summarise(ri, ci, &|c| c.result.final_metrics.max_degree as f64)
    });
    let bought = grid_table("alpha", &row_labels, &col_labels, |ri, ci| {
        summarise(ri, ci, &|c| c.result.final_metrics.max_bought as f64)
    });
    out.push_table("max_degree", deg);
    out.push_table("max_bought", bought);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hubs_form_under_cheap_edges_with_wide_views() {
        let reps = 3;
        let states = workloads::er_states(30, 0.15, reps, 11);
        let results = sweep(&states, &[0.1], &[1000], Objective::Max, None);
        for c in &results {
            // With α = 0.1 and full knowledge the equilibrium is
            // near-star-like: some node has high degree, yet no single
            // player buys anywhere near n edges herself... but the
            // *degree* of the hub (incoming purchases) is large.
            assert!(
                c.result.final_metrics.max_degree >= 15,
                "expected hub formation, max_degree = {}",
                c.result.final_metrics.max_degree
            );
        }
    }

    #[test]
    fn bought_edges_bounded_by_degree() {
        let out_states = workloads::er_states(24, 0.2, 2, 3);
        let results = sweep(&out_states, &[0.5, 5.0], &[2, 1000], Objective::Max, None);
        for c in &results {
            assert!(c.result.final_metrics.max_bought <= c.result.final_metrics.max_degree);
        }
    }

    #[test]
    fn output_has_two_panels() {
        let out = run(&Profile::smoke());
        assert_eq!(out.tables.len(), 2);
    }
}
