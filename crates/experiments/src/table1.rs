//! Table I: statistics of the random-tree workloads.
//!
//! Paper rows: for each `n ∈ {20, 30, 50, 70, 100, 200}`, the mean ±
//! 95% CI over 20 trees of the diameter, the maximum degree, and the
//! maximum number of bought edges (ownership assigned by fair coin).

use ncg_graph::metrics;
use ncg_stats::{Summary, Table};

use crate::{workloads, ExperimentOutput, Profile};

/// Runs the Table I measurement under the given profile.
pub fn run(profile: &Profile) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("table1");
    out.notes = format!(
        "Table I — random tree statistics; profile: {} ({} trees per n)",
        profile.name, profile.reps
    );
    let mut table = Table::new(["n", "Diameter", "Max. degree", "Max. bought edges"]);
    for &n in &profile.tree_ns {
        let states = workloads::tree_states(n, profile.reps, profile.base_seed);
        let diameters: Vec<f64> = states
            .iter()
            .map(|s| metrics::diameter(s.graph()).expect("trees are connected") as f64)
            .collect();
        let max_degrees: Vec<f64> = states.iter().map(|s| s.graph().max_degree() as f64).collect();
        let max_bought: Vec<f64> = states.iter().map(|s| s.max_bought() as f64).collect();
        table.push_row([
            n.to_string(),
            Summary::of(&diameters).display(2),
            Summary::of(&max_degrees).display(2),
            Summary::of(&max_bought).display(2),
        ]);
    }
    out.push_table("random_trees", table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_tree_size() {
        let profile = Profile::smoke();
        let out = run(&profile);
        assert_eq!(out.tables.len(), 1);
        assert_eq!(out.tables[0].1.len(), profile.tree_ns.len());
    }

    #[test]
    fn diameters_grow_with_n_as_in_the_paper() {
        // Table I trend: expected diameter of a uniform random tree
        // grows like √n — bigger trees must have bigger mean diameter.
        let profile = Profile { reps: 10, tree_ns: vec![20, 200], ..Profile::smoke() };
        let d = |n: usize| {
            let states = workloads::tree_states(n, profile.reps, profile.base_seed);
            let v: Vec<f64> =
                states.iter().map(|s| metrics::diameter(s.graph()).unwrap() as f64).collect();
            Summary::of(&v).mean
        };
        assert!(d(200) > 1.8 * d(20), "diameter must grow markedly with n");
    }
}
