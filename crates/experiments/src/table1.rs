//! Table I: statistics of the random-tree workloads.
//!
//! Paper rows: for each `n ∈ {20, 30, 50, 70, 100, 200}`, the mean ±
//! 95% CI over 20 trees of the diameter, the maximum degree, and the
//! maximum number of bought edges (ownership assigned by fair coin).

use ncg_graph::metrics;
use ncg_stats::{Accumulator, Table};

use crate::{workloads, ExperimentOutput, Profile};

/// Runs the Table I measurement under the given profile. Statistics
/// are folded through streaming [`Accumulator`]s — one pass over the
/// workload states, no sample vectors.
pub fn run(profile: &Profile) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("table1");
    out.notes = format!(
        "Table I — random tree statistics; profile: {} ({} trees per n)",
        profile.name, profile.reps
    );
    let mut table = Table::new(["n", "Diameter", "Max. degree", "Max. bought edges"]);
    for &n in &profile.tree_ns {
        let mut diameter = Accumulator::new();
        let mut max_degree = Accumulator::new();
        let mut max_bought = Accumulator::new();
        for s in workloads::tree_states(n, profile.reps, profile.base_seed) {
            diameter.push(metrics::diameter(s.graph()).expect("trees are connected") as f64);
            max_degree.push(s.graph().max_degree() as f64);
            max_bought.push(s.max_bought() as f64);
        }
        table.push_row([
            n.to_string(),
            diameter.summary().display(2),
            max_degree.summary().display(2),
            max_bought.summary().display(2),
        ]);
    }
    out.push_table("random_trees", table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_tree_size() {
        let profile = Profile::smoke();
        let out = run(&profile);
        assert_eq!(out.tables.len(), 1);
        assert_eq!(out.tables[0].1.len(), profile.tree_ns.len());
    }

    #[test]
    fn diameters_grow_with_n_as_in_the_paper() {
        // Table I trend: expected diameter of a uniform random tree
        // grows like √n — bigger trees must have bigger mean diameter.
        let profile = Profile { reps: 10, tree_ns: vec![20, 200], ..Profile::smoke() };
        let d = |n: usize| {
            let states = workloads::tree_states(n, profile.reps, profile.base_seed);
            let mut acc = Accumulator::new();
            for s in &states {
                acc.push(metrics::diameter(s.graph()).unwrap() as f64);
            }
            acc.summary().mean
        };
        assert!(d(200) > 1.8 * d(20), "diameter must grow markedly with n");
    }
}
