//! Figures 1 and 2: the stretched toroidal grid constructions,
//! re-built with the paper's exact illustration parameters, verified
//! and exported as Graphviz DOT.
//!
//! * Figure 1: `d = 2`, `δ = (15, 5)`, `ℓ = 2` — the wide torus whose
//!   red-highlighted view shows a player unaware of the wrap-around.
//! * Figure 2: `d = 2`, `δ = (3, 4)`, `ℓ = 2` — the small example
//!   with the gray view of the intersection vertex `(k*, k*)`.

use ncg_constructions::TorusGrid;
use ncg_graph::dot::{to_dot, DotOptions};
use ncg_graph::metrics;
use ncg_stats::Table;

use crate::{ExperimentOutput, Profile};

fn describe(
    name: &str,
    deltas: &[u32],
    ell: u32,
    k: u32,
    table: &mut Table,
    out: &mut ExperimentOutput,
) {
    let t = TorusGrid::closed(deltas, ell).expect("paper parameters are valid");
    let g = t.state().graph();
    let diam = metrics::diameter(g).expect("torus is connected");
    table.push_row([
        name.to_string(),
        format!("{deltas:?}"),
        ell.to_string(),
        t.n().to_string(),
        t.intersections.to_string(),
        g.edge_count().to_string(),
        diam.to_string(),
        t.diameter_lower_bound().to_string(),
    ]);
    // DOT artifact with the radius-k view of an intersection vertex
    // highlighted, as in the paper's figures.
    let center = 0u32;
    let view = ncg_graph::view::ball(g, center, k);
    let labels = (0..t.n() as u32)
        .filter(|&id| t.is_intersection(id))
        .map(|id| (id, format!("{:?}", t.coords[id as usize])))
        .collect();
    let dot =
        to_dot(g, &DotOptions { name: name.replace(['-', ' '], "_"), labels, highlight: view });
    out.push_artifact(format!("{name}.dot"), dot);
}

/// Builds both figures' constructions; profile only tags the notes.
pub fn run(profile: &Profile) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("figures12");
    out.notes = format!(
        "Figures 1–2 — torus construction geometry (views of radius k = 4 highlighted \
         in the DOT artifacts); profile: {}",
        profile.name
    );
    let mut table = Table::new([
        "figure",
        "deltas",
        "ell",
        "n",
        "intersections",
        "edges",
        "diameter",
        "diam LB (ℓ·δ_d)",
    ]);
    describe("figure1", &[15, 5], 2, 4, &mut table, &mut out);
    describe("figure2", &[3, 4], 2, 4, &mut table, &mut out);
    out.push_table("geometry", table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_paper_figures() {
        let out = run(&Profile::smoke());
        assert_eq!(out.tables[0].1.len(), 2);
        assert_eq!(out.artifacts.len(), 2);
        assert!(out.artifacts[0].0.ends_with(".dot"));
        assert!(out.artifacts[0].1.starts_with("graph"));
    }

    #[test]
    fn figure1_has_450_vertices() {
        // N = 2·15·5 = 150 intersections; n = N·(1 + 2·1) = 450.
        let t = TorusGrid::closed(&[15, 5], 2).unwrap();
        assert_eq!(t.intersections, 150);
        assert_eq!(t.n(), 450);
    }

    #[test]
    fn figure2_diameter_at_least_8() {
        // Corollary 3.4: ℓ·δ₂ = 8.
        let t = TorusGrid::closed(&[3, 4], 2).unwrap();
        let d = metrics::diameter(t.state().graph()).unwrap();
        assert!(d >= 8);
    }
}
