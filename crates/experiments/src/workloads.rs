//! Workload generation: seeded initial states for the two input
//! classes of Section 5.2.
//!
//! Each repetition gets its own deterministic seed derived from the
//! profile's base seed via SplitMix64, so any single run can be
//! reproduced in isolation (no dependence on the sweep order). The
//! same `reps` starting networks are reused across every `(α, k)`
//! cell, exactly as the paper does.

use ncg_core::GameState;
use ncg_dynamics::scale::ScaleState;
use ncg_graph::generators;
use ncg_graph::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// SplitMix64 — tiny, well-mixed seed derivation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Derives the seed for one workload instance.
pub fn instance_seed(base: u64, class_tag: u64, n: usize, rep: usize) -> u64 {
    splitmix64(
        base ^ splitmix64(class_tag) ^ splitmix64(n as u64) ^ splitmix64(rep as u64 | 1 << 32),
    )
}

/// `reps` uniform random trees on `n` nodes with coin-toss edge
/// ownership (Table I inputs).
pub fn tree_states(n: usize, reps: usize, base_seed: u64) -> Vec<GameState> {
    (0..reps)
        .map(|rep| {
            let mut rng = ChaCha8Rng::seed_from_u64(instance_seed(base_seed, 0x0072_6565, n, rep));
            let tree = generators::random_tree(n, &mut rng);
            GameState::from_graph_random_ownership(&tree, &mut rng)
        })
        .collect()
}

/// `reps` connected `G(n, p)` samples with coin-toss ownership
/// (Table II inputs). Unconnected samples are discarded and
/// regenerated, as in the paper.
pub fn er_states(n: usize, p: f64, reps: usize, base_seed: u64) -> Vec<GameState> {
    (0..reps)
        .map(|rep| {
            let mut rng =
                ChaCha8Rng::seed_from_u64(instance_seed(base_seed, 0x6572 ^ p.to_bits(), n, rep));
            let g = generators::gnp_connected(n, p, 10_000, &mut rng)
                .expect("G(n,p) parameters must be above the connectivity threshold");
            GameState::from_graph_random_ownership(&g, &mut rng)
        })
        .collect()
}

/// `reps` flat `G(n, p)` samples with coin-toss ownership for the
/// million-node scale tier, built straight from the edge stream
/// ([`generators::gnp_edges`] → [`ScaleState::from_owned_edges`])
/// without ever materialising a `Graph` or `GameState`. `p` is chosen
/// as `avg_deg / (n - 1)` so the expected degree is `avg_deg`.
///
/// Unlike [`er_states`] there is no connectivity conditioning: at
/// average degree 10 a million-node sample sits *below* the
/// `ln n ≈ 13.8` connectivity threshold, and the locality-based game
/// is well-defined on disconnected inputs anyway (usage is computed on
/// the radius-`k` view, and an isolated player simply stands pat).
pub fn scale_er_states(n: usize, avg_deg: f64, reps: usize, base_seed: u64) -> Vec<ScaleState> {
    let p = if n > 1 { (avg_deg / (n - 1) as f64).min(1.0) } else { 0.0 };
    (0..reps)
        .map(|rep| {
            let mut rng = ChaCha8Rng::seed_from_u64(instance_seed(
                base_seed,
                0x7363_616c ^ avg_deg.to_bits(),
                n,
                rep,
            ));
            let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
            generators::gnp_edges(n, p, &mut rng, &mut edges)
                .expect("p derived from avg_deg is always in [0, 1]");
            // Coin-toss ownership in generation order — the same
            // discipline as `GameState::from_graph_random_ownership`.
            let owned: Vec<(NodeId, NodeId)> = edges
                .into_iter()
                .map(|(u, v)| if rng.random::<bool>() { (u, v) } else { (v, u) })
                .collect();
            ScaleState::from_owned_edges(n, &owned)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_graph::metrics;

    #[test]
    fn tree_states_are_valid_trees() {
        let states = tree_states(30, 4, 42);
        assert_eq!(states.len(), 4);
        for s in &states {
            assert_eq!(s.n(), 30);
            assert_eq!(s.graph().edge_count(), 29);
            assert!(metrics::is_connected(s.graph()));
            assert!(s.validate().is_ok());
            assert_eq!(s.total_bought(), 29, "every edge owned exactly once");
        }
    }

    #[test]
    fn er_states_are_connected() {
        let states = er_states(40, 0.15, 3, 42);
        for s in &states {
            assert!(metrics::is_connected(s.graph()));
            assert!(s.validate().is_ok());
        }
    }

    #[test]
    fn workloads_are_reproducible_and_distinct() {
        let a = tree_states(25, 3, 7);
        let b = tree_states(25, 3, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
        assert_ne!(a[0], a[1], "different reps must differ");
        let c = tree_states(25, 3, 8);
        assert_ne!(a[0], c[0], "different base seeds must differ");
    }

    #[test]
    fn scale_er_states_are_valid_and_reproducible() {
        let a = scale_er_states(60, 6.0, 2, 42);
        let b = scale_er_states(60, 6.0, 2, 42);
        assert_eq!(a, b, "same seed must reproduce the same states");
        assert_ne!(a[0], a[1], "different reps must differ");
        for s in &a {
            assert_eq!(s.n(), 60);
            assert!(s.validate().is_ok());
            assert!(s.total_bought() > 0, "G(60, 6/(n-1)) is essentially never edgeless");
        }
        let other_deg = scale_er_states(60, 3.0, 1, 42);
        assert_ne!(a[0], other_deg[0], "avg_deg is part of the instance seed");
    }

    #[test]
    fn seed_derivation_separates_classes_and_sizes() {
        let s1 = instance_seed(1, 2, 10, 0);
        assert_ne!(s1, instance_seed(1, 3, 10, 0));
        assert_ne!(s1, instance_seed(1, 2, 11, 0));
        assert_ne!(s1, instance_seed(1, 2, 10, 1));
        assert_ne!(s1, instance_seed(2, 2, 10, 0));
    }
}
