//! Figure 7: quality of the stable networks as a function of `k` at
//! `α = 2`, one series per `n` (random trees, left panel) and for the
//! densest Erdős–Rényi row (right panel), against the theoretical
//! trend `f(k) ∝ k / 2^{¼·log₂²(k/α)}` of Theorem 3.18.
//!
//! The trend column is normalised so that its value at the smallest
//! plotted `k` matches the measured mean there — the same
//! eye-guideline role the bold red curve plays in the paper.

use ncg_core::Objective;

use crate::engine::{self, MetricGrid, SweepContext};
use crate::output::grid_table;
use crate::sweep::SweepSpec;
use crate::{ExperimentOutput, Profile};

/// The `α` the figure fixes.
pub const ALPHA: f64 = 2.0;

/// Runs the Figure 7 sweep under the given profile (local mode).
pub fn run(profile: &Profile) -> ExperimentOutput {
    run_ctx(profile, &SweepContext::local())
}

/// Runs the Figure 7 sweep under the given execution context.
pub fn run_ctx(profile: &Profile, ctx: &SweepContext) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("figure7");
    // Restrict to finite k (the trend is about the local regime).
    let ks: Vec<u32> = profile.ks.iter().copied().filter(|&k| k <= 30).collect();
    let (er_n, er_p) = profile.headline_er();
    let mut specs: Vec<SweepSpec> = profile
        .tree_ns
        .iter()
        .map(|&n| {
            SweepSpec::tree(
                format!("tree_n{n}"),
                n,
                profile.reps,
                profile.base_seed,
                vec![ALPHA],
                ks.clone(),
                Objective::Max,
            )
        })
        .collect();
    specs.push(SweepSpec::er(
        "er",
        er_n,
        er_p,
        profile.reps,
        profile.base_seed,
        vec![ALPHA],
        ks.clone(),
        Objective::Max,
    ));
    let mut quality: Vec<MetricGrid> = specs.iter().map(|_| MetricGrid::new(1, ks.len())).collect();
    let report = engine::execute(ctx, "figure7", &specs, &mut |si, cell, rec| {
        quality[si].push(0, cell.ki, rec.quality);
    });
    if let Some(note) = report.shard_note("figure7") {
        out.notes = note;
        return out;
    }
    out.notes = format!(
        "Figure 7 — equilibrium quality vs k at α = {ALPHA}; trend f(k) = k/2^(log₂²k) \
         normalised at k = {}; profile: {} ({} reps)",
        ks.first().copied().unwrap_or(2),
        profile.name,
        profile.reps
    );
    let row_labels: Vec<String> = ks.iter().map(|k| k.to_string()).collect();
    let tree_count = profile.tree_ns.len();

    // Left panel: trees, one column per n, plus the theory trend
    // normalised to the first k of the largest n series.
    let anchor = if tree_count > 0 { quality[tree_count - 1].summary(0, 0).mean } else { 1.0 };
    let trend0 = ncg_bounds::fig7_trend(ks[0]).max(f64::MIN_POSITIVE);
    let mut col_labels: Vec<String> = profile.tree_ns.iter().map(|n| format!("n={n}")).collect();
    col_labels.push("trend f(k)".into());
    let trees = grid_table("k", &row_labels, &col_labels, |ri, ci| {
        if ci < tree_count {
            quality[ci].display(0, ri, 2)
        } else {
            format!("{:.2}", anchor * ncg_bounds::fig7_trend(ks[ri]) / trend0)
        }
    });
    out.push_table("trees", trees);

    // Right panel: the headline ER row.
    let er = grid_table("k", &row_labels, &[format!("n={er_n}, p={er_p}")], |ri, _| {
        quality[tree_count].display(0, ri, 2)
    });
    out.push_table("er", er);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{by_cell, sweep};
    use crate::workloads;

    #[test]
    fn tables_have_trend_column_and_k_rows() {
        let out = run(&Profile::smoke());
        assert_eq!(out.tables.len(), 2);
        let csv = out.tables[0].1.render(ncg_stats::TableStyle::Csv);
        assert!(csv.contains("trend f(k)"));
    }

    #[test]
    fn quality_improves_for_large_k() {
        // The headline qualitative claim: moving from k = 2 to full
        // knowledge improves (or at least never hurts) quality at α=2.
        let profile = Profile { reps: 4, ..Profile::smoke() };
        let n = 32;
        let states = workloads::tree_states(n, profile.reps, profile.base_seed);
        let results = sweep(&states, &[ALPHA], &[2, 1000], Objective::Max, None);
        let grouped = by_cell(&results, &[ALPHA], &[2, 1000], profile.reps);
        let mean_q = |i: usize| {
            let (_, cells) = grouped[i];
            let v: Vec<f64> = cells.iter().filter_map(|c| c.result.final_metrics.quality).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean_q(1) <= mean_q(0) + 0.2,
            "full knowledge should not be materially worse: k=2 → {}, k=1000 → {}",
            mean_q(0),
            mean_q(1)
        );
    }
}
