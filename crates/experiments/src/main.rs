//! CLI for the experiment harness.
//!
//! ```text
//! NCG_THREADS=N ncg-experiments <experiment> [--full] [--paper] [--out DIR] [--seed N]
//!                              [--reps N] [--shards M --shard I] [--cold]
//! ncg-experiments merge <experiment> --shards M [--out DIR] [profile flags]
//!
//! experiments: table1 table2 figures12 figure3 figure4 figure5
//!              figure6 figure7 figure8 figure9 figure10
//!              lower-bounds sum-extension swap-ncg nonuniform all
//! --full/--paper   use the paper's exact grid instead of the quick
//!                  profile (with the paper's 20 repetitions this can
//!                  take hours; combine with --reps to trade CI width
//!                  for time)
//! --out DIR        results directory (default: results/)
//! --seed N         override the base seed
//! --reps N         override the repetition count of the profile
//! --shards M       split the sweep grid into M deterministic shards
//!                  (partitioned by repetition)
//! --shard I        run only shard I (0-based); tables are rendered
//!                  by `merge` once every shard has finished
//! --cold           disable per-repetition warm starts (A/B runs;
//!                  results are bit-identical either way)
//!
//! Dynamics sweeps stream every finished cell to an append-only
//! JSONL journal under --out; re-running after a kill resumes from
//! the journal. `merge` folds the M shard journals into the same
//! tables and canonical JSONL a single-process run produces,
//! byte-for-byte.
//!
//! NCG_THREADS=N caps the worker pool for everything the harness
//! parallelises — sweep repetitions, the fanned-out LKE
//! certifications, and the exact solver's frontier split. Every
//! artifact is byte-identical for every N (the parallel
//! branch-and-bound is deterministic by construction, DESIGN.md §8);
//! the CI `determinism` job runs this binary at N = 1 and N = 4 and
//! diffs the outputs.
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ncg_experiments::{
    figure10, figure3, figure4, figure5, figure6, figure7, figure8, figure9, figures12,
    lower_bounds, nonuniform, sum_extension, swap_ncg, table1, table2, ExperimentOutput, Profile,
    SweepContext, SweepMode,
};

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "figures12",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "lower-bounds",
    "sum-extension",
    "swap-ncg",
    "nonuniform",
];

/// The experiments that run `(α, k, rep)` dynamics sweeps and hence
/// understand sharding, journaling, and merging. The rest are cheap
/// deterministic computations that every mode just runs locally.
const SWEEP_EXPERIMENTS: &[&str] = &[
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "sum-extension",
    "swap-ncg",
    "nonuniform",
];

fn run_one(name: &str, profile: &Profile, ctx: &SweepContext) -> Option<ExperimentOutput> {
    let out = match name {
        "table1" => table1::run(profile),
        "table2" => table2::run(profile),
        "figures12" => figures12::run(profile),
        "figure3" => figure3::run(profile),
        "figure4" => figure4::run(profile),
        "figure5" => figure5::run_ctx(profile, ctx),
        "figure6" => figure6::run_ctx(profile, ctx),
        "figure7" => figure7::run_ctx(profile, ctx),
        "figure8" => figure8::run_ctx(profile, ctx),
        "figure9" => figure9::run_ctx(profile, ctx),
        "figure10" => figure10::run_ctx(profile, ctx),
        "lower-bounds" => lower_bounds::run(profile),
        "sum-extension" => sum_extension::run_ctx(profile, ctx),
        "swap-ncg" => swap_ncg::run_ctx(profile, ctx),
        "nonuniform" => nonuniform::run_ctx(profile, ctx),
        _ => return None,
    };
    Some(out)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ncg-experiments <experiment|all> [--full|--paper] [--out DIR] [--seed N] \
         [--reps N] [--shards M --shard I] [--cold]\n\
         \u{20}      ncg-experiments merge <experiment|all> --shards M [--out DIR] [profile flags]\n\
         experiments: {}",
        EXPERIMENTS.join(" ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    // NCG_THREADS caps the worker pool for the whole process; unset
    // (or unparsable) means one worker per core. The scoped install
    // covers sweep repetitions, parallel LKE certification, and the
    // solver's frontier fan-out alike — and output bytes are
    // independent of the value (the CI determinism job enforces it).
    match std::env::var("NCG_THREADS").ok().map(|v| v.parse::<usize>()) {
        Some(Ok(threads)) if threads >= 1 => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool construction is infallible");
            pool.install(run)
        }
        Some(_) => {
            eprintln!("[ncg-experiments] NCG_THREADS must be a positive integer");
            ExitCode::FAILURE
        }
        None => run(),
    }
}

fn run() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positionals: Vec<String> = Vec::new();
    let mut profile = Profile::quick();
    let mut out_dir = PathBuf::from("results");
    let mut seed_override: Option<u64> = None;
    let mut reps_override: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut shard: Option<usize> = None;
    let mut warm_start = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" | "--paper" => profile = Profile::paper(),
            "--smoke" => profile = Profile::smoke(),
            "--cold" => warm_start = false,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out_dir = PathBuf::from(dir),
                    None => return usage(),
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(seed) => seed_override = Some(seed),
                    None => return usage(),
                }
            }
            "--reps" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(reps) if reps > 0 => reps_override = Some(reps),
                    _ => return usage(),
                }
            }
            "--shards" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(m) if m > 0 => shards = Some(m),
                    _ => return usage(),
                }
            }
            "--shard" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(idx) => shard = Some(idx),
                    None => return usage(),
                }
            }
            name if !name.starts_with('-') => positionals.push(name.to_string()),
            _ => return usage(),
        }
        i += 1;
    }
    // Apply overrides last so flag order does not matter.
    if let Some(seed) = seed_override {
        profile.base_seed = seed;
    }
    if let Some(reps) = reps_override {
        profile.reps = reps;
    }
    // Positionals: either `<experiment>` or `merge <experiment>`.
    let (merging, target) = match positionals.as_slice() {
        [target] if target != "merge" => (false, target.clone()),
        [merge, target] if merge == "merge" => (true, target.clone()),
        _ => return usage(),
    };
    let mode = match (merging, shards, shard) {
        (true, Some(count), None) => SweepMode::Merge { count },
        (true, _, _) => {
            eprintln!("merge requires --shards M (and no --shard)");
            return usage();
        }
        (false, Some(count), Some(index)) if index < count => SweepMode::Shard { count, index },
        (false, None, None) => SweepMode::Local,
        _ => {
            eprintln!("--shards M and --shard I (with I < M) must be given together");
            return usage();
        }
    };
    let ctx = SweepContext { mode, journal_dir: Some(out_dir.clone()), warm_start };
    let names: Vec<&str> = if target == "all" {
        EXPERIMENTS.to_vec()
    } else if EXPERIMENTS.contains(&target.as_str()) {
        vec![target.as_str()]
    } else {
        return usage();
    };
    for name in names {
        let is_sweep = SWEEP_EXPERIMENTS.contains(&name);
        // Non-sweep experiments are cheap and deterministic: shard 0
        // and merge produce them; other shards skip them.
        if !is_sweep {
            if let SweepMode::Shard { index, .. } = mode {
                if index != 0 {
                    eprintln!("[ncg-experiments] {name} has no sweep; left to shard 0");
                    continue;
                }
            }
        }
        let verb = match mode {
            SweepMode::Merge { .. } if is_sweep => "merging",
            SweepMode::Shard { index, count } if is_sweep => {
                eprintln!(
                    "[ncg-experiments] running {name} shard {index} of {count} \
                     with the '{}' profile…",
                    profile.name
                );
                ""
            }
            _ => "running",
        };
        if !verb.is_empty() {
            eprintln!("[ncg-experiments] {verb} {name} with the '{}' profile…", profile.name);
        }
        let started = std::time::Instant::now();
        let output = run_one(name, &profile, &ctx).expect("name validated above");
        println!("{}", output.render_console());
        match output.write_to(&out_dir) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("[ncg-experiments]   wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("[ncg-experiments] failed to write results: {e}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("[ncg-experiments] {name} finished in {:.1}s", started.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
