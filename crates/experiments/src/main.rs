//! CLI for the experiment harness.
//!
//! ```text
//! ncg-experiments <experiment> [--full] [--paper] [--out DIR] [--seed N] [--reps N]
//!
//! experiments: table1 table2 figures12 figure3 figure4 figure5
//!              figure6 figure7 figure8 figure9 figure10
//!              lower-bounds sum-extension all
//! --full/--paper   use the paper's exact grid instead of the quick
//!                  profile (with the paper's 20 repetitions this can
//!                  take hours; combine with --reps to trade CI width
//!                  for time)
//! --out DIR        results directory (default: results/)
//! --seed N         override the base seed
//! --reps N         override the repetition count of the profile
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ncg_experiments::{
    figure10, figure3, figure4, figure5, figure6, figure7, figure8, figure9, figures12,
    lower_bounds, sum_extension, table1, table2, ExperimentOutput, Profile,
};

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "figures12",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "lower-bounds",
    "sum-extension",
];

fn run_one(name: &str, profile: &Profile) -> Option<ExperimentOutput> {
    let out = match name {
        "table1" => table1::run(profile),
        "table2" => table2::run(profile),
        "figures12" => figures12::run(profile),
        "figure3" => figure3::run(profile),
        "figure4" => figure4::run(profile),
        "figure5" => figure5::run(profile),
        "figure6" => figure6::run(profile),
        "figure7" => figure7::run(profile),
        "figure8" => figure8::run(profile),
        "figure9" => figure9::run(profile),
        "figure10" => figure10::run(profile),
        "lower-bounds" => lower_bounds::run(profile),
        "sum-extension" => sum_extension::run(profile),
        _ => return None,
    };
    Some(out)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ncg-experiments <experiment|all> [--full|--paper] [--out DIR] [--seed N]\n\
         experiments: {}",
        EXPERIMENTS.join(" ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target: Option<String> = None;
    let mut profile = Profile::quick();
    let mut out_dir = PathBuf::from("results");
    let mut seed_override: Option<u64> = None;
    let mut reps_override: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" | "--paper" => profile = Profile::paper(),
            "--smoke" => profile = Profile::smoke(),
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out_dir = PathBuf::from(dir),
                    None => return usage(),
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(seed) => seed_override = Some(seed),
                    None => return usage(),
                }
            }
            "--reps" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(reps) if reps > 0 => reps_override = Some(reps),
                    _ => return usage(),
                }
            }
            name if !name.starts_with('-') && target.is_none() => {
                target = Some(name.to_string());
            }
            _ => return usage(),
        }
        i += 1;
    }
    // Apply overrides last so flag order does not matter.
    if let Some(seed) = seed_override {
        profile.base_seed = seed;
    }
    if let Some(reps) = reps_override {
        profile.reps = reps;
    }
    let Some(target) = target else { return usage() };
    let names: Vec<&str> = if target == "all" {
        EXPERIMENTS.to_vec()
    } else if EXPERIMENTS.contains(&target.as_str()) {
        vec![target.as_str()]
    } else {
        return usage();
    };
    for name in names {
        eprintln!("[ncg-experiments] running {name} with the '{}' profile…", profile.name);
        let started = std::time::Instant::now();
        let output = run_one(name, &profile).expect("name validated above");
        println!("{}", output.render_console());
        match output.write_to(&out_dir) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("[ncg-experiments]   wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("[ncg-experiments] failed to write results: {e}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("[ncg-experiments] {name} finished in {:.1}s", started.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
