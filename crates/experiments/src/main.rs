//! CLI for the experiment harness.
//!
//! ```text
//! NCG_THREADS=N ncg-experiments <experiment> [--full] [--paper] [--out DIR] [--seed N]
//!                              [--reps N] [--shards M --shard I] [--cold]
//! ncg-experiments merge <experiment> --shards M [--out DIR] [profile flags]
//! ncg-experiments serve <experiment> [--listen ADDR] [--port-file PATH]
//!                       [--lease-timeout SECS] [--max-retries N] [profile flags]
//! ncg-experiments work <experiment> (--connect ADDR | --port-file PATH)
//!                      [--worker-id ID] [profile flags]
//!
//! experiments: table1 table2 figures12 figure3 figure4 figure5
//!              figure6 figure7 figure8 figure9 figure10
//!              lower-bounds scale-dynamics sum-extension swap-ncg
//!              nonuniform all
//! --full/--paper   use the paper's exact grid instead of the quick
//!                  profile (with the paper's 20 repetitions this can
//!                  take hours; combine with --reps to trade CI width
//!                  for time)
//! --out DIR        results directory (default: results/)
//! --seed N         override the base seed
//! --reps N         override the repetition count of the profile
//! --shards M       split the sweep grid into M deterministic shards
//!                  (partitioned by repetition)
//! --shard I        run only shard I (0-based); tables are rendered
//!                  by `merge` once every shard has finished
//! --cold           disable per-repetition warm starts (A/B runs;
//!                  results are bit-identical either way)
//!
//! Dynamics sweeps stream every finished cell to an append-only
//! JSONL journal under --out; re-running after a kill resumes from
//! the journal. `merge` folds the M shard journals into the same
//! tables and canonical JSONL a single-process run produces,
//! byte-for-byte — and the shard journals may even have been written
//! under different --reps splits of the same grid, as long as their
//! union covers the merge's repetition count.
//!
//! `serve` + `work` are the fault-tolerant alternative to static
//! sharding: the coordinator owns the cell work-list and a crash-safe
//! lease ledger, workers lease cells over TCP, heartbeat while
//! solving, and report results idempotently. Killed or stalled
//! workers lose their leases and the cells are re-issued; duplicate
//! completions are deduplicated; the merged artifacts are
//! byte-identical to a single-process run regardless of crashes and
//! retries (the chaos CI job kills a worker mid-sweep and diffs).
//! Both sides must be launched with the same profile flags — the
//! handshake compares grid fingerprints and refuses mismatches. See
//! DESIGN.md §11.
//!
//! NCG_FAULT=kill_after_cells:N|torn_write:N|dup_complete|stall|panic_cell:N
//! injects one deterministic fault into this process (testing only).
//!
//! NCG_THREADS=N caps the worker pool for everything the harness
//! parallelises — sweep repetitions, the fanned-out LKE
//! certifications, and the exact solver's frontier split. Every
//! artifact is byte-identical for every N (the parallel
//! branch-and-bound is deterministic by construction, DESIGN.md §8);
//! the CI `determinism` job runs this binary at N = 1 and N = 4 and
//! diffs the outputs.
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use ncg_experiments::{fault, queue, run_experiment, sweep_plan, Profile, SweepContext, SweepMode};

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "figures12",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "lower-bounds",
    "scale-dynamics",
    "sum-extension",
    "swap-ncg",
    "nonuniform",
];

/// The experiments that run `(α, k, rep)` dynamics sweeps and hence
/// understand sharding, journaling, merging, and the work queue. The
/// rest are cheap deterministic computations that every mode just
/// runs locally.
const SWEEP_EXPERIMENTS: &[&str] = &[
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "scale-dynamics",
    "sum-extension",
    "swap-ncg",
    "nonuniform",
];

/// Journals (and the wire protocol) key experiments by their module
/// name; the CLI spells them with hyphens.
fn journal_name(cli_name: &str) -> String {
    cli_name.replace('-', "_")
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ncg-experiments <experiment|all> [--full|--paper] [--out DIR] [--seed N] \
         [--reps N] [--shards M --shard I] [--cold]\n\
         \u{20}      ncg-experiments merge <experiment|all> --shards M [--out DIR] [profile flags]\n\
         \u{20}      ncg-experiments serve <experiment> [--listen ADDR] [--port-file PATH] \
         [--lease-timeout SECS] [--max-retries N] [profile flags]\n\
         \u{20}      ncg-experiments work <experiment> (--connect ADDR | --port-file PATH) \
         [--worker-id ID] [profile flags]\n\
         experiments: {}",
        EXPERIMENTS.join(" ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    // NCG_THREADS caps the worker pool for the whole process; unset
    // (or unparsable) means one worker per core. The scoped install
    // covers sweep repetitions, parallel LKE certification, and the
    // solver's frontier fan-out alike — and output bytes are
    // independent of the value (the CI determinism job enforces it).
    match std::env::var("NCG_THREADS").ok().map(|v| v.parse::<usize>()) {
        Some(Ok(threads)) if threads >= 1 => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool construction is infallible");
            pool.install(run)
        }
        Some(_) => {
            eprintln!("[ncg-experiments] NCG_THREADS must be a positive integer");
            ExitCode::FAILURE
        }
        None => run(),
    }
}

/// Which top-level action the positionals selected.
enum Action {
    Run,
    Merge,
    Serve,
    Work,
}

fn run() -> ExitCode {
    // Fail fast on an unparsable NCG_FAULT instead of deep inside a
    // sweep (env_plan panics with the accepted grammar).
    let _ = fault::env_plan();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positionals: Vec<String> = Vec::new();
    let mut profile = Profile::quick();
    let mut out_dir = PathBuf::from("results");
    let mut seed_override: Option<u64> = None;
    let mut reps_override: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut shard: Option<usize> = None;
    let mut warm_start = true;
    let mut listen = String::from("127.0.0.1:0");
    let mut port_file: Option<PathBuf> = None;
    let mut lease_timeout = Duration::from_secs(15);
    let mut max_retries = 3usize;
    let mut connect: Option<String> = None;
    let mut worker_id: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" | "--paper" => profile = Profile::paper(),
            "--smoke" => profile = Profile::smoke(),
            "--cold" => warm_start = false,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out_dir = PathBuf::from(dir),
                    None => return usage(),
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(seed) => seed_override = Some(seed),
                    None => return usage(),
                }
            }
            "--reps" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(reps) if reps > 0 => reps_override = Some(reps),
                    _ => return usage(),
                }
            }
            "--shards" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(m) if m > 0 => shards = Some(m),
                    _ => return usage(),
                }
            }
            "--shard" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(idx) => shard = Some(idx),
                    None => return usage(),
                }
            }
            "--listen" => {
                i += 1;
                match args.get(i) {
                    Some(addr) => listen = addr.clone(),
                    None => return usage(),
                }
            }
            "--port-file" => {
                i += 1;
                match args.get(i) {
                    Some(path) => port_file = Some(PathBuf::from(path)),
                    None => return usage(),
                }
            }
            "--lease-timeout" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(secs) if secs > 0 => lease_timeout = Duration::from_secs(secs),
                    _ => return usage(),
                }
            }
            "--max-retries" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => max_retries = n,
                    None => return usage(),
                }
            }
            "--connect" => {
                i += 1;
                match args.get(i) {
                    Some(addr) => connect = Some(addr.clone()),
                    None => return usage(),
                }
            }
            "--worker-id" => {
                i += 1;
                match args.get(i) {
                    Some(id) => worker_id = Some(id.clone()),
                    None => return usage(),
                }
            }
            name if !name.starts_with('-') => positionals.push(name.to_string()),
            _ => return usage(),
        }
        i += 1;
    }
    // Apply overrides last so flag order does not matter.
    if let Some(seed) = seed_override {
        profile.base_seed = seed;
    }
    if let Some(reps) = reps_override {
        profile.reps = reps;
    }
    // Positionals: `<experiment>` or `<merge|serve|work> <experiment>`.
    let (action, target) = match positionals.as_slice() {
        [target] if !matches!(target.as_str(), "merge" | "serve" | "work") => {
            (Action::Run, target.clone())
        }
        [action, target] => match action.as_str() {
            "merge" => (Action::Merge, target.clone()),
            "serve" => (Action::Serve, target.clone()),
            "work" => (Action::Work, target.clone()),
            _ => return usage(),
        },
        _ => return usage(),
    };
    match action {
        Action::Serve => {
            return serve(
                &target,
                &profile,
                &out_dir,
                warm_start,
                &listen,
                port_file,
                lease_timeout,
                max_retries,
            )
        }
        Action::Work => return work(&target, &profile, warm_start, connect, port_file, worker_id),
        Action::Run | Action::Merge => {}
    }
    let merging = matches!(action, Action::Merge);
    let mode = match (merging, shards, shard) {
        (true, Some(count), None) => SweepMode::Merge { count },
        (true, _, _) => {
            eprintln!("merge requires --shards M (and no --shard)");
            return usage();
        }
        (false, Some(count), Some(index)) if index < count => SweepMode::Shard { count, index },
        (false, None, None) => SweepMode::Local,
        _ => {
            eprintln!("--shards M and --shard I (with I < M) must be given together");
            return usage();
        }
    };
    let ctx = SweepContext { mode, journal_dir: Some(out_dir.clone()), warm_start };
    let names: Vec<&str> = if target == "all" {
        EXPERIMENTS.to_vec()
    } else if EXPERIMENTS.contains(&target.as_str()) {
        vec![target.as_str()]
    } else {
        return usage();
    };
    for name in names {
        let is_sweep = SWEEP_EXPERIMENTS.contains(&name);
        // Non-sweep experiments are cheap and deterministic: shard 0
        // and merge produce them; other shards skip them.
        if !is_sweep {
            if let SweepMode::Shard { index, .. } = mode {
                if index != 0 {
                    eprintln!("[ncg-experiments] {name} has no sweep; left to shard 0");
                    continue;
                }
            }
        }
        let verb = match mode {
            SweepMode::Merge { .. } if is_sweep => "merging",
            SweepMode::Shard { index, count } if is_sweep => {
                eprintln!(
                    "[ncg-experiments] running {name} shard {index} of {count} \
                     with the '{}' profile…",
                    profile.name
                );
                ""
            }
            _ => "running",
        };
        if !verb.is_empty() {
            eprintln!("[ncg-experiments] {verb} {name} with the '{}' profile…", profile.name);
        }
        if !render_and_write(name, &profile, &ctx, &out_dir) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Runs one experiment and writes its artifacts; `false` on failure.
fn render_and_write(
    name: &str,
    profile: &Profile,
    ctx: &SweepContext,
    out_dir: &std::path::Path,
) -> bool {
    let started = std::time::Instant::now();
    let output = run_experiment(name, profile, ctx).expect("name validated above");
    println!("{}", output.render_console());
    match output.write_to(out_dir) {
        Ok(paths) => {
            for p in paths {
                eprintln!("[ncg-experiments]   wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("[ncg-experiments] failed to write results: {e}");
            return false;
        }
    }
    eprintln!("[ncg-experiments] {name} finished in {:.1}s", started.elapsed().as_secs_f64());
    true
}

/// `serve <experiment>`: coordinate a distributed sweep, then render
/// the experiment's tables from the completed journal.
#[allow(clippy::too_many_arguments)]
fn serve(
    target: &str,
    profile: &Profile,
    out_dir: &std::path::Path,
    warm_start: bool,
    listen: &str,
    port_file: Option<PathBuf>,
    lease_timeout: Duration,
    max_retries: usize,
) -> ExitCode {
    let Some(specs) = plan_for(target, profile) else { return usage() };
    let coordinator = match queue::Coordinator::open(
        out_dir,
        &journal_name(target),
        specs,
        queue::CoordinatorOptions { lease: lease_timeout, max_retries },
    ) {
        Ok(c) => Arc::new(c),
        Err(e) => {
            eprintln!("[ncg-experiments] serve {target}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let opts = queue::ServeOptions { listen: listen.to_string(), port_file };
    if let Err(e) = queue::serve(&coordinator, &opts) {
        eprintln!("[ncg-experiments] serve {target}: {e}");
        return ExitCode::FAILURE;
    }
    // Every cell is journaled; render the artifacts locally — the
    // run resumes all cells from the journal, so this re-solves
    // nothing and folds in canonical order.
    eprintln!("[ncg-experiments] serve {target}: rendering artifacts from the journal…");
    let ctx = SweepContext {
        mode: SweepMode::Local,
        journal_dir: Some(out_dir.to_path_buf()),
        warm_start,
    };
    if render_and_write(target, profile, &ctx, out_dir) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `work <experiment>`: lease and solve cells for a coordinator.
fn work(
    target: &str,
    profile: &Profile,
    warm_start: bool,
    connect: Option<String>,
    port_file: Option<PathBuf>,
    worker_id: Option<String>,
) -> ExitCode {
    let Some(specs) = plan_for(target, profile) else { return usage() };
    let connect = match (connect, port_file) {
        (Some(addr), _) => addr,
        (None, Some(path)) => {
            // The coordinator writes its bound address atomically once
            // listening; poll briefly so workers can start first.
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            loop {
                match std::fs::read_to_string(&path) {
                    Ok(text) if !text.trim().is_empty() => break text.trim().to_string(),
                    _ if std::time::Instant::now() >= deadline => {
                        eprintln!(
                            "[ncg-experiments] work {target}: no coordinator address in {} \
                             after 30s",
                            path.display()
                        );
                        return ExitCode::FAILURE;
                    }
                    _ => std::thread::sleep(Duration::from_millis(50)),
                }
            }
        }
        (None, None) => {
            eprintln!("work requires --connect ADDR or --port-file PATH");
            return usage();
        }
    };
    let worker_id = worker_id.unwrap_or_else(|| format!("worker-{}", std::process::id()));
    let opts = queue::WorkOptions { connect, worker_id, warm_start };
    match queue::work(&journal_name(target), &specs, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("[ncg-experiments] work {target}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The sweep plan for a serve/work target; `None` (after an error
/// message) if the target is unknown, is `all`, or has no sweep.
fn plan_for(target: &str, profile: &Profile) -> Option<Vec<ncg_experiments::sweep::SweepSpec>> {
    if !SWEEP_EXPERIMENTS.contains(&target) {
        eprintln!(
            "serve/work need a single sweep experiment (one of: {}); '{target}' does not \
             distribute",
            SWEEP_EXPERIMENTS.join(" ")
        );
        return None;
    }
    let specs = sweep_plan(target, profile).expect("membership checked above");
    if specs.is_empty() {
        eprintln!("'{target}' plans no sweep cells under this profile");
        return None;
    }
    Some(specs)
}
