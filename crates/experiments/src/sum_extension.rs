//! **Extension (beyond the paper):** a small-scale SumNCG dynamics
//! sweep.
//!
//! The paper restricts its experiments to MaxNCG because computing a
//! SumNCG best response lacks a practical exact reduction (Section 5:
//! "for MAXNCG it is computationally feasible to find a best-response
//! strategy"). Section 6 lists exploring SumNCG's PoA space as future
//! work. This module provides a first empirical cut at laptop scale:
//! exact best responses on views small enough to enumerate, hill
//! climbing beyond (see `ncg_solver::sum_br`), with the Theorem 4.4
//! prediction checked on every converged run: for `k > 1 + 2√α`,
//! stable networks must have diameter `≤ k` (players see everything).

use ncg_core::Objective;

use crate::engine::{self, MetricGrid, SweepContext};
use crate::output::grid_table;
use crate::sweep::SweepSpec;
use crate::{ExperimentOutput, Profile};

/// Runs the SumNCG extension sweep (local mode). Sizes are
/// deliberately modest — the best responses are
/// exponential-or-heuristic.
pub fn run(profile: &Profile) -> ExperimentOutput {
    run_ctx(profile, &SweepContext::local())
}

/// Runs the SumNCG extension sweep under the given execution context.
pub fn run_ctx(profile: &Profile, ctx: &SweepContext) -> ExperimentOutput {
    let n = profile.tree_ns.iter().copied().min().unwrap_or(20).min(30);
    let mut out = ExperimentOutput::new("sum_extension");
    let alphas: Vec<f64> =
        profile.alphas.iter().copied().filter(|&a| (0.3..=5.0).contains(&a)).collect();
    let ks: Vec<u32> = profile.ks.iter().copied().filter(|&k| k <= 7).collect();
    let specs = vec![SweepSpec::tree(
        "main",
        n,
        profile.reps,
        profile.base_seed ^ 0x5u64,
        alphas.clone(),
        ks.clone(),
        Objective::Sum,
    )];
    let (rows, cols) = (alphas.len(), ks.len());
    let mut quality = MetricGrid::new(rows, cols);
    let mut rounds = MetricGrid::new(rows, cols);
    // Theorem 4.4 verification counters.
    let mut checked = 0usize;
    let mut violations = 0usize;
    let report = engine::execute(ctx, "sum_extension", &specs, &mut |_, cell, rec| {
        quality.push(cell.ai, cell.ki, rec.quality);
        rounds.push(cell.ai, cell.ki, rec.converged.then_some(rec.rounds as f64));
        let (alpha, k) = (alphas[cell.ai], ks[cell.ki]);
        if k as f64 > 1.0 + 2.0 * alpha.sqrt() && rec.converged {
            checked += 1;
            if rec.diameter.unwrap_or(u32::MAX) > k {
                violations += 1;
            }
        }
    });
    if let Some(note) = report.shard_note("sum_extension") {
        out.notes = note;
        return out;
    }
    out.notes = format!(
        "EXTENSION (not in the paper): SumNCG best-response dynamics on random trees \
         (n = {n}); exact enumeration on small views, hill climbing beyond; \
         profile: {} ({} reps). Theorem 4.4 check: k > 1 + 2√α ⇒ equilibrium \
         diameter ≤ k. Checked {checked} converged runs in the Theorem 4.4 regime: \
         {violations} violations.",
        profile.name, profile.reps
    );
    let row_labels: Vec<String> = alphas.iter().map(|a| format!("{a}")).collect();
    let col_labels: Vec<String> = ks.iter().map(|k| format!("k={k}")).collect();
    out.push_table(
        "quality",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| quality.display(ri, ci, 2)),
    );
    out.push_table(
        "rounds",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| rounds.display(ri, ci, 1)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{by_cell, sweep};
    use crate::workloads;

    #[test]
    fn sum_extension_runs_and_respects_theorem_44() {
        let out = run(&Profile::smoke());
        assert_eq!(out.tables.len(), 2);
        assert!(out.notes.contains("0 violations"), "{}", out.notes);
    }

    #[test]
    fn sum_equilibria_are_denser_for_small_alpha() {
        use ncg_core::Objective;
        let states = workloads::tree_states(16, 3, 99);
        let results = sweep(&states, &[0.5, 5.0], &[4], Objective::Sum, None);
        let grouped = by_cell(&results, &[0.5, 5.0], &[4], 3);
        let avg_edges = |i: usize| {
            let (_, cells) = grouped[i];
            cells.iter().map(|c| c.result.final_metrics.edges as f64).sum::<f64>()
                / cells.len() as f64
        };
        assert!(
            avg_edges(0) >= avg_edges(1),
            "cheap edges must give at least as dense SumNCG equilibria"
        );
    }
}
