//! **Extension (beyond the paper):** a small-scale SumNCG dynamics
//! sweep.
//!
//! The paper restricts its experiments to MaxNCG because computing a
//! SumNCG best response lacks a practical exact reduction (Section 5:
//! "for MAXNCG it is computationally feasible to find a best-response
//! strategy"). Section 6 lists exploring SumNCG's PoA space as future
//! work. This module goes further: every best response is *exact* —
//! the include/exclude branch-and-bound of `ncg_solver::sum_engine`
//! handles the profile's headline tree size with full-knowledge views
//! (no enumeration cap, no hill-climb fallback) — with the Theorem 4.4
//! prediction checked on every converged run: for `k > 1 + 2√α`,
//! stable networks must have diameter `≤ k` (players see everything).
//! The check is exposed structurally as [`Theorem44Check`], so tests
//! assert on counts rather than scraping the notes string.

use ncg_core::Objective;

use crate::engine::{self, MetricGrid, SweepContext};
use crate::output::grid_table;
use crate::sweep::SweepSpec;
use crate::{ExperimentOutput, Profile};

/// Outcome of the Theorem 4.4 verification over a sweep: how many
/// converged runs fell in the `k > 1 + 2√α` regime, and how many of
/// those violated the diameter-`≤ k` prediction (must be zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Theorem44Check {
    /// Converged runs in the theorem's regime.
    pub checked: usize,
    /// Runs among them whose equilibrium diameter exceeded `k`.
    pub violations: usize,
}

/// Runs the SumNCG extension sweep (local mode) at the profile's
/// [`sum_tree_n`](Profile::sum_tree_n) — exact branch-and-bound best
/// responses throughout, sized so the degenerate α ≈ 1 tie plateau
/// stays tractable (DESIGN.md §9).
pub fn run(profile: &Profile) -> ExperimentOutput {
    run_ctx(profile, &SweepContext::local())
}

/// Runs the SumNCG extension sweep under the given execution context.
pub fn run_ctx(profile: &Profile, ctx: &SweepContext) -> ExperimentOutput {
    run_ctx_stats(profile, ctx).0
}

/// [`run_ctx`], also returning the Theorem 4.4 counters structurally
/// (for a sharded run, the counters cover this shard's cells).
pub fn run_ctx_stats(profile: &Profile, ctx: &SweepContext) -> (ExperimentOutput, Theorem44Check) {
    let n = profile.sum_tree_n();
    let mut out = ExperimentOutput::new("sum_extension");
    let alphas: Vec<f64> =
        profile.alphas.iter().copied().filter(|&a| (0.3..=5.0).contains(&a)).collect();
    // Bounded-locality columns plus the full-knowledge column (k ≥ n
    // sees the whole tree) — the views the exact engine is built for.
    let ks: Vec<u32> = profile.ks.iter().copied().filter(|&k| k <= 7 || k as usize >= n).collect();
    let specs = vec![SweepSpec::tree(
        "main",
        n,
        profile.reps,
        profile.base_seed ^ 0x5u64,
        alphas.clone(),
        ks.clone(),
        Objective::Sum,
    )];
    let (rows, cols) = (alphas.len(), ks.len());
    let mut quality = MetricGrid::new(rows, cols);
    let mut rounds = MetricGrid::new(rows, cols);
    // Theorem 4.4 verification counters.
    let mut check = Theorem44Check::default();
    let report = engine::execute(ctx, "sum_extension", &specs, &mut |_, cell, rec| {
        quality.push(cell.ai, cell.ki, rec.quality);
        rounds.push(cell.ai, cell.ki, rec.converged.then_some(rec.rounds as f64));
        let (alpha, k) = (alphas[cell.ai], ks[cell.ki]);
        if k as f64 > 1.0 + 2.0 * alpha.sqrt() && rec.converged {
            check.checked += 1;
            if rec.diameter.unwrap_or(u32::MAX) > k {
                check.violations += 1;
            }
        }
    });
    if let Some(note) = report.shard_note("sum_extension") {
        out.notes = note;
        return (out, check);
    }
    out.notes = format!(
        "EXTENSION (not in the paper): SumNCG best-response dynamics on random trees \
         (n = {n}); exact branch-and-bound best responses on every view, including \
         full knowledge; profile: {} ({} reps). Theorem 4.4 check: k > 1 + 2√α ⇒ \
         equilibrium diameter ≤ k. Checked {} converged runs in the Theorem 4.4 \
         regime: {} violations.",
        profile.name, profile.reps, check.checked, check.violations
    );
    let row_labels: Vec<String> = alphas.iter().map(|a| format!("{a}")).collect();
    let col_labels: Vec<String> = ks.iter().map(|k| format!("k={k}")).collect();
    out.push_table(
        "quality",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| quality.display(ri, ci, 2)),
    );
    out.push_table(
        "rounds",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| rounds.display(ri, ci, 1)),
    );
    (out, check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{by_cell, sweep};
    use crate::workloads;

    #[test]
    fn sum_extension_runs_and_respects_theorem_44() {
        let (out, check) = run_ctx_stats(&Profile::smoke(), &SweepContext::local());
        assert_eq!(out.tables.len(), 2);
        // The structural counters are authoritative: the regime must
        // actually be exercised, and violations must be exactly zero.
        assert!(check.checked > 0, "{}", out.notes);
        assert_eq!(check.violations, 0, "{}", out.notes);
        // The notes must agree — ": 0 violations" (with the separator)
        // cannot false-match "10 violations" the way the old substring
        // check could.
        assert!(out.notes.contains(": 0 violations"), "{}", out.notes);
    }

    #[test]
    fn sum_equilibria_are_denser_for_small_alpha() {
        use ncg_core::Objective;
        let states = workloads::tree_states(16, 3, 99);
        let results = sweep(&states, &[0.5, 5.0], &[4], Objective::Sum, None);
        let grouped = by_cell(&results, &[0.5, 5.0], &[4], 3);
        let avg_edges = |i: usize| {
            let (_, cells) = grouped[i];
            cells.iter().map(|c| c.result.final_metrics.edges as f64).sum::<f64>()
                / cells.len() as f64
        };
        assert!(
            avg_edges(0) >= avg_edges(1),
            "cheap edges must give at least as dense SumNCG equilibria"
        );
    }
}
