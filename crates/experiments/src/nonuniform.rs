//! **Extension (beyond the paper):** non-uniform edge prices under
//! the MaxNCG objective.
//!
//! The paper prices every edge at the same `α`. The
//! [`EdgeCostModel::PerTarget`] axis of the model zoo instead charges
//! `α · w(v)` for an edge toward `v`, with `w(v) ∈ {1, 1.25, 1.5,
//! 1.75}` drawn deterministically from a hash of the target id — the
//! Chauhan-et-al.-style heterogeneity where some vertices are simply
//! more expensive to link to. Quarter-step multipliers are exactly
//! representable in binary floating point, so every price (and every
//! price *difference*) stays on a grid far coarser than the
//! workspace-wide `EPS` tie-break tolerance.
//!
//! Per-target pricing breaks the count-based pruning of both exact
//! engines, so best responses route through the generic front:
//! bounded-locality columns (small `k`, hence small views) solve by
//! exact enumeration whenever the view fits under the solver's
//! enumeration cap, while the full-knowledge column falls back to the
//! deterministic hill climb — documented in the output notes, and the
//! reason this sweep sizes itself like the SumNCG extension rather
//! than the headline MaxNCG grids.
//!
//! Converged corner cells are re-run and re-certified against the
//! same front ([`NonUniformCheck`]): a violation would mean the
//! dynamics declared convergence while an improving move existed.

use ncg_core::{EdgeCostModel, Objective, Scenario};
use ncg_dynamics::DynamicsConfig;

use crate::engine::{self, MetricGrid, SweepContext};
use crate::output::grid_table;
use crate::sweep::SweepSpec;
use crate::{ExperimentOutput, Profile};

/// The per-target multiplier seed: fixed, so every profile prices the
/// same vertex the same way and journals stay comparable across
/// machines and reps.
pub const PRICE_SEED: u64 = 0x00C0_FFEE;

/// Structural outcome of the certification pass over the grid's
/// corner cells (rep 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NonUniformCheck {
    /// Corner-cell runs re-executed and certified.
    pub certified: usize,
    /// Certified converged runs with a remaining improving move
    /// (must be zero).
    pub violations: usize,
}

/// Runs the non-uniform-price extension sweep (local mode).
pub fn run(profile: &Profile) -> ExperimentOutput {
    run_ctx(profile, &SweepContext::local())
}

/// Runs the non-uniform-price extension sweep under the given
/// execution context.
pub fn run_ctx(profile: &Profile, ctx: &SweepContext) -> ExperimentOutput {
    run_ctx_stats(profile, ctx).0
}

/// [`run_ctx`], also returning the certification counters
/// structurally (sharded runs skip certification; it belongs to the
/// folding process).
pub fn run_ctx_stats(profile: &Profile, ctx: &SweepContext) -> (ExperimentOutput, NonUniformCheck) {
    let scenario = Scenario::non_uniform(Objective::Max, PRICE_SEED);
    let n = profile.sum_tree_n();
    let mut out = ExperimentOutput::new("nonuniform");
    let alphas = profile.alphas.clone();
    // Bounded-locality columns (small views ⇒ exact enumeration under
    // the front's cap) plus the full-knowledge column (hill-climb
    // fallback).
    let ks: Vec<u32> = profile.ks.iter().copied().filter(|&k| k <= 3 || k as usize >= n).collect();
    let specs = vec![SweepSpec::tree(
        "main",
        n,
        profile.reps,
        profile.base_seed ^ 0x7u64,
        alphas.clone(),
        ks.clone(),
        scenario,
    )];
    let (rows, cols) = (alphas.len(), ks.len());
    let mut rounds = MetricGrid::new(rows, cols);
    let mut quality = MetricGrid::new(rows, cols);
    let report = engine::execute(ctx, "nonuniform", &specs, &mut |_, cell, rec| {
        rounds.push(cell.ai, cell.ki, rec.converged.then_some(rec.rounds as f64));
        quality.push(cell.ai, cell.ki, rec.quality);
    });
    let mut check = NonUniformCheck::default();
    if let Some(note) = report.shard_note("nonuniform") {
        out.notes = note;
        return (out, check);
    }
    // Certification pass (corner cells, rep 0): re-run and ask the
    // same front whether any player still improves. Exact where views
    // fit under the enumeration cap; elsewhere the certificate is
    // stability under the deterministic hill climb (a reported
    // violation is a genuine improving move either way).
    let states = specs[0].states();
    let mut corners: Vec<(usize, usize)> =
        vec![(0, 0), (0, ks.len() - 1), (alphas.len() - 1, 0), (alphas.len() - 1, ks.len() - 1)];
    corners.dedup();
    for (ai, ki) in corners {
        let spec = scenario.spec(alphas[ai], ks[ki]);
        debug_assert!(matches!(spec.edge_cost, EdgeCostModel::PerTarget { .. }));
        let result = ncg_dynamics::run(states[0].clone(), &DynamicsConfig::new(spec));
        if result.outcome.converged() {
            check.certified += 1;
            if !ncg_solver::is_lke(&result.state, &spec) {
                check.violations += 1;
            }
        }
    }
    out.notes = format!(
        "EXTENSION (not in the paper): MaxNCG dynamics with per-target edge prices \
         α·w(v), w(v) ∈ {{1, 1.25, 1.5, 1.75}} hashed from the target id (price seed \
         {PRICE_SEED:#x}) on random trees (n = {n}). Count-based pruning is unsound \
         under heterogeneous prices, so best responses use exact enumeration on the \
         bounded-locality columns (views under the cap) and the deterministic hill \
         climb on the full-knowledge column. Profile: {} ({} reps). Certified {} \
         converged corner-cell runs against the same front: {} violations.",
        profile.name, profile.reps, check.certified, check.violations
    );
    let row_labels: Vec<String> = alphas.iter().map(|a| format!("{a}")).collect();
    let col_labels: Vec<String> = ks.iter().map(|k| format!("k={k}")).collect();
    out.push_table(
        "rounds",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| rounds.display(ri, ci, 1)),
    );
    out.push_table(
        "quality",
        grid_table("alpha", &row_labels, &col_labels, |ri, ci| quality.display(ri, ci, 2)),
    );
    (out, check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonuniform_sweep_runs_and_certifies_corner_cells() {
        let (out, check) = run_ctx_stats(&Profile::smoke(), &SweepContext::local());
        assert_eq!(out.tables.len(), 2);
        assert!(check.certified > 0, "{}", out.notes);
        assert_eq!(check.violations, 0, "{}", out.notes);
        assert!(out.notes.contains(": 0 violations"), "{}", out.notes);
    }

    #[test]
    fn price_seed_is_part_of_the_fingerprint() {
        let p = Profile::smoke();
        let spec_of = |seed: u64| {
            SweepSpec::tree(
                "main",
                16,
                p.reps,
                1,
                p.alphas.clone(),
                p.ks.clone(),
                Scenario::non_uniform(Objective::Max, seed),
            )
        };
        assert_ne!(spec_of(PRICE_SEED).fingerprint(), spec_of(PRICE_SEED ^ 1).fingerprint());
        let uniform =
            SweepSpec::tree("main", 16, p.reps, 1, p.alphas.clone(), p.ks.clone(), Objective::Max);
        assert_ne!(spec_of(PRICE_SEED).fingerprint(), uniform.fingerprint());
    }
}
