//! Figure 4: the SumNCG `(α, k)` lower-bound map — for each grid
//! point, whether LKE ≡ NE (Theorem 4.4), the applicable lower bound
//! (Theorems 4.2 / 4.3), or "open" (the region between `Θ(∛α)` and
//! `Θ(√α)` the paper leaves unresolved).

use ncg_bounds::sumncg;

use crate::output::grid_table;
use crate::{ExperimentOutput, Profile};

/// The `n` the asymptotic map is evaluated at.
pub const MAP_N: usize = 1 << 30;

/// Runs the Figure 4 map (profile only tags the notes).
pub fn run(profile: &Profile) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("figure4");
    out.notes = format!(
        "Figure 4 — SumNCG (α, k) map at n = 2^30: NE≡LKE region (k > 1 + 2√α), \
         evaluated lower bounds, and the open region; profile: {}",
        profile.name
    );
    let alphas: Vec<f64> = (0..12).map(|i| 4f64.powi(i)).collect(); // 1 … 4^11
    let ks: Vec<u32> = (0..12).map(|i| 1u32 << i).collect();
    let row_labels: Vec<String> = ks.iter().map(|k| k.to_string()).collect();
    let col_labels: Vec<String> = alphas.iter().map(|a| format!("α={a}")).collect();
    let map = grid_table("k \\ α", &row_labels, &col_labels, |ri, ci| {
        let (alpha, k) = (alphas[ci], ks[ri]);
        if sumncg::lke_equals_ne(alpha, k) {
            "NE≡LKE".to_string()
        } else {
            let lb = sumncg::lower_bound(MAP_N, alpha, k);
            if lb > 1.0 {
                format!("LB {lb:.2e}")
            } else {
                "open".to_string()
            }
        }
    });
    out.push_table("map", map);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_contains_all_three_zones() {
        let out = run(&Profile::smoke());
        let csv = out.tables[0].1.render(ncg_stats::TableStyle::Csv);
        assert!(csv.contains("NE≡LKE"));
        assert!(csv.contains("LB "));
        assert!(csv.contains("open"));
    }

    #[test]
    fn ne_region_is_upper_left() {
        // Small α, large k ⇒ NE≡LKE; large α, small k ⇒ not.
        assert!(sumncg::lke_equals_ne(1.0, 1024));
        assert!(!sumncg::lke_equals_ne(4f64.powi(11), 1));
    }
}
