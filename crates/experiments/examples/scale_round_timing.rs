//! Times one simultaneous round of the approximate scale tier on
//! G(10^6, avg deg 10) — the tentpole throughput demo of DESIGN.md
//! §13. The first round is the worst case (every player is dirty and
//! responds); later rounds shrink to the balls the previous round
//! touched. Work parallelises over fixed 4096-player chunks, so
//! wall-clock scales with cores while artifacts stay byte-identical.
//!
//! ```text
//! cargo run --release -p ncg-experiments --example scale_round_timing
//! ```

use ncg_core::GameSpec;
use ncg_dynamics::scale::{run_scale, ScaleArena, ScaleConfig};
use ncg_experiments::workloads;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let mut state = workloads::scale_er_states(1_000_000, 10.0, 1, 7).remove(0);
    println!("sample G(10^6, avg deg 10): {:.1?}", t0.elapsed());
    let mut config = ScaleConfig::new(GameSpec::max(5.0, 2));
    config.max_rounds = 1;
    let mut arena = ScaleArena::new();
    let t1 = Instant::now();
    let result = run_scale(&mut state, &config, &mut arena);
    println!(
        "one simultaneous round: {:.1?} ({} proposals, {} applied, {} conflicts)",
        t1.elapsed(),
        result.total_proposals,
        result.total_moves,
        result.total_conflicts
    );
}
