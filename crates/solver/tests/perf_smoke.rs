//! Tier-1-safe performance smoke test for the exact branch-and-bound.
//!
//! Guards the `substrates/dominating_set/exact_bnb` speed-up (the
//! incremental engine's bounds; see `DESIGN.md` §4): a fixed mid-size
//! `G(n, p)` graph-domination instance must solve well under a
//! generous wall-clock cap even in unoptimised debug builds. The seed
//! branch-and-bound spends *minutes* on this instance in release
//! mode, so a regression to seed behaviour trips the cap by orders of
//! magnitude, while CI noise cannot.

use ncg_core::{GameSpec, GameState, PlayerView};
use ncg_graph::NodeId;
use ncg_solver::bitset::BitSet;
use ncg_solver::dominating::DominationInstance;
use ncg_solver::{sum_br, Mode, SolverScratch};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

fn graph_instance(n: usize, p: f64, seed: u64) -> DominationInstance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = ncg_graph::generators::gnp_connected(n, p, 1000, &mut rng).unwrap();
    DominationInstance::closed_neighborhoods(&g, vec![])
}

#[test]
fn exact_bnb_mid_size_instance_is_fast() {
    // Same generator family and seed discipline as the criterion
    // bench; sized so the optimised solver finishes in well under a
    // second in debug while the seed algorithm would not.
    let inst = graph_instance(100, 0.08, 6);
    let start = Instant::now();
    let solution = inst.solve_exact(usize::MAX).expect("connected instance is feasible");
    let elapsed = start.elapsed();
    // Sanity: the result is a real dominating set.
    let mut covered = BitSet::new(inst.n());
    for &s in &solution {
        covered.union_with(&inst.covers[s as usize]);
    }
    assert!(covered.is_superset(&inst.universe));
    assert!(
        elapsed < Duration::from_secs(60),
        "exact B&B took {elapsed:?} on the mid-size smoke instance — \
         bound regression? (expected well under a second)"
    );
}

#[test]
fn sum_exact_is_fast_on_full_knowledge_views() {
    // The exact-at-scale acceptance floor: SumNCG best responses on
    // full-knowledge views at n ≥ 60 — 4× the removed 14-candidate
    // enumeration cap, where subset enumeration would need 2^64
    // evaluations. The cheap-α regime (packing bound territory) runs
    // every player; the expensive p-median-like α = 2 regime — where
    // the dual-ascent bound carries the search — runs every player in
    // release builds and a fixed spread of players in debug builds,
    // whose ~10× slowdown would otherwise dominate the tier-1 suite.
    // A regression to the pre-dual engine is an order of magnitude in
    // node count and trips the cap in either build.
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let tree = ncg_graph::generators::random_tree(64, &mut rng);
    let state = GameState::from_graph_random_ownership(&tree, &mut rng);
    let mut scratch = SolverScratch::new();
    let start = Instant::now();
    for alpha in [0.5, 2.0] {
        let spec = GameSpec::sum(alpha, 1000);
        for u in 0..state.n() as NodeId {
            if alpha == 2.0 && cfg!(debug_assertions) && u % 21 != 0 {
                continue;
            }
            let view = PlayerView::build(&state, u, spec.k);
            assert_eq!(view.len(), 64, "full knowledge must see the whole tree");
            let d = sum_br::sum_best_response_with(&spec, &view, Mode::Exact, &mut scratch);
            let current = ncg_core::deviation::current_total(&spec, &view);
            assert!(d.total_cost <= current + ncg_core::EPS, "u={u} α={alpha}");
        }
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(120),
        "exact sum solves on 64-node full-knowledge views took {elapsed:?} — \
         bound regression? (expected well under a minute in either build)"
    );
}
