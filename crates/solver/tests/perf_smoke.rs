//! Tier-1-safe performance smoke test for the exact branch-and-bound.
//!
//! Guards the `substrates/dominating_set/exact_bnb` speed-up (the
//! incremental engine's bounds; see `DESIGN.md` §4): a fixed mid-size
//! `G(n, p)` graph-domination instance must solve well under a
//! generous wall-clock cap even in unoptimised debug builds. The seed
//! branch-and-bound spends *minutes* on this instance in release
//! mode, so a regression to seed behaviour trips the cap by orders of
//! magnitude, while CI noise cannot.

use ncg_solver::bitset::BitSet;
use ncg_solver::dominating::DominationInstance;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

fn graph_instance(n: usize, p: f64, seed: u64) -> DominationInstance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = ncg_graph::generators::gnp_connected(n, p, 1000, &mut rng).unwrap();
    DominationInstance::closed_neighborhoods(&g, vec![])
}

#[test]
fn exact_bnb_mid_size_instance_is_fast() {
    // Same generator family and seed discipline as the criterion
    // bench; sized so the optimised solver finishes in well under a
    // second in debug while the seed algorithm would not.
    let inst = graph_instance(100, 0.08, 6);
    let start = Instant::now();
    let solution = inst.solve_exact(usize::MAX).expect("connected instance is feasible");
    let elapsed = start.elapsed();
    // Sanity: the result is a real dominating set.
    let mut covered = BitSet::new(inst.n());
    for &s in &solution {
        covered.union_with(&inst.covers[s as usize]);
    }
    assert!(covered.is_superset(&inst.universe));
    assert!(
        elapsed < Duration::from_secs(60),
        "exact B&B took {elapsed:?} on the mid-size smoke instance — \
         bound regression? (expected well under a second)"
    );
}
