//! Property-based tests for the solver crate: the bitset, the
//! dominating-set branch-and-bound, the incremental engine, and the
//! best-response reduction.

use ncg_core::equilibrium::best_response_exhaustive;
use ncg_core::{GameSpec, GameState, PlayerView};
use ncg_graph::NodeId;
use ncg_solver::bitset::BitSet;
use ncg_solver::dominating::DominationInstance;
use ncg_solver::engine::DominationEngine;
use ncg_solver::{max_br, sum_br, Mode, ParallelPolicy, SolverScratch};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_elems(cap: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..cap as u32, 0..cap)
}

proptest! {
    // Capped so a full `cargo test -q` stays fast and deterministic;
    // override with PROPTEST_CASES (and PROPTEST_SEED) for deeper runs.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// BitSet behaves like a BTreeSet.
    #[test]
    fn bitset_matches_btreeset(elems in arb_elems(150), removals in arb_elems(150)) {
        let mut bs = BitSet::new(150);
        let mut reference = std::collections::BTreeSet::new();
        for &e in &elems {
            prop_assert_eq!(bs.insert(e), reference.insert(e));
        }
        for &e in &removals {
            prop_assert_eq!(bs.remove(e), reference.remove(&e));
        }
        prop_assert_eq!(bs.len(), reference.len());
        prop_assert_eq!(bs.to_vec(), reference.iter().copied().collect::<Vec<u32>>());
    }

    /// Set algebra: union, superset, missing counts agree with the
    /// reference implementation.
    #[test]
    fn bitset_algebra(a in arb_elems(100), b in arb_elems(100)) {
        let sa = BitSet::from_elems(100, a.iter().copied());
        let sb = BitSet::from_elems(100, b.iter().copied());
        let ra: std::collections::BTreeSet<u32> = a.into_iter().collect();
        let rb: std::collections::BTreeSet<u32> = b.into_iter().collect();
        prop_assert_eq!(sa.is_superset(&sb), rb.is_subset(&ra));
        prop_assert_eq!(sa.missing_from(&sb), rb.difference(&ra).count());
        prop_assert_eq!(sa.intersection_len(&sb), ra.intersection(&rb).count());
        let mut u = sa.clone();
        u.union_with(&sb);
        prop_assert_eq!(u.len(), ra.union(&rb).count());
        prop_assert_eq!(
            sa.first_missing_from(&sb),
            rb.difference(&ra).next().copied()
        );
    }

    /// The exact dominating-set solver is optimal: no smaller feasible
    /// subset exists (verified by exhaustive enumeration on ≤ 12
    /// elements) and its output is feasible.
    #[test]
    fn exact_domination_is_optimal(seed in 0u64..500, p in 0.15f64..0.5) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 11usize;
        let g = ncg_graph::generators::gnp(n, p, &mut rng).unwrap();
        let covers: Vec<BitSet> = (0..n as u32).map(|s| {
            let mut b = BitSet::new(n);
            b.insert(s);
            for &v in g.neighbors(s) { b.insert(v); }
            b
        }).collect();
        let inst = DominationInstance {
            covers,
            universe: BitSet::full(n),
            forced: vec![],
        };
        let exact = inst.solve_exact(usize::MAX).map(|s| s.len());
        // Brute force.
        let mut best: Option<usize> = None;
        for mask in 0u32..(1 << n) {
            let mut covered = BitSet::new(n);
            let mut size = 0;
            for s in 0..n as u32 {
                if mask & (1 << s) != 0 {
                    covered.union_with(&inst.covers[s as usize]);
                    size += 1;
                }
            }
            if covered.is_superset(&inst.universe) && best.is_none_or(|b| size < b) {
                best = Some(size);
            }
        }
        prop_assert_eq!(exact, best);
    }

    /// Greedy solutions are always feasible and within the classical
    /// (1 + ln n) factor of exact.
    #[test]
    fn greedy_domination_quality(seed in 0u64..300) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 40usize;
        let g = ncg_graph::generators::gnp_connected(n, 0.12, 500, &mut rng).unwrap();
        let covers: Vec<BitSet> = (0..n as u32).map(|s| {
            let mut b = BitSet::new(n);
            b.insert(s);
            for &v in g.neighbors(s) { b.insert(v); }
            b
        }).collect();
        let inst = DominationInstance { covers, universe: BitSet::full(n), forced: vec![] };
        let greedy = inst.solve_greedy().unwrap();
        let exact = inst.solve_exact(usize::MAX).unwrap();
        let bound = (1.0 + (n as f64).ln()) * exact.len() as f64;
        prop_assert!(greedy.len() as f64 <= bound + 1e-9);
        let mut covered = BitSet::new(n);
        for &s in &greedy {
            covered.union_with(&inst.covers[s as usize]);
        }
        prop_assert!(covered.is_superset(&inst.universe));
    }

    /// The incremental engine's best responses are cost-identical to
    /// the seed per-`h` rebuild, and (on small views) to exhaustive
    /// subset enumeration — the end-to-end parity contract of the
    /// engine rearchitecture.
    #[test]
    fn incremental_engine_matches_rebuild_and_brute_force(
        seed in 0u64..300,
        k in 1u32..5,
        alpha in 0.05f64..6.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = ncg_graph::generators::gnp_connected(14, 0.2, 500, &mut rng).unwrap();
        let state = GameState::from_graph_random_ownership(&g, &mut rng);
        let spec = GameSpec::max(alpha, k);
        let mut scratch = SolverScratch::new();
        for u in (0..state.n() as NodeId).step_by(3) {
            let view = PlayerView::build(&state, u, k);
            let incremental =
                max_br::max_best_response_with(&spec, &view, Mode::Exact, &mut scratch);
            let rebuild_cost = max_br::max_best_response_cost_rebuild(&spec, &view);
            prop_assert!(
                (incremental.total_cost - rebuild_cost).abs() < 1e-9,
                "u={u}: engine {} vs rebuild {rebuild_cost}",
                incremental.total_cost,
            );
            if view.candidates().len() <= 14 {
                let brute = best_response_exhaustive(&spec, &view).unwrap();
                prop_assert!(
                    (incremental.total_cost - brute.total_cost).abs() < 1e-9,
                    "u={u}: engine {} vs brute {}",
                    incremental.total_cost,
                    brute.total_cost,
                );
            }
        }
    }

    /// The parallel branch-and-bound returns the *bit-identical*
    /// solution (not just the same size) as the sequential solver, for
    /// every worker count and under real thread pools — including
    /// cutoff (`None`) and infeasible instances. This is the §8
    /// two-pass canonical-selection contract the CI determinism job
    /// relies on.
    #[test]
    fn parallel_solve_is_bit_identical_across_thread_counts(
        seed in 0u64..400,
        p in 0.08f64..0.35,
        forced in any::<bool>(),
        sabotage in any::<bool>(),
        cutoff_slack in 0usize..3,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 24usize;
        let g = ncg_graph::generators::gnp(n, p, &mut rng).unwrap();
        let mut inst = DominationInstance::closed_neighborhoods(
            &g,
            if forced { vec![3] } else { vec![] },
        );
        if sabotage {
            // Vertex 0 loses every dominator: the instance is
            // infeasible and every solver must say `None`.
            for c in &mut inst.covers {
                c.remove(0);
            }
        }
        let opt = DominationEngine::from_instance(&inst).solve_exact(usize::MAX);
        let cutoff = match (&opt, cutoff_slack) {
            (Some(sol), 0) => sol.len(),     // optimum is not < cutoff → None
            (Some(sol), 1) => sol.len() + 1, // tightest feasible cutoff
            _ => usize::MAX,
        };
        let expected = DominationEngine::from_instance(&inst).solve_exact(cutoff);
        for workers in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(workers).build().unwrap();
            let got = pool.install(|| {
                DominationEngine::from_instance(&inst).solve_exact_parallel(cutoff, workers, 3)
            });
            prop_assert_eq!(&got, &expected, "workers = {}", workers);
        }
    }

    /// Forcing the parallel policy all the way down (every view
    /// parallelises) leaves the full best-response reduction
    /// bit-identical — strategy and cost — to the sequential-only
    /// policy: the `ParallelPolicy` is purely a performance knob.
    #[test]
    fn max_br_parallel_policy_is_transparent(
        seed in 0u64..60,
        k in 2u32..5,
        alpha in 0.1f64..4.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = ncg_graph::generators::gnp_connected(26, 0.12, 500, &mut rng).unwrap();
        let state = GameState::from_graph_random_ownership(&g, &mut rng);
        let spec = GameSpec::max(alpha, k);
        let mut seq = SolverScratch::new();
        seq.parallel = ParallelPolicy::sequential();
        let mut par = SolverScratch::new();
        par.parallel = ParallelPolicy { min_ground: 0, per_worker: 2, adaptive: false };
        let pool = rayon::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        for u in (0..state.n() as NodeId).step_by(7) {
            let view = PlayerView::build(&state, u, k);
            let a = max_br::max_best_response_with(&spec, &view, Mode::Exact, &mut seq);
            let b = pool.install(|| {
                max_br::max_best_response_with(&spec, &view, Mode::Exact, &mut par)
            });
            prop_assert_eq!(&a.strategy_local, &b.strategy_local, "u = {}", u);
            prop_assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits(), "u = {}", u);
        }
    }

    /// The sum branch-and-bound agrees with exhaustive subset
    /// enumeration — strategy and cost bits, not just cost — on every
    /// view small enough to enumerate (all of them sit under the old
    /// 14-candidate `SUM_EXACT_CAP` this engine removed).
    #[test]
    fn sum_bnb_matches_exhaustive(
        seed in 0u64..200,
        k in 1u32..5,
        alpha in 0.05f64..6.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = ncg_graph::generators::gnp_connected(13, 0.2, 500, &mut rng).unwrap();
        let state = GameState::from_graph_random_ownership(&g, &mut rng);
        let spec = GameSpec::sum(alpha, k);
        let mut scratch = SolverScratch::new();
        for u in (0..state.n() as NodeId).step_by(3) {
            let view = PlayerView::build(&state, u, k);
            let bnb = sum_br::sum_best_response_with(&spec, &view, Mode::Exact, &mut scratch);
            let brute = best_response_exhaustive(&spec, &view).unwrap();
            prop_assert_eq!(&bnb.strategy_local, &brute.strategy_local, "u = {}", u);
            prop_assert_eq!(bnb.total_cost.to_bits(), brute.total_cost.to_bits(), "u = {}", u);
        }
    }

    /// Beyond the old enumeration cap the exact engine must never lose
    /// to the hill-climb heuristic, nor to standing pat — on
    /// full-knowledge views of ~30 nodes where the seed solver could
    /// only hill-climb.
    #[test]
    fn sum_bnb_never_worse_than_hill_climb(
        seed in 0u64..100,
        alpha in 0.1f64..5.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = ncg_graph::generators::gnp_connected(28, 0.12, 500, &mut rng).unwrap();
        let state = GameState::from_graph_random_ownership(&g, &mut rng);
        let spec = GameSpec::sum(alpha, 1000);
        let mut scratch = SolverScratch::new();
        for u in (0..state.n() as NodeId).step_by(9) {
            let view = PlayerView::build(&state, u, spec.k);
            let exact = sum_br::sum_best_response_with(&spec, &view, Mode::Exact, &mut scratch);
            let greedy = sum_br::sum_best_response_with(&spec, &view, Mode::Greedy, &mut scratch);
            let current = ncg_core::deviation::current_total(&spec, &view);
            prop_assert!(
                exact.total_cost <= greedy.total_cost + ncg_core::EPS,
                "u={}: exact {} vs hill climb {}", u, exact.total_cost, greedy.total_cost,
            );
            prop_assert!(exact.total_cost <= current + ncg_core::EPS);
        }
    }

    /// Forcing the sum solves to parallelise leaves the best response
    /// bit-identical — strategy and cost — to the sequential policy,
    /// for worker pools of 1, 2 and 4 threads (the `NCG_THREADS`
    /// determinism contract, sum side), and a warm scratch reused
    /// across every solve matches a cold one per call.
    #[test]
    fn sum_bnb_parallel_and_warm_scratch_are_transparent(
        seed in 0u64..60,
        k in 2u32..6,
        alpha in 0.1f64..4.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = ncg_graph::generators::gnp_connected(24, 0.14, 500, &mut rng).unwrap();
        let state = GameState::from_graph_random_ownership(&g, &mut rng);
        let spec = GameSpec::sum(alpha, k);
        let mut seq = SolverScratch::new();
        seq.parallel = ParallelPolicy::sequential();
        let mut warm = SolverScratch::new();
        warm.parallel = ParallelPolicy { min_ground: 0, per_worker: 2, adaptive: false };
        for u in (0..state.n() as NodeId).step_by(7) {
            let view = PlayerView::build(&state, u, k);
            let a = sum_br::sum_best_response_with(&spec, &view, Mode::Exact, &mut seq);
            for workers in [1usize, 2, 4] {
                let pool =
                    rayon::ThreadPoolBuilder::new().num_threads(workers).build().unwrap();
                let b = pool.install(|| {
                    sum_br::sum_best_response_with(&spec, &view, Mode::Exact, &mut warm)
                });
                // Cold scratch, same pool: warm reuse must be invisible.
                let c = pool.install(|| {
                    let mut cold = SolverScratch::new();
                    cold.parallel = ParallelPolicy { min_ground: 0, per_worker: 2, adaptive: false };
                    sum_br::sum_best_response_with(&spec, &view, Mode::Exact, &mut cold)
                });
                prop_assert_eq!(&a.strategy_local, &b.strategy_local, "u = {}", u);
                prop_assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits(), "u = {}", u);
                prop_assert_eq!(&b.strategy_local, &c.strategy_local, "u = {}", u);
                prop_assert_eq!(b.total_cost.to_bits(), c.total_cost.to_bits(), "u = {}", u);
            }
        }
    }

    /// The MaxNCG best response is stable under irrelevant graph
    /// relabelling of the *view* — computed twice it returns the same
    /// thing (pure function), and its strategy only names visible,
    /// non-incoming vertices.
    #[test]
    fn max_br_is_pure_and_well_formed(seed in 0u64..200, k in 1u32..4, alpha in 0.1f64..5.0) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = ncg_graph::generators::gnp_connected(18, 0.18, 500, &mut rng).unwrap();
        let state = GameState::from_graph_random_ownership(&g, &mut rng);
        let spec = GameSpec::max(alpha, k);
        for u in (0..state.n() as NodeId).step_by(5) {
            let view = PlayerView::build(&state, u, k);
            let a = max_br::max_best_response(&spec, &view, Mode::Exact);
            let b = max_br::max_best_response(&spec, &view, Mode::Exact);
            prop_assert_eq!(&a.strategy_local, &b.strategy_local);
            prop_assert_eq!(a.total_cost, b.total_cost);
            for &s in &a.strategy_local {
                prop_assert!((s as usize) < view.len());
                prop_assert_ne!(s, view.center);
                prop_assert!(!view.incoming.contains(&s),
                    "best responses never re-buy incoming edges");
            }
        }
    }
}
