//! Property-based tests for the solver crate: the bitset, the
//! dominating-set branch-and-bound, the incremental engine, and the
//! best-response reduction.

use ncg_core::equilibrium::best_response_exhaustive;
use ncg_core::{GameSpec, GameState, PlayerView};
use ncg_graph::NodeId;
use ncg_solver::bitset::BitSet;
use ncg_solver::dominating::DominationInstance;
use ncg_solver::{max_br, Mode, SolverScratch};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_elems(cap: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..cap as u32, 0..cap)
}

proptest! {
    // Capped so a full `cargo test -q` stays fast and deterministic;
    // override with PROPTEST_CASES (and PROPTEST_SEED) for deeper runs.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// BitSet behaves like a BTreeSet.
    #[test]
    fn bitset_matches_btreeset(elems in arb_elems(150), removals in arb_elems(150)) {
        let mut bs = BitSet::new(150);
        let mut reference = std::collections::BTreeSet::new();
        for &e in &elems {
            prop_assert_eq!(bs.insert(e), reference.insert(e));
        }
        for &e in &removals {
            prop_assert_eq!(bs.remove(e), reference.remove(&e));
        }
        prop_assert_eq!(bs.len(), reference.len());
        prop_assert_eq!(bs.to_vec(), reference.iter().copied().collect::<Vec<u32>>());
    }

    /// Set algebra: union, superset, missing counts agree with the
    /// reference implementation.
    #[test]
    fn bitset_algebra(a in arb_elems(100), b in arb_elems(100)) {
        let sa = BitSet::from_elems(100, a.iter().copied());
        let sb = BitSet::from_elems(100, b.iter().copied());
        let ra: std::collections::BTreeSet<u32> = a.into_iter().collect();
        let rb: std::collections::BTreeSet<u32> = b.into_iter().collect();
        prop_assert_eq!(sa.is_superset(&sb), rb.is_subset(&ra));
        prop_assert_eq!(sa.missing_from(&sb), rb.difference(&ra).count());
        prop_assert_eq!(sa.intersection_len(&sb), ra.intersection(&rb).count());
        let mut u = sa.clone();
        u.union_with(&sb);
        prop_assert_eq!(u.len(), ra.union(&rb).count());
        prop_assert_eq!(
            sa.first_missing_from(&sb),
            rb.difference(&ra).next().copied()
        );
    }

    /// The exact dominating-set solver is optimal: no smaller feasible
    /// subset exists (verified by exhaustive enumeration on ≤ 12
    /// elements) and its output is feasible.
    #[test]
    fn exact_domination_is_optimal(seed in 0u64..500, p in 0.15f64..0.5) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 11usize;
        let g = ncg_graph::generators::gnp(n, p, &mut rng).unwrap();
        let covers: Vec<BitSet> = (0..n as u32).map(|s| {
            let mut b = BitSet::new(n);
            b.insert(s);
            for &v in g.neighbors(s) { b.insert(v); }
            b
        }).collect();
        let inst = DominationInstance {
            covers,
            universe: BitSet::full(n),
            forced: vec![],
        };
        let exact = inst.solve_exact(usize::MAX).map(|s| s.len());
        // Brute force.
        let mut best: Option<usize> = None;
        for mask in 0u32..(1 << n) {
            let mut covered = BitSet::new(n);
            let mut size = 0;
            for s in 0..n as u32 {
                if mask & (1 << s) != 0 {
                    covered.union_with(&inst.covers[s as usize]);
                    size += 1;
                }
            }
            if covered.is_superset(&inst.universe) && best.is_none_or(|b| size < b) {
                best = Some(size);
            }
        }
        prop_assert_eq!(exact, best);
    }

    /// Greedy solutions are always feasible and within the classical
    /// (1 + ln n) factor of exact.
    #[test]
    fn greedy_domination_quality(seed in 0u64..300) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 40usize;
        let g = ncg_graph::generators::gnp_connected(n, 0.12, 500, &mut rng).unwrap();
        let covers: Vec<BitSet> = (0..n as u32).map(|s| {
            let mut b = BitSet::new(n);
            b.insert(s);
            for &v in g.neighbors(s) { b.insert(v); }
            b
        }).collect();
        let inst = DominationInstance { covers, universe: BitSet::full(n), forced: vec![] };
        let greedy = inst.solve_greedy().unwrap();
        let exact = inst.solve_exact(usize::MAX).unwrap();
        let bound = (1.0 + (n as f64).ln()) * exact.len() as f64;
        prop_assert!(greedy.len() as f64 <= bound + 1e-9);
        let mut covered = BitSet::new(n);
        for &s in &greedy {
            covered.union_with(&inst.covers[s as usize]);
        }
        prop_assert!(covered.is_superset(&inst.universe));
    }

    /// The incremental engine's best responses are cost-identical to
    /// the seed per-`h` rebuild, and (on small views) to exhaustive
    /// subset enumeration — the end-to-end parity contract of the
    /// engine rearchitecture.
    #[test]
    fn incremental_engine_matches_rebuild_and_brute_force(
        seed in 0u64..300,
        k in 1u32..5,
        alpha in 0.05f64..6.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = ncg_graph::generators::gnp_connected(14, 0.2, 500, &mut rng).unwrap();
        let state = GameState::from_graph_random_ownership(&g, &mut rng);
        let spec = GameSpec::max(alpha, k);
        let mut scratch = SolverScratch::new();
        for u in (0..state.n() as NodeId).step_by(3) {
            let view = PlayerView::build(&state, u, k);
            let incremental =
                max_br::max_best_response_with(&spec, &view, Mode::Exact, &mut scratch);
            let rebuild_cost = max_br::max_best_response_cost_rebuild(&spec, &view);
            prop_assert!(
                (incremental.total_cost - rebuild_cost).abs() < 1e-9,
                "u={u}: engine {} vs rebuild {rebuild_cost}",
                incremental.total_cost,
            );
            if view.candidates().len() <= 14 {
                let brute = best_response_exhaustive(&spec, &view).unwrap();
                prop_assert!(
                    (incremental.total_cost - brute.total_cost).abs() < 1e-9,
                    "u={u}: engine {} vs brute {}",
                    incremental.total_cost,
                    brute.total_cost,
                );
            }
        }
    }

    /// The MaxNCG best response is stable under irrelevant graph
    /// relabelling of the *view* — computed twice it returns the same
    /// thing (pure function), and its strategy only names visible,
    /// non-incoming vertices.
    #[test]
    fn max_br_is_pure_and_well_formed(seed in 0u64..200, k in 1u32..4, alpha in 0.1f64..5.0) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = ncg_graph::generators::gnp_connected(18, 0.18, 500, &mut rng).unwrap();
        let state = GameState::from_graph_random_ownership(&g, &mut rng);
        let spec = GameSpec::max(alpha, k);
        for u in (0..state.n() as NodeId).step_by(5) {
            let view = PlayerView::build(&state, u, k);
            let a = max_br::max_best_response(&spec, &view, Mode::Exact);
            let b = max_br::max_best_response(&spec, &view, Mode::Exact);
            prop_assert_eq!(&a.strategy_local, &b.strategy_local);
            prop_assert_eq!(a.total_cost, b.total_cost);
            for &s in &a.strategy_local {
                prop_assert!((s as usize) < view.len());
                prop_assert_ne!(s, view.center);
                prop_assert!(!view.incoming.contains(&s),
                    "best responses never re-buy incoming edges");
            }
        }
    }
}
