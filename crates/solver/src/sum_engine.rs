//! Exact SumNCG branch-and-bound.
//!
//! [`SumEngine`] solves the sum-of-distances best response
//!
//! ```text
//!   min_{S ⊆ V(H)∖{u}}  α·|S| + Σ_{v ≠ u} (1 + min_{s ∈ S ∪ In(u)} d_{H∖u}(s, v))
//! ```
//!
//! exactly, by branching on *include / exclude* of each candidate
//! purchase — the sum-side sibling of the
//! [`DominationEngine`](crate::engine::DominationEngine)'s
//! eccentricity-guess branch-and-bound, replacing the seed-era
//! "enumerate up to 14 candidates, hill-climb beyond" path. Feasibility
//! is exactly Proposition 2.2's locality rule, shared with
//! [`evaluate_sum`](ncg_core::deviation::evaluate_sum) through
//! [`ncg_core::deviation::sum_source_limit`]: a frontier vertex
//! (distance exactly `k` in the view) must end within source-distance
//! `k − 1`, every other vertex merely has to stay reachable.
//!
//! ## Bounds (DESIGN.md §9)
//!
//! A node is a partial strategy: chosen set `I`, undecided candidate
//! list `U`, and the per-vertex residual `best[v] = min_{s ∈ I ∪
//! In(u)} d_{H∖u}(s, v)` maintained incrementally as `I` grows. Two
//! admissible lower bounds prune, both computed from the same
//! single-BFS-per-candidate distance rows:
//!
//! * **Reachability bound** `LB₀ = α·|I| + Σ_v (1 + min(best[v],
//!   undmin[v]))`: no completion can bring `v` closer than the best
//!   undecided row.
//! * **Gain bound** `LB₁ = α·|I| + Σ_v (1 + min(best[v], cap)) +
//!   Σ_{c ∈ U} min(0, α − gain(c))` with `cap = n − 1` and `gain(c) =
//!   Σ_v (min(best[v], cap) − row_c[v])⁺`: buying any set `T ⊆ U`
//!   shortens the capped distance sum by at most `Σ_{c∈T} gain(c)`
//!   (improvements are subadditive), so only candidates whose ceiling
//!   gain exceeds α can lower the total, each by at most `gain(c) − α`.
//! * **Packing bound** `LB₂`: with `A_r = #{v : best[v] ≤ r}` and
//!   `M_r = max_{c ∈ U} #{v : row_c[v] ≤ r}` (the largest undecided
//!   ball), a completion buying `t` extra candidates ends at most
//!   `A_r + t·M_r` vertices within distance `r`, so its usage is at
//!   least `(n−1) + Σ_{r<cap} max(0, (n−1) − A_r − t·M_r)` — convex
//!   in `t`, so `LB₂ = min_t α·(|I|+t) + usage(t)` is found at the
//!   first non-improving `t`. This is the sum-side analogue of the
//!   Max engine's packing×gain bound, and it is the one that bites
//!   where `LB₁`'s additive gains overlap badly (a tree hub improves
//!   whole subtrees, so per-candidate gains grossly overcount joint
//!   savings); in particular `M_0 = 1` makes it near-exact in the
//!   cheap-α "buy almost everything" regime.
//! * **Greedy submodular refinement** `LB₃`: the capped saving
//!   `f(T) = Σ_v (min(best[v], cap) − min over T of row)⁺` is monotone
//!   submodular, so for *any* set `S`, `f(T) ≤ f(S) + Σ top-t
//!   marginals w.r.t. S`. Growing `S` greedily (argmax marginal, while
//!   the marginal exceeds α) collapses the overlap that makes `LB₁`
//!   loose — after two or three hub purchases the residual marginals
//!   are nearly additive — and the refined per-`t` curve, capped by
//!   the total achievable saving `P = Σ_v (min(best, cap) − min(best,
//!   undmin))` and maxed pointwise against the packing curve, is
//!   minimised over `t` like `LB₂`. The greedy set itself is recorded
//!   as an incumbent candidate when feasible, so every node seeds the
//!   race with a near-optimal completion for free.
//! * **Dual-ascent bound**: the node is an uncapacitated
//!   facility-location relaxation (candidates are facilities at
//!   opening cost α, vertices are clients with outside option
//!   `min(best, cap)`), and any dual-feasible client vector certifies
//!   `α·|I| + (n−1) + Σ_j v_j` as a completion-cost floor by weak LP
//!   duality. An Erlenkotter-style breakpoint ascent — alternating
//!   sweep direction between passes, with a bounded adjustment phase
//!   near the prune threshold — is the strongest bound in the
//!   p-median-like mid-α regime where the packing and gain bounds
//!   stay loose, and its residual facility slacks feed two further
//!   cuts: *reduced-cost fixing* (buying candidate `i` costs at least
//!   `dual + slack_i`, so high-slack candidates drop from `U`
//!   entirely) and a per-layer *integral lift* (at a fixed purchase
//!   count `t` the cost is `α·(|I|+t)` plus an integer, so the
//!   fractional dual floor rounds up onto each layer's grid).
//!
//! Layers that survive the cost bounds still face the comparator:
//! a size-`|I|+t` completion is explored only if it can be strictly
//! cheaper than the incumbent, or tie on cost with fewer edges, or —
//! at equal cost and edge count — have its lexicographically minimal
//! completion (`I` merged with the `t` smallest undecided ids) beat
//! the incumbent strategy, mirroring the exhaustive enumerator's
//! tie-break exactly.
//!
//! Two exact reductions shrink nodes without search: a candidate whose
//! *uncapped* gain against finite residuals is `≤ α + EPS` and that
//! supports no unmet frontier constraint can never appear in the
//! comparator-minimal optimum (dropping it from any feasible superset
//! ties-with-fewer-edges or strictly improves), and an unmet vertex
//! with exactly one supporting undecided candidate forces that
//! candidate into `I`.
//!
//! ## Determinism
//!
//! Pruning only discards nodes whose bound exceeds `incumbent + EPS`
//! — or, for the comparator-aware layer cuts, completions provably
//! losing every stage of the tie-break — so *every* strategy that
//! could still win is visited and the result is the same comparator
//! minimum (cost, then fewer edges, then lexicographic) that
//! exhaustive enumeration returns — independent of visit order. Parallel solves therefore need only a single racing
//! pass: the root is expanded breadth-first into a canonical frontier
//! (PR 5's in-place splitting rule), workers race the subproblems
//! under a shared atomic bound, and a sequential comparator fold over
//! the per-subproblem minima in canonical order reproduces the
//! sequential answer bit for bit, for any worker count or steal
//! schedule. The one caveat — costs that differ by a nonzero amount
//! `≤ EPS` — is measure-zero in α and documented in DESIGN.md §9.

use ncg_core::{GameSpec, PlayerView};
use ncg_graph::bfs::DistanceBuffer;
use ncg_graph::{CsrGraph, NodeId, INFINITY};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The engine's running best solution: a sorted local strategy and its
/// total cost under the prepared spec. Starts as the view's current
/// strategy, so a solve can never return something worse than staying
/// put.
#[derive(Debug, Clone, PartialEq)]
pub struct SumIncumbent {
    /// Locally-indexed strategy, sorted ascending (the exhaustive
    /// enumerator's canonical form, so tie-breaks agree bit for bit).
    pub strategy: Vec<NodeId>,
    /// `α·|strategy| + Σ_v (1 + d(v))`, computed through
    /// [`GameSpec::total_cost`] for bit-identical floats everywhere.
    pub cost: f64,
}

/// A frontier subproblem of the parallel solve: the include/exclude
/// state of one branch-and-bound node, self-contained so a worker can
/// solve it on an engine snapshot.
#[derive(Debug, Clone)]
struct SumNode {
    chosen: Vec<NodeId>,
    best: Vec<u32>,
    und: Vec<NodeId>,
}

/// Outcome of processing one node (bounds, reductions, stop
/// evaluation) shared by the sequential recursion and the parallel
/// frontier expansion.
enum SumStep {
    /// Bound exceeded or a constraint became unsatisfiable.
    Pruned,
    /// No undecided candidates remain; the stop evaluation (if
    /// feasible) was recorded.
    Leaf,
    /// Branch on this candidate: include-child first, then exclude.
    Branch(NodeId),
}

/// Exact branch-and-bound for the SumNCG best response; see the
/// module docs for the algorithm and DESIGN.md §9 for the
/// admissibility and determinism arguments.
///
/// One engine lives inside each [`SolverScratch`](crate::SolverScratch)
/// and is re-[`prepare`](SumEngine::prepare)d per view: distance rows,
/// per-depth pools and node scratch are grow-only, so warm restarts
/// across dynamics rounds never allocate after the first solve at a
/// given size.
#[derive(Debug, Clone)]
pub struct SumEngine {
    n: usize,
    center: NodeId,
    spec: GameSpec,
    /// Ceiling on any feasible finite distance (`n − 1`), used by the
    /// gain bound.
    cap: u32,
    /// Flat `n × n` BFS distance rows on `H ∖ {u}`; row `c` holds
    /// `d_{H∖u}(c, ·)` (the center row is all-∞).
    rows: Vec<u32>,
    /// `min` over incoming rows: the residual with the empty strategy.
    base: Vec<u32>,
    /// Per-vertex inclusive cap on the final source distance
    /// ([`ncg_core::deviation::sum_source_limit`]; ∞ for the center).
    limit: Vec<u32>,
    seed: SumIncumbent,
    buf: DistanceBuffer,
    /// Per-depth node state pools (the engine-rearchitecture idiom:
    /// taken with `mem::take` around recursion, restored after).
    best_pool: Vec<Vec<u32>>,
    und_pool: Vec<Vec<NodeId>>,
    /// DFS path of included candidates (branch + forced includes).
    chosen: Vec<NodeId>,
    // Per-node scratch, reused across the whole tree.
    und_min: Vec<u32>,
    unmet: Vec<NodeId>,
    gains_cap: Vec<u64>,
    gains_elim: Vec<u64>,
    /// Packing-bound histograms: `A_r` (met prefix counts), one
    /// candidate's ball sizes, and the running `M_r` maximum.
    a_hist: Vec<i64>,
    ball_hist: Vec<i64>,
    m_hist: Vec<i64>,
    /// Greedy-refinement state: residuals under the greedy set, its
    /// members, per-candidate marginals, and a sort buffer.
    g_best: Vec<u32>,
    g_set: Vec<NodeId>,
    g_rho: Vec<u64>,
    g_sorted: Vec<u64>,
    /// Refined packing tables: per-candidate cumulative ball sizes
    /// (`und.len() × cap`) and per-radius top-`t` prefix sums.
    ball_mat: Vec<i64>,
    bpref: Vec<i64>,
    /// Dual-ascent state: per-client dual values and per-facility
    /// residual slacks.
    dual_v: Vec<f64>,
    dual_slack: Vec<f64>,
    /// Snapshot buffers for the dual adjustment phase's trial moves.
    dual_v2: Vec<f64>,
    dual_slack2: Vec<f64>,
    forced: Vec<NodeId>,
    record_buf: Vec<NodeId>,
    /// Racing incumbent cost (as f64 bits — nonnegative IEEE 754
    /// floats order as unsigned integers) shared across workers of a
    /// parallel solve.
    shared_bound: Option<Arc<AtomicU64>>,
}

impl Default for SumEngine {
    fn default() -> Self {
        SumEngine {
            n: 0,
            center: 0,
            spec: GameSpec::sum(0.0, 1),
            cap: 0,
            rows: Vec::new(),
            base: Vec::new(),
            limit: Vec::new(),
            seed: SumIncumbent { strategy: Vec::new(), cost: 0.0 },
            buf: DistanceBuffer::new(),
            best_pool: Vec::new(),
            und_pool: Vec::new(),
            chosen: Vec::new(),
            und_min: Vec::new(),
            unmet: Vec::new(),
            gains_cap: Vec::new(),
            gains_elim: Vec::new(),
            a_hist: Vec::new(),
            ball_hist: Vec::new(),
            m_hist: Vec::new(),
            g_best: Vec::new(),
            g_set: Vec::new(),
            g_rho: Vec::new(),
            g_sorted: Vec::new(),
            ball_mat: Vec::new(),
            bpref: Vec::new(),
            dual_v: Vec::new(),
            dual_slack: Vec::new(),
            dual_v2: Vec::new(),
            dual_slack2: Vec::new(),
            forced: Vec::new(),
            record_buf: Vec::new(),
            shared_bound: None,
        }
    }
}

impl SumEngine {
    /// Loads a view: one BFS per non-center vertex on `H ∖ {u}` into
    /// the flat row matrix, the incoming-edge residual, the
    /// Proposition 2.2 limits, and the current strategy as the seed
    /// incumbent. Buffers are reused across calls (warm restart).
    ///
    /// The view must have at least two vertices (callers shortcut the
    /// singleton view).
    pub fn prepare(&mut self, spec: &GameSpec, view: &PlayerView) {
        let n = view.len();
        debug_assert!(n >= 2, "singleton views are handled by the caller");
        self.n = n;
        self.center = view.center;
        self.spec = *spec;
        self.cap = (n - 1) as u32;
        self.rows.clear();
        self.rows.resize(n * n, 0);
        let csr = CsrGraph::from_graph(&view.graph_minus_center);
        for s in 0..n {
            if s == view.center as usize {
                self.rows[s * n..(s + 1) * n].fill(INFINITY);
            } else {
                csr.bfs(s as NodeId, &mut self.buf);
                self.rows[s * n..(s + 1) * n].copy_from_slice(self.buf.distances());
            }
        }
        self.base.clear();
        self.base.resize(n, INFINITY);
        for &inc in &view.incoming {
            let row = &self.rows[inc as usize * n..(inc as usize + 1) * n];
            for (b, &r) in self.base.iter_mut().zip(row) {
                if r < *b {
                    *b = r;
                }
            }
        }
        self.limit.clear();
        self.limit.extend((0..n as NodeId).map(|v| {
            if v == view.center {
                INFINITY
            } else {
                ncg_core::deviation::sum_source_limit(view, v)
            }
        }));
        let mut strategy = view.purchases.clone();
        strategy.sort_unstable();
        self.seed = SumIncumbent { strategy, cost: ncg_core::deviation::current_total(spec, view) };
        self.chosen.clear();
        self.shared_bound = None;
    }

    /// Sequential exact solve of the prepared view. Deterministic:
    /// returns the comparator-minimal optimum (cost, then fewer edges,
    /// then lexicographic — exhaustive enumeration's tie-break).
    pub fn solve(&mut self) -> SumIncumbent {
        let mut inc = self.seed.clone();
        self.shared_bound = None;
        self.load_root_at_depth_zero();
        self.recurse(0, &mut inc);
        inc
    }

    /// Parallel exact solve: canonical breadth-first frontier split,
    /// one engine snapshot per worker racing under a shared atomic
    /// bound, then a comparator fold over the per-subproblem minima in
    /// canonical order. Bit-identical to [`Self::solve`] for every
    /// `workers` count and steal schedule (module docs); `workers ≤ 1`
    /// delegates to the sequential solver.
    pub fn solve_parallel(&mut self, workers: usize, per_worker: usize) -> SumIncumbent {
        if workers <= 1 {
            return self.solve();
        }
        let mut inc = self.seed.clone();
        self.shared_bound = None;
        self.chosen.clear();
        let root = SumNode {
            chosen: Vec::new(),
            best: self.base.clone(),
            und: (0..self.n as NodeId).filter(|&v| v != self.center).collect(),
        };
        let items = self.expand_frontier(root, &mut inc, workers * per_worker.max(1));
        if items.is_empty() {
            return inc;
        }
        let seed = inc.clone();
        let shared = Arc::new(AtomicU64::new(inc.cost.to_bits()));
        let this: &SumEngine = self;
        let results: Vec<SumIncumbent> = items
            .into_par_iter()
            .map_init(
                || {
                    let mut engine = this.clone();
                    engine.shared_bound = Some(shared.clone());
                    engine
                },
                |engine, node| engine.solve_sub(&node, &seed),
            )
            .collect();
        for r in results {
            if Self::better(r.cost, &r.strategy, &inc) {
                inc = r;
            }
        }
        inc
    }

    /// Fills depth-0 pools with the root node (empty strategy,
    /// incoming-only residuals, every non-center vertex a candidate).
    fn load_root_at_depth_zero(&mut self) {
        self.chosen.clear();
        self.acquire_depth(0);
        self.best_pool[0].clear();
        let base = std::mem::take(&mut self.base);
        self.best_pool[0].extend_from_slice(&base);
        self.base = base;
        self.und_pool[0].clear();
        let center = self.center;
        self.und_pool[0].extend((0..self.n as NodeId).filter(|&v| v != center));
    }

    /// Solves one frontier subproblem on this (worker-local) engine,
    /// seeding the incumbent with the post-expansion root incumbent.
    fn solve_sub(&mut self, node: &SumNode, seed: &SumIncumbent) -> SumIncumbent {
        let mut inc = seed.clone();
        self.chosen.clear();
        self.chosen.extend_from_slice(&node.chosen);
        self.acquire_depth(0);
        self.best_pool[0].clear();
        self.best_pool[0].extend_from_slice(&node.best);
        self.und_pool[0].clear();
        self.und_pool[0].extend_from_slice(&node.und);
        self.recurse(0, &mut inc);
        inc
    }

    fn acquire_depth(&mut self, depth: usize) {
        while self.best_pool.len() <= depth {
            self.best_pool.push(Vec::new());
            self.und_pool.push(Vec::new());
        }
    }

    fn row(&self, c: NodeId) -> &[u32] {
        &self.rows[c as usize * self.n..(c as usize + 1) * self.n]
    }

    /// Erlenkotter-style dual ascent on the node's facility-location
    /// relaxation: clients are the non-center vertices with outside
    /// cost `min(best[v], cap)`, facilities are the undecided
    /// candidates with opening cost α and service costs `row_c`. Any
    /// dual-feasible `v` (client values below their outside cost whose
    /// overshoots `Σ_j (v_j − row_c[j])⁺` stay within α per facility)
    /// certifies `α·|I| + (n−1) + Σ_j v_j` as a cost lower bound for
    /// every completion, by weak LP duality. Values start at the
    /// slack-free floor `min(best, undmin, cap)` — which is exactly
    /// LB₀ — and rise breakpoint by breakpoint in client order until
    /// facility slacks pin them, a deterministic procedure that is
    /// near-exact on tree views where the additive gain bounds stay
    /// loose. When the ascent bound lands just below the prune
    /// threshold (`bound − lb ≤ adjust_window`), an Erlenkotter-style
    /// adjustment phase kicks in: clients paying into two or more
    /// slack-exhausted facilities drop back one breakpoint, freeing
    /// slack that a re-ascent redistributes to blocked clients, and
    /// the move is kept only when the dual total strictly rises. The
    /// small safety margin absorbs float drift so the returned value
    /// is always admissible.
    fn dual_ascent(
        &mut self,
        best: &[u32],
        und: &[NodeId],
        und_min: &[u32],
        passes: u32,
        bound: f64,
        adjust_window: f64,
    ) -> f64 {
        let n = self.n;
        let center = self.center as usize;
        let cap = self.cap;
        let alpha = self.spec.alpha;
        let rows = &self.rows;
        let mut v = std::mem::take(&mut self.dual_v);
        let mut slack = std::mem::take(&mut self.dual_slack);
        v.clear();
        v.extend((0..n).map(|j| {
            if j == center {
                0.0
            } else {
                best[j].min(und_min[j]).min(cap) as f64
            }
        }));
        slack.clear();
        slack.resize(und.len(), alpha);
        const TOL: f64 = 1e-9;
        // One converging ascent: raise each client to its next
        // breakpoint or until a paying facility's slack pins it,
        // alternating the sweep direction between passes (the greedy
        // ascent is order-dependent, and alternating orders lets late
        // clients claim slack a fixed order would always hand to the
        // same winners). Returns the dual total Σ_j v_j.
        let ascent = |v: &mut [f64], slack: &mut [f64], passes: u32| -> f64 {
            for pass_no in 0..passes {
                let mut changed = false;
                for jj in 0..n {
                    let j = if pass_no % 2 == 0 { jj } else { n - 1 - jj };
                    if j == center {
                        continue;
                    }
                    let outside = best[j].min(cap) as f64;
                    if v[j] + TOL >= outside {
                        continue;
                    }
                    let mut next_bp = outside;
                    let mut min_slack = f64::INFINITY;
                    for (i, &c) in und.iter().enumerate() {
                        let d = rows[c as usize * n + j];
                        if d == INFINITY {
                            continue;
                        }
                        let df = d as f64;
                        if df <= v[j] + TOL {
                            min_slack = min_slack.min(slack[i]);
                        } else if df < next_bp {
                            next_bp = df;
                        }
                    }
                    let delta = (next_bp - v[j]).min(min_slack);
                    if delta > TOL {
                        for (i, &c) in und.iter().enumerate() {
                            let d = rows[c as usize * n + j];
                            if d != INFINITY && d as f64 <= v[j] + TOL {
                                slack[i] -= delta;
                            }
                        }
                        v[j] += delta;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            let mut sum = 0.0;
            for (j, &vj) in v.iter().enumerate() {
                if j != center {
                    sum += vj;
                }
            }
            sum
        };
        let mut sum = ascent(&mut v, &mut slack, passes);
        let fixed = alpha * self.chosen.len() as f64 + (n - 1) as f64 - 1e-6;
        if fixed + sum <= bound && bound - (fixed + sum) <= adjust_window {
            // Adjustment phase: a client paying into ≥ 2 tight
            // facilities splits its value across all of them; dropping
            // it one breakpoint frees slack in each, which a re-ascent
            // can hand to clients blocked on a single facility. Every
            // move is trialled against a snapshot and reverted unless
            // the dual total strictly improves, so the phase is
            // monotone and deterministic (canonical client order).
            let mut v2 = std::mem::take(&mut self.dual_v2);
            let mut slack2 = std::mem::take(&mut self.dual_slack2);
            for _round in 0..2 {
                let mut improved = false;
                for j in 0..n {
                    if j == center || v[j] <= TOL {
                        continue;
                    }
                    let mut tight_payers = 0u32;
                    let mut next_below = 0.0f64;
                    for (i, &c) in und.iter().enumerate() {
                        let d = rows[c as usize * n + j];
                        if d == INFINITY {
                            continue;
                        }
                        let df = d as f64;
                        if df < v[j] - TOL {
                            if slack[i] <= 1e-7 {
                                tight_payers += 1;
                            }
                            next_below = next_below.max(df);
                        }
                    }
                    if tight_payers < 2 {
                        continue;
                    }
                    v2.clear();
                    v2.extend_from_slice(&v);
                    slack2.clear();
                    slack2.extend_from_slice(&slack);
                    let old_vj = v[j];
                    for (i, &c) in und.iter().enumerate() {
                        let d = rows[c as usize * n + j];
                        if d == INFINITY {
                            continue;
                        }
                        let df = d as f64;
                        if df < old_vj {
                            slack[i] += (old_vj - df) - (next_below - df).max(0.0);
                        }
                    }
                    v[j] = next_below;
                    let new_sum = ascent(&mut v, &mut slack, 8);
                    if new_sum > sum + 1e-7 {
                        sum = new_sum;
                        improved = true;
                    } else {
                        v.copy_from_slice(&v2);
                        slack.copy_from_slice(&slack2);
                    }
                }
                if !improved {
                    break;
                }
            }
            self.dual_v2 = v2;
            self.dual_slack2 = slack2;
        }
        self.dual_v = v;
        self.dual_slack = slack;
        fixed + sum
    }

    /// Whether the lexicographically smallest completion of the sorted
    /// partial strategy `chosen_sorted` with `t` undecided candidates —
    /// the merge with `extra` = the `t` smallest undecided ids — is
    /// strictly lex-smaller than the incumbent strategy `inc_s` of the
    /// same length. Used to cut cost-tied, equal-edge-count layers that
    /// cannot win the comparator's final tie-break.
    fn lex_min_completion_beats(
        chosen_sorted: &[NodeId],
        extra: &[NodeId],
        inc_s: &[NodeId],
    ) -> bool {
        debug_assert_eq!(chosen_sorted.len() + extra.len(), inc_s.len());
        let (mut i, mut j) = (0, 0);
        for &target in inc_s {
            let next =
                if i < chosen_sorted.len() && (j >= extra.len() || chosen_sorted[i] < extra[j]) {
                    i += 1;
                    chosen_sorted[i - 1]
                } else {
                    j += 1;
                    extra[j - 1]
                };
            if next != target {
                return next < target;
            }
        }
        false
    }

    /// The exhaustive enumerator's acceptance test, verbatim: strictly
    /// cheaper, or an EPS-tie won on fewer edges then lexicographic
    /// order (both strategies sorted).
    fn better(cost: f64, strategy: &[NodeId], inc: &SumIncumbent) -> bool {
        GameSpec::strictly_better(cost, inc.cost)
            || ((cost - inc.cost).abs() <= ncg_core::EPS
                && (strategy.len() < inc.strategy.len()
                    || (strategy.len() == inc.strategy.len() && strategy < &inc.strategy[..])))
    }

    /// Records the current chosen set (the node's all-exclude
    /// completion) against the incumbent and publishes an improved
    /// cost to the racing bound.
    fn record(&mut self, inc: &mut SumIncumbent, usage: u64) {
        let cost = self.spec.total_cost(self.chosen.len(), Some(usage));
        let mut buf = std::mem::take(&mut self.record_buf);
        buf.clear();
        buf.extend_from_slice(&self.chosen);
        buf.sort_unstable();
        if Self::better(cost, &buf, inc) {
            inc.cost = cost;
            inc.strategy.clear();
            inc.strategy.extend_from_slice(&buf);
            if let Some(shared) = &self.shared_bound {
                shared.fetch_min(cost.to_bits(), Ordering::Relaxed);
            }
        }
        self.record_buf = buf;
    }

    /// The effective pruning bound: the local incumbent, tightened by
    /// the racing bound when one is attached.
    fn current_bound(&self, inc: &SumIncumbent) -> f64 {
        let mut bound = inc.cost;
        if let Some(shared) = &self.shared_bound {
            bound = bound.min(f64::from_bits(shared.load(Ordering::Relaxed)));
        }
        bound
    }

    /// Bounds, reductions and the stop evaluation for one node; `best`
    /// and `und` are mutated in place (forced includes tighten
    /// residuals, eliminations shrink the candidate list) and
    /// `self.chosen` grows by any forced includes. Shared by the
    /// sequential recursion and the parallel frontier expansion.
    fn process_node(
        &mut self,
        best: &mut [u32],
        und: &mut Vec<NodeId>,
        inc: &mut SumIncumbent,
    ) -> SumStep {
        let n = self.n;
        let center = self.center as usize;
        let alpha = self.spec.alpha;
        let mut und_min = std::mem::take(&mut self.und_min);
        let mut unmet = std::mem::take(&mut self.unmet);
        let mut gains_cap = std::mem::take(&mut self.gains_cap);
        let mut gains_elim = std::mem::take(&mut self.gains_elim);
        let mut a_hist = std::mem::take(&mut self.a_hist);
        let mut ball_hist = std::mem::take(&mut self.ball_hist);
        let mut m_hist = std::mem::take(&mut self.m_hist);
        let mut g_best = std::mem::take(&mut self.g_best);
        let mut g_set = std::mem::take(&mut self.g_set);
        let mut g_rho = std::mem::take(&mut self.g_rho);
        let mut g_sorted = std::mem::take(&mut self.g_sorted);
        let mut ball_mat = std::mem::take(&mut self.ball_mat);
        let mut bpref = std::mem::take(&mut self.bpref);
        let mut forced = std::mem::take(&mut self.forced);
        let step = loop {
            // Best distance any undecided candidate could still offer.
            und_min.clear();
            und_min.resize(n, INFINITY);
            for &c in und.iter() {
                for (m, &r) in und_min.iter_mut().zip(self.row(c)) {
                    if r < *m {
                        *m = r;
                    }
                }
            }
            // Feasibility (Proposition 2.2 limits) and the unmet set.
            unmet.clear();
            let mut infeasible = false;
            for v in 0..n {
                if v != center && best[v] > self.limit[v] {
                    if und_min[v] > self.limit[v] {
                        infeasible = true;
                        break;
                    }
                    unmet.push(v as NodeId);
                }
            }
            if infeasible {
                break SumStep::Pruned;
            }
            // Stop evaluation: the all-exclude completion of this node
            // is feasible exactly when nothing is unmet.
            if unmet.is_empty() {
                let mut usage = 0u64;
                for (v, &b) in best.iter().enumerate() {
                    if v != center {
                        usage += 1 + b as u64;
                    }
                }
                self.record(inc, usage);
            }
            let bound = self.current_bound(inc) + ncg_core::EPS;
            let bought = self.chosen.len();
            let e_star = inc.strategy.len();
            // Reachability bound LB₀.
            let mut lb0_usage = 0u64;
            for v in 0..n {
                if v != center {
                    lb0_usage += 1 + best[v].min(und_min[v]) as u64;
                }
            }
            let lb0 = self.spec.total_cost(bought, Some(lb0_usage));
            if lb0 > bound {
                break SumStep::Pruned;
            }
            // Comparator-aware quick cut: once the partial strategy
            // alone has more edges than the incumbent, completions can
            // only win by strict cost, not by tie-break.
            if bought > e_star && !GameSpec::strictly_better(lb0, inc.cost) {
                break SumStep::Pruned;
            }
            // Gain bound LB₁ plus the per-candidate gains it shares
            // with elimination and branch selection.
            let cap = self.cap;
            let mut s_cap = 0u64;
            for (v, &b) in best.iter().enumerate() {
                if v != center {
                    s_cap += 1 + b.min(cap) as u64;
                }
            }
            let mut lb1 = self.spec.total_cost(bought, Some(s_cap));
            let cap_us = cap as usize;
            a_hist.clear();
            a_hist.resize(cap_us, 0);
            for v in 0..n {
                if v != center && best[v] < cap {
                    a_hist[best[v] as usize] += 1;
                }
            }
            for r in 1..cap_us {
                a_hist[r] += a_hist[r - 1];
            }
            m_hist.clear();
            m_hist.resize(cap_us, 0);
            ball_hist.clear();
            ball_hist.resize(cap_us, 0);
            gains_cap.clear();
            gains_elim.clear();
            for &c in und.iter() {
                let row = self.row(c);
                let mut gc = 0u64;
                let mut ge = 0u64;
                for v in 0..n {
                    if v == center {
                        continue;
                    }
                    let b = best[v];
                    let r = row[v];
                    let bc = b.min(cap);
                    if r < bc {
                        gc += (bc - r) as u64;
                    }
                    if b != INFINITY && r < b {
                        ge += (b - r) as u64;
                    }
                    if r < cap {
                        ball_hist[r as usize] += 1;
                    }
                }
                gains_cap.push(gc);
                gains_elim.push(ge);
                let g = gc as f64;
                if g > alpha {
                    lb1 += alpha - g;
                }
                let mut run = 0i64;
                for r in 0..cap_us {
                    run += ball_hist[r];
                    ball_hist[r] = 0;
                    if run > m_hist[r] {
                        m_hist[r] = run;
                    }
                }
            }
            if lb1 > bound {
                break SumStep::Pruned;
            }
            // Packing bound LB₂ (module docs): `A_r` and `M_r` are both
            // non-decreasing in `r`, so the per-radius deficit is
            // non-increasing and the inner sum stops at its first
            // non-positive term; the outer scan stops at the first
            // non-improving `t` because the objective is convex.
            let live = (n - 1) as i64;
            let mut lb2 = f64::INFINITY;
            let mut prev = f64::INFINITY;
            for t in 0..=und.len() {
                let mut usage = live as u64;
                for r in 0..cap_us {
                    let deficit = live - a_hist[r] - t as i64 * m_hist[r];
                    if deficit > 0 {
                        usage += deficit as u64;
                    } else {
                        break;
                    }
                }
                let g = self.spec.total_cost(bought + t, Some(usage));
                if g < lb2 {
                    lb2 = g;
                }
                if g > prev {
                    break;
                }
                prev = g;
            }
            if lb2 > bound {
                break SumStep::Pruned;
            }
            // Elimination: a candidate that cannot pay for itself and
            // supports no unmet constraint never appears in the
            // comparator-minimal optimum.
            let mut w = 0;
            for i in 0..und.len() {
                let c = und[i];
                let supports =
                    unmet.iter().any(|&v| self.row(c)[v as usize] <= self.limit[v as usize]);
                if gains_elim[i] as f64 <= alpha + ncg_core::EPS && !supports {
                    continue;
                }
                und[w] = c;
                gains_cap[w] = gains_cap[i];
                w += 1;
            }
            und.truncate(w);
            gains_cap.truncate(w);
            // Forced includes: an unmet vertex with no undecided
            // supporter is a dead end; with exactly one, every feasible
            // completion of this node contains it.
            forced.clear();
            let mut dead_end = false;
            for &v in unmet.iter() {
                let mut supporters = und
                    .iter()
                    .copied()
                    .filter(|&c| self.row(c)[v as usize] <= self.limit[v as usize]);
                match (supporters.next(), supporters.next()) {
                    (None, _) => {
                        dead_end = true;
                        break;
                    }
                    (Some(only), None) => forced.push(only),
                    _ => {}
                }
            }
            if dead_end {
                break SumStep::Pruned;
            }
            if !forced.is_empty() {
                forced.sort_unstable();
                forced.dedup();
                for &c in forced.iter() {
                    self.chosen.push(c);
                    let row = &self.rows[c as usize * n..(c as usize + 1) * n];
                    for (b, &r) in best.iter_mut().zip(row) {
                        if r < *b {
                            *b = r;
                        }
                    }
                }
                und.retain(|c| !forced.contains(c));
                continue;
            }
            if und.is_empty() {
                break SumStep::Leaf;
            }
            // Dual-ascent bound on the node's facility-location
            // relaxation — the strongest cost floor available here;
            // it also lifts the per-`t` curve below.
            let window =
                if self.chosen.len() <= 6 { self.spec.alpha.mul_add(2.0, 6.0) } else { 0.0 };
            let dual_lb = self.dual_ascent(best, und, &und_min, 48, bound, window);
            if dual_lb > bound {
                break SumStep::Pruned;
            }
            // Reduced-cost fixing: buying candidate `i` costs every
            // completion at least `dual_lb + slack_i` (the dual bound
            // with facility `i`'s opening constraint saturated), so a
            // candidate whose residual slack alone pushes past the
            // bound can never appear in an improving completion and is
            // dropped for the whole subtree.
            {
                let mut w = 0;
                for i in 0..und.len() {
                    if dual_lb + self.dual_slack[i] <= bound {
                        und[w] = und[i];
                        gains_cap[w] = gains_cap[i];
                        self.dual_slack[w] = self.dual_slack[i];
                        w += 1;
                    }
                }
                if w < und.len() {
                    und.truncate(w);
                    gains_cap.truncate(w);
                    self.dual_slack.truncate(w);
                    // Fixing can orphan an unmet vertex; such nodes
                    // have no feasible improving completion at all.
                    let orphaned = unmet.iter().any(|&v| {
                        !und.iter().any(|&c| self.row(c)[v as usize] <= self.limit[v as usize])
                    });
                    if orphaned {
                        break SumStep::Pruned;
                    }
                    if und.is_empty() {
                        break SumStep::Leaf;
                    }
                    // The shrunken candidate set tightens `und_min`
                    // and every bound derived from it — restart the
                    // node pipeline on the reduced problem.
                    continue;
                }
            }
            // Greedy submodular refinement LB₃ (module docs): grow a
            // greedy set while its argmax marginal exceeds α, each
            // round minimising over `t` the max of the packing curve
            // and the refined prefix-of-marginals curve (capped by the
            // total achievable saving). The greedy completion is
            // recorded as an incumbent candidate when feasible.
            let p_total = s_cap - lb0_usage;
            // Refined packing tables over the post-elimination
            // candidates: `t` purchases cover, per radius `r`, at most
            // the `t` largest `r`-balls (distinct candidates bring
            // distinct balls — strictly tighter than `t` copies of the
            // maximum used by the early LB₂ check).
            let u_len = und.len();
            ball_mat.clear();
            ball_mat.resize(u_len * cap_us, 0);
            for (i, &c) in und.iter().enumerate() {
                let row = &self.rows[c as usize * n..(c as usize + 1) * n];
                let dst = &mut ball_mat[i * cap_us..(i + 1) * cap_us];
                for (v, &r) in row.iter().enumerate() {
                    if v != center && r < cap {
                        dst[r as usize] += 1;
                    }
                }
                let mut run = 0i64;
                for x in dst.iter_mut() {
                    run += *x;
                    *x = run;
                }
            }
            bpref.clear();
            bpref.resize(cap_us * (u_len + 1), 0);
            for r in 0..cap_us {
                ball_hist.clear();
                ball_hist.extend((0..u_len).map(|i| ball_mat[i * cap_us + r]));
                ball_hist.sort_unstable_by(|a, b| b.cmp(a));
                let dst = &mut bpref[r * (u_len + 1)..(r + 1) * (u_len + 1)];
                let mut run = 0i64;
                for (slot, &b) in dst[1..].iter_mut().zip(ball_hist.iter()) {
                    run += b;
                    *slot = run;
                }
            }
            g_best.clear();
            g_best.extend_from_slice(best);
            g_rho.clear();
            g_rho.extend_from_slice(&gains_cap);
            g_set.clear();
            let mut f_s = 0u64;
            let mut steps_left = 16u32;
            let mut refined_prune = false;
            // Sorted copy of the partial strategy for the lex test,
            // built lazily on the first tie-eligible layer.
            let mut lex_sorted = false;
            loop {
                g_sorted.clear();
                g_sorted.extend_from_slice(&g_rho);
                g_sorted.sort_unstable_by(|a, b| b.cmp(a));
                // A size-`|I|+t` completion survives only if it can
                // still beat the incumbent under the full comparator:
                // strictly cheaper, or a cost tie won on fewer edges,
                // or on equal edges with a lexicographically smaller
                // strategy (the lex-minimal completion merges `I` with
                // the `t` smallest undecided ids).
                let mut alive = false;
                let mut prev = f64::INFINITY;
                let mut past_min = false;
                let mut prefix = 0u64;
                for t in 0..=und.len() {
                    if t > 0 {
                        prefix += g_sorted[t - 1];
                    }
                    let save = (f_s + prefix).min(p_total);
                    let mut usage = live as u64;
                    for r in 0..cap_us {
                        let deficit = live - a_hist[r] - bpref[r * (u_len + 1) + t];
                        if deficit > 0 {
                            usage += deficit as u64;
                        } else {
                            break;
                        }
                    }
                    let usage = usage.max(s_cap - save);
                    // Integral lift of the dual floor: at fixed `t` the
                    // cost is alpha*(|I|+t) plus an integer usage, so the
                    // fractional dual bound rounds up onto this layer's
                    // grid (the small slack guards float drift between
                    // this product and `total_cost`'s).
                    let at = self.spec.alpha * (bought + t) as f64;
                    let dual_t =
                        if dual_lb > at { at + (dual_lb - at - 1e-7).ceil() } else { dual_lb };
                    let g_raw = self.spec.total_cost(bought + t, Some(usage)).max(dual_lb);
                    // The lifted value is a sawtooth in `t` (the ceil
                    // drops by floor(alpha) or ceil(alpha) per layer),
                    // so only the convex `g_raw` may drive the
                    // past-the-minimum early exit; the lift tightens
                    // the per-layer alive test alone.
                    let g = g_raw.max(dual_t);
                    if g_raw > prev {
                        past_min = true;
                    }
                    prev = g_raw;
                    if g <= bound {
                        if GameSpec::strictly_better(g, inc.cost) || bought + t < e_star {
                            alive = true;
                        } else if bought + t == e_star {
                            if !lex_sorted {
                                self.record_buf.clear();
                                self.record_buf.extend_from_slice(&self.chosen);
                                self.record_buf.sort_unstable();
                                lex_sorted = true;
                            }
                            if Self::lex_min_completion_beats(
                                &self.record_buf,
                                &und[..t],
                                &inc.strategy,
                            ) {
                                alive = true;
                            }
                        }
                    }
                    if alive || (past_min && g_raw > bound) {
                        break;
                    }
                }
                if !alive {
                    refined_prune = true;
                    break;
                }
                let mut bi = 0;
                for (i, &r) in g_rho.iter().enumerate().skip(1) {
                    if r > g_rho[bi] {
                        bi = i;
                    }
                }
                if steps_left == 0 || g_rho[bi] as f64 <= alpha {
                    break;
                }
                steps_left -= 1;
                f_s += g_rho[bi];
                let c = und[bi];
                g_set.push(c);
                let row = &self.rows[c as usize * n..(c as usize + 1) * n];
                for (b, &r) in g_best.iter_mut().zip(row.iter()) {
                    if r < *b {
                        *b = r;
                    }
                }
                for (rho, &c2) in g_rho.iter_mut().zip(und.iter()) {
                    let row2 = &self.rows[c2 as usize * n..(c2 as usize + 1) * n];
                    let mut acc = 0u64;
                    for v in 0..n {
                        if v == center {
                            continue;
                        }
                        let b = g_best[v].min(cap);
                        let r = row2[v];
                        if r < b {
                            acc += (b - r) as u64;
                        }
                    }
                    *rho = acc;
                }
            }
            if refined_prune {
                break SumStep::Pruned;
            }
            if !g_set.is_empty() {
                let mut feasible = true;
                let mut usage = 0u64;
                for (v, &b) in g_best.iter().enumerate() {
                    if v == center {
                        continue;
                    }
                    if b > self.limit[v] {
                        feasible = false;
                        break;
                    }
                    usage += 1 + b as u64;
                }
                if feasible {
                    let greedy_mark = self.chosen.len();
                    self.chosen.extend_from_slice(&g_set);
                    self.record(inc, usage);
                    self.chosen.truncate(greedy_mark);
                }
            }
            // Branch on a dual-tight facility when one exists (the
            // relaxation wants it open, so the include child follows
            // the LP support and the exclude child's dual jumps),
            // preferring the largest capped gain among ties; fall back
            // to the global argmax gain. `und` is ascending, so the
            // first maximum is the smallest id either way.
            let mut bi = usize::MAX;
            for i in 0..und.len() {
                if self.dual_slack[i] <= 1e-7 && (bi == usize::MAX || gains_cap[i] > gains_cap[bi])
                {
                    bi = i;
                }
            }
            if bi == usize::MAX {
                bi = 0;
                for (i, &g) in gains_cap.iter().enumerate().skip(1) {
                    if g > gains_cap[bi] {
                        bi = i;
                    }
                }
            }
            break SumStep::Branch(und[bi]);
        };
        self.und_min = und_min;
        self.unmet = unmet;
        self.gains_cap = gains_cap;
        self.gains_elim = gains_elim;
        self.a_hist = a_hist;
        self.ball_hist = ball_hist;
        self.m_hist = m_hist;
        self.g_best = g_best;
        self.g_set = g_set;
        self.g_rho = g_rho;
        self.g_sorted = g_sorted;
        self.ball_mat = ball_mat;
        self.bpref = bpref;
        self.forced = forced;
        step
    }

    /// Depth-first search over include/exclude decisions; node state
    /// for `depth` must already sit in the pools.
    fn recurse(&mut self, depth: usize, inc: &mut SumIncumbent) {
        let mut best = std::mem::take(&mut self.best_pool[depth]);
        let mut und = std::mem::take(&mut self.und_pool[depth]);
        let mark = self.chosen.len();
        if let SumStep::Branch(c) = self.process_node(&mut best, &mut und, inc) {
            self.acquire_depth(depth + 1);
            // Include child first: the greedy descent reaches a strong
            // incumbent fast, sharpening both bounds for the excludes.
            self.fill_child(depth + 1, &best, &und, c, true);
            self.chosen.push(c);
            self.recurse(depth + 1, inc);
            self.chosen.pop();
            self.fill_child(depth + 1, &best, &und, c, false);
            self.recurse(depth + 1, inc);
        }
        self.chosen.truncate(mark);
        self.best_pool[depth] = best;
        self.und_pool[depth] = und;
    }

    /// Copies a child node into the pools at `depth`: parent residuals
    /// (tightened by `c`'s row when including) and the parent
    /// candidates minus `c`.
    fn fill_child(&mut self, depth: usize, best: &[u32], und: &[NodeId], c: NodeId, include: bool) {
        let n = self.n;
        let mut child_best = std::mem::take(&mut self.best_pool[depth]);
        let mut child_und = std::mem::take(&mut self.und_pool[depth]);
        child_best.clear();
        child_best.extend_from_slice(best);
        if include {
            let row = &self.rows[c as usize * n..(c as usize + 1) * n];
            for (b, &r) in child_best.iter_mut().zip(row) {
                if r < *b {
                    *b = r;
                }
            }
        }
        child_und.clear();
        child_und.extend(und.iter().copied().filter(|&x| x != c));
        self.best_pool[depth] = child_best;
        self.und_pool[depth] = child_und;
    }

    /// Breadth-first expansion of the root into at least `target`
    /// subproblems in canonical order: each generation replaces every
    /// branching node in place by its include- then exclude-child, so
    /// the concatenated DFS orders of the frontier equal the
    /// sequential DFS order. Stop evaluations fold into `inc`
    /// sequentially; pruned and leaf nodes simply vanish.
    fn expand_frontier(
        &mut self,
        root: SumNode,
        inc: &mut SumIncumbent,
        target: usize,
    ) -> Vec<SumNode> {
        let mut items = vec![root];
        while !items.is_empty() && items.len() < target {
            let mut next = Vec::with_capacity(items.len() * 2);
            let mut branched = false;
            for mut node in items {
                std::mem::swap(&mut self.chosen, &mut node.chosen);
                let step = self.process_node(&mut node.best, &mut node.und, inc);
                std::mem::swap(&mut self.chosen, &mut node.chosen);
                if let SumStep::Branch(c) = step {
                    branched = true;
                    let mut inc_best = node.best.clone();
                    let row = &self.rows[c as usize * self.n..(c as usize + 1) * self.n];
                    for (b, &r) in inc_best.iter_mut().zip(row) {
                        if r < *b {
                            *b = r;
                        }
                    }
                    let child_und: Vec<NodeId> =
                        node.und.iter().copied().filter(|&x| x != c).collect();
                    let mut inc_chosen = node.chosen.clone();
                    inc_chosen.push(c);
                    next.push(SumNode {
                        chosen: inc_chosen,
                        best: inc_best,
                        und: child_und.clone(),
                    });
                    next.push(SumNode { chosen: node.chosen, best: node.best, und: child_und });
                }
            }
            items = next;
            if !branched {
                break;
            }
        }
        self.chosen.clear();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_core::equilibrium::best_response_exhaustive;
    use ncg_core::GameState;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn solve_for(state: &GameState, spec: &GameSpec, u: NodeId) -> (SumIncumbent, PlayerView) {
        let view = PlayerView::build(state, u, spec.k);
        let mut engine = SumEngine::default();
        engine.prepare(spec, &view);
        (engine.solve(), view)
    }

    #[test]
    fn matches_exhaustive_on_random_views() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..4 {
            let g = ncg_graph::generators::gnp_connected(11, 0.25, 100, &mut rng).unwrap();
            let state = GameState::from_graph_random_ownership(&g, &mut rng);
            for alpha in [0.4, 1.0, 2.5] {
                for k in [2u32, 1000] {
                    let spec = GameSpec::sum(alpha, k);
                    for u in 0..state.n() as NodeId {
                        let (inc, view) = solve_for(&state, &spec, u);
                        let brute = best_response_exhaustive(&spec, &view).unwrap();
                        assert_eq!(inc.strategy, brute.strategy_local, "u={u} α={alpha} k={k}");
                        assert_eq!(
                            inc.cost.to_bits(),
                            brute.total_cost.to_bits(),
                            "u={u} α={alpha} k={k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn star_center_is_optimal_beyond_the_enumeration_cap() {
        // 29 candidates — far beyond both the old 14-candidate sum cap
        // and core's EXHAUSTIVE_CAP. With α = 2 < n the star center's
        // all-leaves strategy is the exact optimum; with cheap edges it
        // still is (every leaf must stay adjacent); an expensive-edge
        // leaf player keeps its view optimal too.
        let state = GameState::star_center_owned(30);
        let spec = GameSpec::sum(2.0, 4);
        let (inc, view) = solve_for(&state, &spec, 0);
        assert_eq!(inc.strategy.len(), 29);
        assert_eq!(inc.cost.to_bits(), ncg_core::deviation::current_total(&spec, &view).to_bits());
    }

    #[test]
    fn parallel_solve_is_bit_identical() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = ncg_graph::generators::gnp_connected(20, 0.15, 100, &mut rng).unwrap();
        let state = GameState::from_graph_random_ownership(&g, &mut rng);
        for alpha in [0.3, 1.0, 3.0] {
            let spec = GameSpec::sum(alpha, 1000);
            for u in (0..state.n() as NodeId).step_by(3) {
                let view = PlayerView::build(&state, u, spec.k);
                let mut engine = SumEngine::default();
                engine.prepare(&spec, &view);
                let seq = engine.solve();
                for workers in [2usize, 4] {
                    let pool =
                        rayon::ThreadPoolBuilder::new().num_threads(workers).build().unwrap();
                    let par = pool.install(|| {
                        let mut e = SumEngine::default();
                        e.prepare(&spec, &view);
                        e.solve_parallel(workers, 2)
                    });
                    assert_eq!(seq.strategy, par.strategy, "u={u} α={alpha} w={workers}");
                    assert_eq!(seq.cost.to_bits(), par.cost.to_bits(), "u={u} α={alpha}");
                }
            }
        }
    }
}
