//! A small fixed-capacity bitset over `u64` words.
//!
//! The dominating-set branch-and-bound manipulates coverage sets of at
//! most a few hundred elements millions of times; a dedicated bitset
//! with word-level operations keeps that inner loop branch-free and
//! allocation-free (cloning into a scratch is the only copy).

/// Fixed-capacity set of `u32` elements `< capacity`, bit-packed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Empty set with room for elements `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet { words: vec![0; capacity.div_ceil(64)], capacity }
    }

    /// Set containing every element `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for (i, w) in s.words.iter_mut().enumerate() {
            let lo = i * 64;
            let hi = (lo + 64).min(capacity);
            if hi > lo {
                *w = if hi - lo == 64 { !0 } else { (1u64 << (hi - lo)) - 1 };
            }
        }
        s
    }

    /// Builds a set from elements.
    pub fn from_elems(capacity: usize, elems: impl IntoIterator<Item = u32>) -> Self {
        let mut s = Self::new(capacity);
        for e in elems {
            s.insert(e);
        }
        s
    }

    /// Capacity (exclusive upper bound on elements).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `e`; returns whether it was new.
    ///
    /// # Panics
    /// Panics (in debug) if `e ≥ capacity`.
    #[inline]
    pub fn insert(&mut self, e: u32) -> bool {
        debug_assert!((e as usize) < self.capacity, "element {e} out of capacity");
        let w = &mut self.words[(e / 64) as usize];
        let bit = 1u64 << (e % 64);
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }

    /// Removes `e`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, e: u32) -> bool {
        debug_assert!((e as usize) < self.capacity);
        let w = &mut self.words[(e / 64) as usize];
        let bit = 1u64 << (e % 64);
        let present = *w & bit != 0;
        *w &= !bit;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, e: u32) -> bool {
        if (e as usize) >= self.capacity {
            return false;
        }
        self.words[(e / 64) as usize] & (1u64 << (e % 64)) != 0
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every element.
    #[inline]
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Clears the set and re-targets it to a (possibly different)
    /// capacity, reusing the word storage — the grow-only allocation
    /// discipline of the solver's engine reset.
    pub fn reset(&mut self, capacity: usize) {
        self.words.clear();
        self.words.resize(capacity.div_ceil(64), 0);
        self.capacity = capacity;
    }

    /// `self ∪= other`.
    ///
    /// # Panics
    /// Panics (in debug) on capacity mismatch.
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Whether `self ⊇ other`.
    #[inline]
    pub fn is_superset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.iter().zip(&other.words).all(|(a, b)| b & !a == 0)
    }

    /// `|other ∖ self|`: how many elements of `other` are missing from
    /// `self` — the "still uncovered" count of the branch-and-bound.
    #[inline]
    pub fn missing_from(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.iter().zip(&other.words).map(|(a, b)| (b & !a).count_ones() as usize).sum()
    }

    /// First element of `other ∖ self`, if any.
    #[inline]
    pub fn first_missing_from(&self, other: &BitSet) -> Option<u32> {
        for (i, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let diff = b & !a;
            if diff != 0 {
                return Some((i * 64) as u32 + diff.trailing_zeros());
            }
        }
        None
    }

    /// Sets `self = a ∖ b`, reusing this set's allocation. The
    /// branch-and-bound recomputes its "still uncovered" mask once per
    /// node with this instead of re-deriving it inside every bound.
    pub fn assign_difference(&mut self, a: &BitSet, b: &BitSet) {
        debug_assert_eq!(a.capacity, b.capacity);
        self.capacity = a.capacity;
        self.words.clear();
        self.words.extend(a.words.iter().zip(&b.words).map(|(aw, bw)| aw & !bw));
    }

    /// `|self ∩ other|`.
    #[inline]
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// Iterates the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let base = (i * 64) as u32;
            std::iter::successors(
                if w == 0 { None } else { Some((w, base + w.trailing_zeros())) },
                move |&(w, _)| {
                    let w = w & (w - 1); // clear lowest set bit
                    if w == 0 {
                        None
                    } else {
                        Some((w, base + w.trailing_zeros()))
                    }
                },
            )
            .map(|(_, e)| e)
        })
    }

    /// Collects the elements into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Raw word access for hot word-parallel loops (e.g. the coverage
    /// gains in the dominating-set branch-and-bound).
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        assert!(s.insert(3));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(3), "duplicate insert returns false");
        assert!(s.contains(3) && s.contains(64) && s.contains(99));
        assert!(!s.contains(4));
        assert!(!s.contains(1000), "out-of-capacity membership is false");
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn reset_retargets_capacity_and_clears() {
        let mut s = BitSet::new(70);
        s.insert(3);
        s.insert(69);
        for cap in [70usize, 5, 200, 0, 64] {
            s.reset(cap);
            assert_eq!(s.capacity(), cap, "cap = {cap}");
            assert!(s.is_empty(), "cap = {cap}");
            assert_eq!(s, BitSet::new(cap), "cap = {cap}");
            if cap > 0 {
                s.insert(cap as u32 - 1);
                assert_eq!(s.len(), 1);
            }
        }
    }

    #[test]
    fn full_has_exact_len_on_non_word_boundary() {
        for cap in [0usize, 1, 63, 64, 65, 128, 130] {
            let s = BitSet::full(cap);
            assert_eq!(s.len(), cap, "cap = {cap}");
            if cap > 0 {
                assert!(s.contains(cap as u32 - 1));
            }
            assert!(!s.contains(cap as u32));
        }
    }

    #[test]
    fn union_and_superset() {
        let mut a = BitSet::from_elems(70, [1, 2, 65]);
        let b = BitSet::from_elems(70, [2, 3]);
        assert!(!a.is_superset(&b));
        a.union_with(&b);
        assert!(a.is_superset(&b));
        assert_eq!(a.to_vec(), vec![1, 2, 3, 65]);
    }

    #[test]
    fn missing_and_first_missing() {
        let covered = BitSet::from_elems(130, [0, 1, 2, 127]);
        let universe = BitSet::from_elems(130, [0, 1, 2, 3, 64, 127, 129]);
        assert_eq!(covered.missing_from(&universe), 3);
        assert_eq!(covered.first_missing_from(&universe), Some(3));
        let all = BitSet::full(130);
        assert_eq!(all.missing_from(&universe), 0);
        assert_eq!(all.first_missing_from(&universe), None);
    }

    #[test]
    fn assign_difference_reuses_allocation() {
        let a = BitSet::from_elems(130, [0, 3, 64, 129]);
        let b = BitSet::from_elems(130, [3, 64]);
        let mut d = BitSet::new(7); // wrong capacity on purpose
        d.assign_difference(&a, &b);
        assert_eq!(d.to_vec(), vec![0, 129]);
        assert_eq!(d.capacity(), 130);
        assert_eq!(d.len(), a.missing_from(&b).max(b.missing_from(&a)));
    }

    #[test]
    fn intersection_len() {
        let a = BitSet::from_elems(80, [1, 5, 64, 70]);
        let b = BitSet::from_elems(80, [5, 64, 71]);
        assert_eq!(a.intersection_len(&b), 2);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let elems = vec![0u32, 63, 64, 65, 127, 128];
        let s = BitSet::from_elems(200, elems.clone());
        assert_eq!(s.to_vec(), elems);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::from_elems(10, [1, 2]);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn empty_iterates_nothing() {
        let s = BitSet::new(100);
        assert_eq!(s.iter().count(), 0);
    }
}
