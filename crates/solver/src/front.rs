//! The generic best-response front: one entry point for every cell of
//! the model zoo (objective × edge cost × move rule × mode).
//!
//! The dispatch table (DESIGN.md §10):
//!
//! | move rule | edge cost | objective | engine |
//! |-----------|-----------|-----------|--------|
//! | `Swap` | any | any | exact swap-neighbourhood enumeration (polynomial) |
//! | `AnySubset` | `Uniform` | `Max` | [`max_br`] (eccentricity guessing + domination B&B) |
//! | `AnySubset` | `Uniform` | `Sum` | [`sum_br`] (include/exclude B&B; hill climb in Greedy) |
//! | `AnySubset` | `PerTarget` | any | exhaustive enumeration up to [`EXHAUSTIVE_CAP`], else [`hill_climb`] |
//!
//! The two exact engines stay gated to uniform pricing because their
//! pruning is *count-based* — `max_br`'s `⌈slack/α⌉` cutoff and the
//! sum engine's `α·t` bounds assume every edge costs exactly `α`, and
//! both would silently prune optima under per-target multipliers.
//! Swap neighbourhoods are quadratic in the view, so the swap arm is
//! exact for every pricing model and both modes; per-target subset
//! games are exact up to the enumeration cap and fall back to the
//! deterministic hill climb beyond it (the `nonuniform` experiment
//! documents which of its columns sit on which side of the cap).

use ncg_core::deviation::{current_total, evaluate_total, EvalScratch};
use ncg_core::equilibrium::{self, Deviation, EXHAUSTIVE_CAP};
use ncg_core::{GameSpec, MoveRulePolicy, Objective, PlayerView};
use ncg_graph::NodeId;

use crate::{max_br, sum_br, Mode, SolverScratch};

/// Computes a best response for any scenario the workspace ships,
/// dispatching per the table above. This is what
/// [`Responder`](crate::Responder) calls; on the default (uniform,
/// subset-move) Max/Sum scenarios it forwards to the pre-front engines
/// with bit-identical results (property-tested).
pub fn best_response_with(
    spec: &GameSpec,
    view: &PlayerView,
    mode: Mode,
    scratch: &mut SolverScratch,
) -> Deviation {
    if view.len() <= 1 {
        return Deviation { strategy_local: Vec::new(), total_cost: spec.total_cost(0, Some(0)) };
    }
    match spec.move_rule {
        MoveRulePolicy::Swap => {
            equilibrium::best_response_exhaustive_with(spec, view, &mut scratch.eval)
                .expect("swap neighbourhoods are polynomial and never TooLarge")
        }
        MoveRulePolicy::AnySubset if spec.edge_cost.is_uniform() => match spec.objective {
            Objective::Max => max_br::max_best_response_with(spec, view, mode, scratch),
            Objective::Sum => sum_br::sum_best_response_with(spec, view, mode, scratch),
        },
        MoveRulePolicy::AnySubset => non_uniform_best_response(spec, view, mode, scratch),
    }
}

/// Per-target pricing breaks the count-based pruning of both exact
/// engines, so non-uniform subset games enumerate exactly while the
/// view fits under [`EXHAUSTIVE_CAP`] and hill-climb beyond it (also
/// the [`Mode::Greedy`] arm).
fn non_uniform_best_response(
    spec: &GameSpec,
    view: &PlayerView,
    mode: Mode,
    scratch: &mut SolverScratch,
) -> Deviation {
    if mode == Mode::Exact && view.candidate_count() <= EXHAUSTIVE_CAP {
        return equilibrium::best_response_exhaustive_with(spec, view, &mut scratch.eval)
            .expect("gated on EXHAUSTIVE_CAP");
    }
    hill_climb(spec, view, &mut scratch.eval)
}

/// Deterministic steepest-descent local search over single additions,
/// removals and swaps, scored through [`evaluate_total`] — the shared
/// greedy fallback of the front (SumNCG's [`Mode::Greedy`] ablation
/// arm and the beyond-cap non-uniform path). Objective- and
/// pricing-agnostic: every candidate is scored by the scenario's own
/// evaluator, with the standard cost → fewer-edges → lexicographic
/// tie-break.
pub fn hill_climb(spec: &GameSpec, view: &PlayerView, scratch: &mut EvalScratch) -> Deviation {
    let mut current = view.purchases.clone();
    let mut current_cost = current_total(spec, view);
    // The empty strategy is a useful second seed: when the player's
    // incoming edges alone keep the view connected, the hill climb can
    // otherwise be stuck paying for redundant purchases.
    let empty_cost = evaluate_total(spec, view, &[], scratch);
    if GameSpec::strictly_better(empty_cost, current_cost) {
        current = Vec::new();
        current_cost = empty_cost;
    }
    // Bounded by the strictly-decreasing cost; the cap is a safety net.
    for _round in 0..4 * view.len().max(4) {
        let mut best_neighbor: Option<(Vec<NodeId>, f64)> = None;
        let mut consider = |strategy: Vec<NodeId>, scratch: &mut EvalScratch| {
            let cost = evaluate_total(spec, view, &strategy, scratch);
            if GameSpec::strictly_better(cost, current_cost)
                && best_neighbor.as_ref().is_none_or(|(bs, bc)| {
                    GameSpec::strictly_better(cost, *bc)
                        || ((cost - bc).abs() <= ncg_core::EPS
                            && (strategy.len() < bs.len()
                                || (strategy.len() == bs.len() && strategy < *bs)))
                })
            {
                best_neighbor = Some((strategy, cost));
            }
        };
        // Additions.
        for c in view.candidates_iter() {
            if current.binary_search(&c).is_err() {
                let mut s = current.clone();
                let pos = s.binary_search(&c).unwrap_err();
                s.insert(pos, c);
                consider(s, scratch);
            }
        }
        // Removals.
        for i in 0..current.len() {
            let mut s = current.clone();
            s.remove(i);
            consider(s, scratch);
        }
        // Swaps: drop one purchase, add one non-purchase.
        for i in 0..current.len() {
            for c in view.candidates_iter() {
                if current.binary_search(&c).is_err() {
                    let mut s = current.clone();
                    s.remove(i);
                    let pos = s.binary_search(&c).unwrap_err();
                    s.insert(pos, c);
                    consider(s, scratch);
                }
            }
        }
        match best_neighbor {
            Some((s, c)) => {
                current = s;
                current_cost = c;
            }
            None => break,
        }
    }
    Deviation { strategy_local: current, total_cost: current_cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_core::{GameState, Scenario};

    #[test]
    fn front_matches_direct_engines_on_default_scenarios() {
        let state = GameState::cycle_successor(10);
        let mut scratch = SolverScratch::new();
        for (spec, u) in [(GameSpec::max(0.4, 3), 2u32), (GameSpec::sum(1.1, 2), 7)] {
            let view = PlayerView::build(&state, u, spec.k);
            let via_front = best_response_with(&spec, &view, Mode::Exact, &mut scratch);
            let direct = match spec.objective {
                Objective::Max => {
                    max_br::max_best_response_with(&spec, &view, Mode::Exact, &mut scratch)
                }
                Objective::Sum => {
                    sum_br::sum_best_response_with(&spec, &view, Mode::Exact, &mut scratch)
                }
            };
            assert_eq!(via_front.strategy_local, direct.strategy_local);
            assert_eq!(via_front.total_cost.to_bits(), direct.total_cost.to_bits());
        }
    }

    #[test]
    fn swap_front_is_exact_against_move_enumeration() {
        // Cheap edges destabilise the cycle; the swap best response
        // must match the best strategy in the swap neighbourhood and
        // never resize the purchase set.
        let state = GameState::cycle_successor(12);
        let spec = Scenario::swap(Objective::Max).spec(0.1, 4);
        let mut scratch = SolverScratch::new();
        for u in 0..12u32 {
            let view = PlayerView::build(&state, u, spec.k);
            let d = best_response_with(&spec, &view, Mode::Exact, &mut scratch);
            assert_eq!(d.strategy_local.len(), view.purchases.len());
            let reference = equilibrium::best_response_exhaustive(&spec, &view).unwrap();
            assert_eq!(d.strategy_local, reference.strategy_local, "u={u}");
            assert_eq!(d.total_cost.to_bits(), reference.total_cost.to_bits());
        }
    }

    #[test]
    fn swap_improves_where_subset_games_would_buy_more() {
        // Path ends benefit from re-pointing their one edge inward.
        let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); 9];
        for (i, sigma) in strategies.iter_mut().enumerate().take(8) {
            sigma.push((i + 1) as NodeId);
        }
        let state = GameState::from_strategies(9, strategies);
        let spec = Scenario::swap(Objective::Max).spec(0.1, 100);
        let view = PlayerView::build(&state, 0, spec.k);
        let mut scratch = SolverScratch::new();
        let d = best_response_with(&spec, &view, Mode::Exact, &mut scratch);
        assert_eq!(d.strategy_local.len(), 1, "swaps cannot change the count");
        assert!(
            GameSpec::strictly_better(d.total_cost, current_total(&spec, &view)),
            "re-pointing the edge toward the middle must improve the end player"
        );
    }

    #[test]
    fn non_uniform_exact_matches_enumeration_under_the_cap() {
        let state = GameState::cycle_successor(10);
        let spec = Scenario::non_uniform(Objective::Max, 0xA5).spec(0.5, 3);
        let mut scratch = SolverScratch::new();
        for u in (0..10u32).step_by(3) {
            let view = PlayerView::build(&state, u, spec.k);
            assert!(view.candidate_count() <= EXHAUSTIVE_CAP);
            let d = best_response_with(&spec, &view, Mode::Exact, &mut scratch);
            let reference = equilibrium::best_response_exhaustive(&spec, &view).unwrap();
            assert_eq!(d.strategy_local, reference.strategy_local, "u={u}");
            assert_eq!(d.total_cost.to_bits(), reference.total_cost.to_bits());
        }
    }

    #[test]
    fn non_uniform_beyond_cap_falls_back_to_hill_climb_and_never_regresses() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let g = ncg_graph::generators::gnp_connected(30, 0.12, 100, &mut rng).unwrap();
        let state = GameState::from_graph_random_ownership(&g, &mut rng);
        let spec = Scenario::non_uniform(Objective::Sum, 0xBEE).spec(0.8, 1000);
        let mut scratch = SolverScratch::new();
        for u in (0..30u32).step_by(7) {
            let view = PlayerView::build(&state, u, spec.k);
            assert!(view.candidate_count() > EXHAUSTIVE_CAP);
            let d = best_response_with(&spec, &view, Mode::Exact, &mut scratch);
            assert!(d.total_cost <= current_total(&spec, &view) + ncg_core::EPS, "u={u}");
        }
    }

    #[test]
    fn per_target_pricing_steers_purchases_toward_cheap_targets() {
        // Two otherwise-symmetric targets: the hill climb and the
        // enumeration must both prefer the cheaper one on ties.
        let state = GameState::cycle_successor(8);
        let spec = Scenario::non_uniform(Objective::Max, 11).spec(2.0, 2);
        let view = PlayerView::build(&state, 0, spec.k);
        let mut scratch = SolverScratch::new();
        let exact = best_response_with(&spec, &view, Mode::Exact, &mut scratch);
        let greedy = best_response_with(&spec, &view, Mode::Greedy, &mut scratch);
        assert!(exact.total_cost <= greedy.total_cost + ncg_core::EPS);
    }

    #[test]
    fn isolated_player_is_trivial_for_every_scenario() {
        let state = GameState::new(2);
        let view = PlayerView::build(&state, 0, 3);
        let mut scratch = SolverScratch::new();
        for spec in [
            GameSpec::max(1.0, 3),
            Scenario::swap(Objective::Sum).spec(1.0, 3),
            Scenario::non_uniform(Objective::Max, 1).spec(1.0, 3),
        ] {
            let d = best_response_with(&spec, &view, Mode::Exact, &mut scratch);
            assert!(d.strategy_local.is_empty());
            assert_eq!(d.total_cost, 0.0);
        }
    }
}
