//! Constrained minimum dominating set.
//!
//! This is our stand-in for the paper's Gurobi ILP (Section 5.3): an
//! exact branch-and-bound for
//!
//! > minimise `|D ∖ forced|` subject to `D ⊇ forced` and
//! > `∀ v ∈ universe: D ∩ dominators(v) ≠ ∅`,
//!
//! where the coverage structure is an arbitrary set system (in the
//! best-response reduction, `covers[s]` is the radius-`(h−1)` ball
//! around `s` in `H ∖ {u}`).
//!
//! Branching rule: pick the uncovered vertex with the fewest
//! dominators and branch on each of them, best-coverage-first. Pruning:
//! greedy initial upper bound, and the fractional lower bound
//! `⌈uncovered / max_cover⌉`. On the dense power graphs of the
//! reduction optima are tiny (≤ 10 typically), so the tree stays small.

use crate::bitset::BitSet;

/// A domination instance over elements `0..n`.
#[derive(Debug, Clone)]
pub struct DominationInstance {
    /// `covers[s]` = set of vertices dominated when `s` is chosen.
    pub covers: Vec<BitSet>,
    /// Vertices that must be dominated.
    pub universe: BitSet,
    /// Elements that are already in `D` for free.
    pub forced: Vec<u32>,
}

/// Result of a domination solve: the chosen *extra* elements
/// (`D ∖ forced`), sorted.
pub type Solution = Vec<u32>;

impl DominationInstance {
    /// Number of elements in the ground set.
    pub fn n(&self) -> usize {
        self.covers.len()
    }

    fn initial_covered(&self) -> BitSet {
        let mut covered = BitSet::new(self.n());
        for &f in &self.forced {
            covered.union_with(&self.covers[f as usize]);
        }
        covered
    }

    /// Whether the instance is feasible at all (every universe vertex
    /// has at least one dominator).
    pub fn is_feasible(&self) -> bool {
        let mut any = BitSet::new(self.n());
        for c in &self.covers {
            any.union_with(c);
        }
        any.is_superset(&self.universe)
    }

    /// Greedy `(1 + ln n)`-approximation: repeatedly take the element
    /// covering the most still-uncovered universe vertices.
    ///
    /// Returns `None` if infeasible.
    pub fn solve_greedy(&self) -> Option<Solution> {
        let mut covered = self.initial_covered();
        let mut chosen: Vec<u32> = Vec::new();
        while covered.missing_from(&self.universe) > 0 {
            let mut best: Option<(usize, u32)> = None;
            for s in 0..self.n() as u32 {
                let mut gain = 0usize;
                // gain = |covers[s] ∩ universe ∖ covered|
                for ((cw, uw), dw) in self.covers[s as usize]
                    .words()
                    .iter()
                    .zip(self.universe.words())
                    .zip(covered.words())
                {
                    gain += (cw & uw & !dw).count_ones() as usize;
                }
                if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, s));
                }
            }
            let (_, s) = best?; // None ⇒ infeasible
            covered.union_with(&self.covers[s as usize]);
            chosen.push(s);
        }
        chosen.sort_unstable();
        Some(chosen)
    }

    /// Exact minimum via branch-and-bound.
    ///
    /// `cutoff`: only solutions with strictly fewer than `cutoff` extra
    /// elements are interesting; pass `usize::MAX` for unconditional
    /// optimality. Returns `None` if infeasible or no solution beats
    /// the cutoff.
    ///
    /// Two lower bounds prune the tree: the fractional bound
    /// `⌈uncovered / max_cover⌉` (good on dense instances) and a
    /// **packing bound** — uncovered vertices with pairwise-disjoint
    /// dominator sets each need their own dominator (near-tight on
    /// sparse instances such as tree domination, where the fractional
    /// bound alone lets the tree explode).
    pub fn solve_exact(&self, cutoff: usize) -> Option<Solution> {
        if !self.is_feasible() {
            return None;
        }
        // Transpose: dominators[v] = {s : v ∈ covers[s]}, both as an
        // adjacency list (for branching) and as bitsets (for the
        // packing bound).
        let n = self.n();
        let mut dominators: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut dominator_sets: Vec<BitSet> = vec![BitSet::new(n); n];
        for (s, c) in self.covers.iter().enumerate() {
            for v in c.iter() {
                dominators[v as usize].push(s as u32);
                dominator_sets[v as usize].insert(s as u32);
            }
        }
        // Static packing order: few-dominator vertices first makes the
        // greedy packing larger, hence the bound stronger.
        let mut packing_order: Vec<u32> = self.universe.iter().collect();
        packing_order.sort_unstable_by_key(|&v| dominators[v as usize].len());
        let max_cover = self
            .covers
            .iter()
            .map(|c| c.intersection_len(&self.universe))
            .max()
            .unwrap_or(0)
            .max(1);
        let covered = self.initial_covered();
        // Greedy upper bound seeds `best`.
        let mut best: Option<Solution> = self.solve_greedy();
        let mut best_len = best.as_ref().map(|b| b.len()).unwrap_or(usize::MAX).min(cutoff);
        if best.as_ref().is_some_and(|b| b.len() >= cutoff) {
            best = None;
        }
        let mut chosen: Vec<u32> = Vec::new();
        let mut search = Search {
            inst: self,
            dominators: &dominators,
            dominator_sets: &dominator_sets,
            packing_order: &packing_order,
            max_cover,
            best: &mut best,
            best_len: &mut best_len,
            used_scratch: BitSet::new(n),
        };
        search.recurse(covered, &mut chosen);
        best.map(|mut b| {
            b.sort_unstable();
            b
        })
    }
}

struct Search<'a> {
    inst: &'a DominationInstance,
    dominators: &'a [Vec<u32>],
    dominator_sets: &'a [BitSet],
    packing_order: &'a [u32],
    max_cover: usize,
    best: &'a mut Option<Solution>,
    best_len: &'a mut usize,
    used_scratch: BitSet,
}

impl Search<'_> {
    /// Greedy packing: count uncovered vertices whose dominator sets
    /// are pairwise disjoint — each needs a distinct chosen element.
    fn packing_bound(&mut self, covered: &BitSet) -> usize {
        self.used_scratch.clear();
        let mut count = 0usize;
        for &v in self.packing_order {
            if !covered.contains(v)
                && self.used_scratch.intersection_len(&self.dominator_sets[v as usize]) == 0
            {
                count += 1;
                self.used_scratch.union_with(&self.dominator_sets[v as usize]);
            }
        }
        count
    }

    fn recurse(&mut self, covered: BitSet, chosen: &mut Vec<u32>) {
        let uncovered = covered.missing_from(&self.inst.universe);
        if uncovered == 0 {
            if chosen.len() < *self.best_len {
                *self.best_len = chosen.len();
                *self.best = Some(chosen.clone());
            }
            return;
        }
        // Lower bounds: fractional (dense instances) and packing
        // (sparse instances).
        let frac = uncovered.div_ceil(self.max_cover);
        if chosen.len() + frac >= *self.best_len {
            return;
        }
        let lb = chosen.len() + frac.max(self.packing_bound(&covered));
        if lb >= *self.best_len {
            return;
        }
        // Branch on the uncovered vertex with the fewest useful
        // dominators (fail-first).
        let mut branch_v: Option<(usize, u32)> = None;
        let mut probe = covered.clone();
        for v in 0..self.inst.n() as u32 {
            if self.inst.universe.contains(v) && !covered.contains(v) {
                let deg = self.dominators[v as usize].len();
                if branch_v.is_none_or(|(bd, _)| deg < bd) {
                    branch_v = Some((deg, v));
                    if deg <= 1 {
                        break;
                    }
                }
            }
        }
        let (_, v) = branch_v.expect("uncovered > 0 implies an uncovered vertex exists");
        // Order candidate dominators by marginal coverage, descending.
        let mut cands: Vec<(usize, u32)> = self.dominators[v as usize]
            .iter()
            .map(|&s| {
                let mut gain = 0usize;
                for ((cw, uw), dw) in self.inst.covers[s as usize]
                    .words()
                    .iter()
                    .zip(self.inst.universe.words())
                    .zip(covered.words())
                {
                    gain += (cw & uw & !dw).count_ones() as usize;
                }
                (gain, s)
            })
            .collect();
        cands.sort_unstable_by(|a, b| b.cmp(a));
        for (_, s) in cands {
            probe.clone_from(&covered);
            probe.union_with(&self.inst.covers[s as usize]);
            chosen.push(s);
            self.recurse(probe.clone(), chosen);
            chosen.pop();
        }
    }
}

impl BitSet {
    /// Raw word access for the hot coverage-gain loops above.
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        self.words_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_graph::{generators, Graph};

    /// Builds the classic graph-domination instance: `covers[s]` =
    /// closed neighbourhood of `s`.
    fn graph_instance(g: &Graph, forced: Vec<u32>) -> DominationInstance {
        let n = g.node_count();
        let covers = (0..n as u32)
            .map(|s| {
                let mut b = BitSet::new(n);
                b.insert(s);
                for &v in g.neighbors(s) {
                    b.insert(v);
                }
                b
            })
            .collect();
        DominationInstance { covers, universe: BitSet::full(n), forced }
    }

    /// Brute-force minimum dominating set by subset enumeration.
    fn brute_force(inst: &DominationInstance) -> Option<usize> {
        let n = inst.n();
        assert!(n <= 20);
        let mut best: Option<usize> = None;
        for mask in 0u32..(1 << n) {
            let mut covered = inst.initial_covered();
            let mut size = 0;
            for s in 0..n as u32 {
                if mask & (1 << s) != 0 {
                    covered.union_with(&inst.covers[s as usize]);
                    size += 1;
                }
            }
            if covered.is_superset(&inst.universe) && best.is_none_or(|b| size < b) {
                best = Some(size);
            }
        }
        best
    }

    #[test]
    fn star_is_dominated_by_its_center() {
        let inst = graph_instance(&generators::star(9), vec![]);
        assert_eq!(inst.solve_exact(usize::MAX).unwrap(), vec![0]);
    }

    #[test]
    fn path_domination_number() {
        // γ(P_n) = ⌈n/3⌉.
        for n in [3usize, 4, 7, 9, 10] {
            let inst = graph_instance(&generators::path(n), vec![]);
            let exact = inst.solve_exact(usize::MAX).unwrap();
            assert_eq!(exact.len(), n.div_ceil(3), "path n={n}");
        }
    }

    #[test]
    fn cycle_domination_number() {
        for n in [3usize, 5, 6, 9, 12] {
            let inst = graph_instance(&generators::cycle(n), vec![]);
            assert_eq!(inst.solve_exact(usize::MAX).unwrap().len(), n.div_ceil(3));
        }
    }

    #[test]
    fn forced_vertices_are_free_and_respected() {
        // Path of 9 with a forced end: the end covers {0,1}; the rest
        // needs 2 more.
        let inst = graph_instance(&generators::path(9), vec![0]);
        let extra = inst.solve_exact(usize::MAX).unwrap();
        assert!(extra.len() <= 3);
        // The forced element must never be re-bought.
        assert!(!extra.contains(&0));
        // Verify coverage.
        let mut covered = inst.initial_covered();
        for &s in &extra {
            covered.union_with(&inst.covers[s as usize]);
        }
        assert!(covered.is_superset(&inst.universe));
    }

    #[test]
    fn exact_matches_brute_force_on_random_graphs() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for trial in 0..40 {
            let g = generators::gnp(12, 0.25, &mut rng).unwrap();
            let inst = graph_instance(&g, vec![]);
            let exact = inst.solve_exact(usize::MAX).map(|s| s.len());
            assert_eq!(exact, brute_force(&inst), "trial {trial}");
        }
    }

    #[test]
    fn exact_with_forced_matches_brute_force() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(78);
        for trial in 0..25 {
            let g = generators::gnp(11, 0.3, &mut rng).unwrap();
            let inst = graph_instance(&g, vec![0, 3]);
            let exact = inst.solve_exact(usize::MAX).map(|s| s.len());
            assert_eq!(exact, brute_force(&inst), "trial {trial}");
        }
    }

    #[test]
    fn greedy_is_feasible_and_not_better_than_exact() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(79);
        for _ in 0..20 {
            let g = generators::gnp(14, 0.2, &mut rng).unwrap();
            let inst = graph_instance(&g, vec![]);
            let greedy = inst.solve_greedy().unwrap();
            let exact = inst.solve_exact(usize::MAX).unwrap();
            assert!(greedy.len() >= exact.len());
            let mut covered = inst.initial_covered();
            for &s in &greedy {
                covered.union_with(&inst.covers[s as usize]);
            }
            assert!(covered.is_superset(&inst.universe));
        }
    }

    #[test]
    fn infeasible_instance_returns_none() {
        // Universe includes a vertex nobody covers.
        let covers = vec![BitSet::from_elems(3, [0]), BitSet::from_elems(3, [1]), BitSet::new(3)];
        let inst = DominationInstance { covers, universe: BitSet::full(3), forced: vec![] };
        assert!(!inst.is_feasible());
        assert_eq!(inst.solve_exact(usize::MAX), None);
        assert_eq!(inst.solve_greedy(), None);
    }

    #[test]
    fn cutoff_suppresses_uninteresting_solutions() {
        let inst = graph_instance(&generators::path(9), vec![]);
        // Optimum is 3; cutoff 3 demands < 3 → None.
        assert_eq!(inst.solve_exact(3), None);
        assert!(inst.solve_exact(4).is_some());
    }

    #[test]
    fn empty_universe_needs_nothing() {
        let covers = vec![BitSet::new(2), BitSet::new(2)];
        let inst = DominationInstance { covers, universe: BitSet::new(2), forced: vec![] };
        assert_eq!(inst.solve_exact(usize::MAX).unwrap(), Vec::<u32>::new());
        assert_eq!(inst.solve_greedy().unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn zero_radius_domination_requires_everything() {
        // covers[s] = {s} only: D must be the whole universe.
        let n = 6;
        let covers = (0..n as u32).map(|s| BitSet::from_elems(n, [s])).collect();
        let inst = DominationInstance { covers, universe: BitSet::full(n), forced: vec![2] };
        let extra = inst.solve_exact(usize::MAX).unwrap();
        assert_eq!(extra.len(), n - 1, "all but the forced element");
    }
}
