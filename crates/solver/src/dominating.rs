//! Constrained minimum dominating set.
//!
//! This is our stand-in for the paper's Gurobi ILP (Section 5.3): an
//! exact branch-and-bound for
//!
//! > minimise `|D ∖ forced|` subject to `D ⊇ forced` and
//! > `∀ v ∈ universe: D ∩ dominators(v) ≠ ∅`,
//!
//! where the coverage structure is an arbitrary set system (in the
//! best-response reduction, `covers[s]` is the radius-`(h−1)` ball
//! around `s` in `H ∖ {u}`).
//!
//! Branching rule: pick the uncovered vertex with the fewest
//! dominators and branch on each of them, best-coverage-first. The
//! search itself — bounds, scratch pools, and the incremental state
//! that lets the reduction grow coverage across eccentricity guesses
//! instead of rebuilding — lives in [`crate::engine`]; this module
//! keeps the one-shot instance type and the greedy baseline.

use crate::bitset::BitSet;

/// A domination instance over elements `0..n`.
#[derive(Debug, Clone)]
pub struct DominationInstance {
    /// `covers[s]` = set of vertices dominated when `s` is chosen.
    pub covers: Vec<BitSet>,
    /// Vertices that must be dominated.
    pub universe: BitSet,
    /// Elements that are already in `D` for free.
    pub forced: Vec<u32>,
}

/// Result of a domination solve: the chosen *extra* elements
/// (`D ∖ forced`), sorted.
pub type Solution = Vec<u32>;

impl DominationInstance {
    /// The classic graph-domination instance over `g`: `covers[s]` is
    /// the closed neighbourhood of `s` and every vertex must be
    /// dominated. The shared builder behind the domination tests,
    /// benches and the perf smoke test.
    pub fn closed_neighborhoods(g: &ncg_graph::Graph, forced: Vec<u32>) -> Self {
        let n = g.node_count();
        let covers = (0..n as u32)
            .map(|s| {
                let mut b = BitSet::new(n);
                b.insert(s);
                for &v in g.neighbors(s) {
                    b.insert(v);
                }
                b
            })
            .collect();
        DominationInstance { covers, universe: BitSet::full(n), forced }
    }

    /// Number of elements in the ground set.
    pub fn n(&self) -> usize {
        self.covers.len()
    }

    fn initial_covered(&self) -> BitSet {
        let mut covered = BitSet::new(self.n());
        for &f in &self.forced {
            covered.union_with(&self.covers[f as usize]);
        }
        covered
    }

    /// Whether the instance is feasible at all (every universe vertex
    /// has at least one dominator).
    pub fn is_feasible(&self) -> bool {
        let mut any = BitSet::new(self.n());
        for c in &self.covers {
            any.union_with(c);
        }
        any.is_superset(&self.universe)
    }

    /// Greedy `(1 + ln n)`-approximation: repeatedly take the element
    /// covering the most still-uncovered universe vertices.
    ///
    /// Returns `None` if infeasible.
    pub fn solve_greedy(&self) -> Option<Solution> {
        let mut covered = self.initial_covered();
        let mut chosen: Vec<u32> = Vec::new();
        while covered.missing_from(&self.universe) > 0 {
            let mut best: Option<(usize, u32)> = None;
            for s in 0..self.n() as u32 {
                let mut gain = 0usize;
                // gain = |covers[s] ∩ universe ∖ covered|
                for ((cw, uw), dw) in self.covers[s as usize]
                    .words()
                    .iter()
                    .zip(self.universe.words())
                    .zip(covered.words())
                {
                    gain += (cw & uw & !dw).count_ones() as usize;
                }
                if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, s));
                }
            }
            let (_, s) = best?; // None ⇒ infeasible
            covered.union_with(&self.covers[s as usize]);
            chosen.push(s);
        }
        chosen.sort_unstable();
        Some(chosen)
    }

    /// Exact minimum via branch-and-bound.
    ///
    /// `cutoff`: only solutions with strictly fewer than `cutoff` extra
    /// elements are interesting; pass `usize::MAX` for unconditional
    /// optimality. Returns `None` if infeasible or no solution beats
    /// the cutoff.
    ///
    /// This is the one-shot entry point: it builds a fresh
    /// [`crate::engine::DominationEngine`] (dominator transpose,
    /// packing order, scratch pools) and solves once. Callers that
    /// solve a *growing* family of instances — the per-`h` loop of the
    /// best-response reduction — should hold an engine and feed it
    /// incrementally instead; see `DESIGN.md` §4.3 and the
    /// `dominating_set/exact_bnb_incremental` bench for the delta.
    pub fn solve_exact(&self, cutoff: usize) -> Option<Solution> {
        crate::engine::DominationEngine::from_instance(self).solve_exact(cutoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_graph::{generators, Graph};

    fn graph_instance(g: &Graph, forced: Vec<u32>) -> DominationInstance {
        DominationInstance::closed_neighborhoods(g, forced)
    }

    /// Brute-force minimum dominating set by subset enumeration.
    fn brute_force(inst: &DominationInstance) -> Option<usize> {
        let n = inst.n();
        assert!(n <= 20);
        let mut best: Option<usize> = None;
        for mask in 0u32..(1 << n) {
            let mut covered = inst.initial_covered();
            let mut size = 0;
            for s in 0..n as u32 {
                if mask & (1 << s) != 0 {
                    covered.union_with(&inst.covers[s as usize]);
                    size += 1;
                }
            }
            if covered.is_superset(&inst.universe) && best.is_none_or(|b| size < b) {
                best = Some(size);
            }
        }
        best
    }

    #[test]
    fn star_is_dominated_by_its_center() {
        let inst = graph_instance(&generators::star(9), vec![]);
        assert_eq!(inst.solve_exact(usize::MAX).unwrap(), vec![0]);
    }

    #[test]
    fn path_domination_number() {
        // γ(P_n) = ⌈n/3⌉.
        for n in [3usize, 4, 7, 9, 10] {
            let inst = graph_instance(&generators::path(n), vec![]);
            let exact = inst.solve_exact(usize::MAX).unwrap();
            assert_eq!(exact.len(), n.div_ceil(3), "path n={n}");
        }
    }

    #[test]
    fn cycle_domination_number() {
        for n in [3usize, 5, 6, 9, 12] {
            let inst = graph_instance(&generators::cycle(n), vec![]);
            assert_eq!(inst.solve_exact(usize::MAX).unwrap().len(), n.div_ceil(3));
        }
    }

    #[test]
    fn forced_vertices_are_free_and_respected() {
        // Path of 9 with a forced end: the end covers {0,1}; the rest
        // needs 2 more.
        let inst = graph_instance(&generators::path(9), vec![0]);
        let extra = inst.solve_exact(usize::MAX).unwrap();
        assert!(extra.len() <= 3);
        // The forced element must never be re-bought.
        assert!(!extra.contains(&0));
        // Verify coverage.
        let mut covered = inst.initial_covered();
        for &s in &extra {
            covered.union_with(&inst.covers[s as usize]);
        }
        assert!(covered.is_superset(&inst.universe));
    }

    #[test]
    fn exact_matches_brute_force_on_random_graphs() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for trial in 0..40 {
            let g = generators::gnp(12, 0.25, &mut rng).unwrap();
            let inst = graph_instance(&g, vec![]);
            let exact = inst.solve_exact(usize::MAX).map(|s| s.len());
            assert_eq!(exact, brute_force(&inst), "trial {trial}");
        }
    }

    #[test]
    fn exact_with_forced_matches_brute_force() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(78);
        for trial in 0..25 {
            let g = generators::gnp(11, 0.3, &mut rng).unwrap();
            let inst = graph_instance(&g, vec![0, 3]);
            let exact = inst.solve_exact(usize::MAX).map(|s| s.len());
            assert_eq!(exact, brute_force(&inst), "trial {trial}");
        }
    }

    #[test]
    fn greedy_is_feasible_and_not_better_than_exact() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(79);
        for _ in 0..20 {
            let g = generators::gnp(14, 0.2, &mut rng).unwrap();
            let inst = graph_instance(&g, vec![]);
            let greedy = inst.solve_greedy().unwrap();
            let exact = inst.solve_exact(usize::MAX).unwrap();
            assert!(greedy.len() >= exact.len());
            let mut covered = inst.initial_covered();
            for &s in &greedy {
                covered.union_with(&inst.covers[s as usize]);
            }
            assert!(covered.is_superset(&inst.universe));
        }
    }

    #[test]
    fn infeasible_instance_returns_none() {
        // Universe includes a vertex nobody covers.
        let covers = vec![BitSet::from_elems(3, [0]), BitSet::from_elems(3, [1]), BitSet::new(3)];
        let inst = DominationInstance { covers, universe: BitSet::full(3), forced: vec![] };
        assert!(!inst.is_feasible());
        assert_eq!(inst.solve_exact(usize::MAX), None);
        assert_eq!(inst.solve_greedy(), None);
    }

    #[test]
    fn cutoff_suppresses_uninteresting_solutions() {
        let inst = graph_instance(&generators::path(9), vec![]);
        // Optimum is 3; cutoff 3 demands < 3 → None.
        assert_eq!(inst.solve_exact(3), None);
        assert!(inst.solve_exact(4).is_some());
    }

    #[test]
    fn empty_universe_needs_nothing() {
        let covers = vec![BitSet::new(2), BitSet::new(2)];
        let inst = DominationInstance { covers, universe: BitSet::new(2), forced: vec![] };
        assert_eq!(inst.solve_exact(usize::MAX).unwrap(), Vec::<u32>::new());
        assert_eq!(inst.solve_greedy().unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn zero_radius_domination_requires_everything() {
        // covers[s] = {s} only: D must be the whole universe.
        let n = 6;
        let covers = (0..n as u32).map(|s| BitSet::from_elems(n, [s])).collect();
        let inst = DominationInstance { covers, universe: BitSet::full(n), forced: vec![2] };
        let extra = inst.solve_exact(usize::MAX).unwrap();
        assert_eq!(extra.len(), n - 1, "all but the forced element");
    }
}
