//! Shared pruning bounds used across best-response engines.
//!
//! The MaxNCG eccentricity-guess loop ([`crate::max_br`]) and the
//! CSR-native scale-tier responder (`ncg_dynamics::scale`) prune the
//! same way: under **uniform** edge pricing, a candidate strategy with
//! `c` purchases costs at least `α·c + usage_floor`, so once `c`
//! reaches `⌈(cost_to_beat − usage_floor)/α⌉` the candidate cannot
//! strictly beat the incumbent and the whole purchase-count stratum
//! can be skipped. Factoring the arithmetic here keeps the two engines
//! agreeing on the boundary case (`slack` exactly integral) instead of
//! each re-deriving the ceiling dance inline.

/// Smallest purchase count that can **no longer** strictly beat
/// `cost_to_beat` given that any candidate's usage cost is at least
/// `usage_floor` and edges are uniformly priced at `alpha`.
///
/// Returns `0` when even a purchase-free strategy cannot win (the
/// caller skips the stratum entirely), and `usize::MAX` when `alpha`
/// is non-positive (edge counts are free, so no count-based pruning is
/// sound). A candidate with `count` purchases is worth evaluating iff
/// `count < purchase_cutoff(..)`.
///
/// Only sound for uniform edge costs and subset move rules — the same
/// precondition [`crate::max_br::max_best_response_with`] asserts.
#[inline]
pub fn purchase_cutoff(cost_to_beat: f64, usage_floor: f64, alpha: f64) -> usize {
    if alpha <= 0.0 {
        return usize::MAX;
    }
    let slack = (cost_to_beat - usage_floor) / alpha;
    if slack <= 0.0 {
        0
    } else {
        // The smallest integer count with α·count ≥ slack·α, i.e. the
        // first stratum that cannot be strictly better.
        slack.ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cutoff_matches_inline_derivation() {
        // slack = (10 − 4)/2 = 3: counts 0..=2 interesting, 3 is not.
        assert_eq!(purchase_cutoff(10.0, 4.0, 2.0), 3);
        // Non-integral slack rounds up: (10 − 4)/1.75 ≈ 3.43 → 4.
        assert_eq!(purchase_cutoff(10.0, 4.0, 1.75), 4);
        // Floor at or above the incumbent: nothing can win.
        assert_eq!(purchase_cutoff(5.0, 5.0, 1.0), 0);
        assert_eq!(purchase_cutoff(5.0, 7.0, 1.0), 0);
        // Free edges: no pruning.
        assert_eq!(purchase_cutoff(5.0, 1.0, 0.0), usize::MAX);
    }

    #[test]
    fn boundary_is_exclusive() {
        // Exactly-integral slack: a count equal to slack yields cost
        // α·slack + floor == cost_to_beat, which is not *strictly*
        // better, so the cutoff equals slack itself.
        assert_eq!(purchase_cutoff(9.0, 3.0, 2.0), 3);
    }
}
